"""Handshake completion and latency under frame loss, retries on/off.

The robustness claim behind the retransmission state machine
(``RetryPolicy`` / ``Retransmitter`` in
:mod:`repro.core.protocols.user_router`): on a lossy metropolitan
radio, per-message retransmission with capped exponential backoff
recovers handshakes *within* a beacon cycle, instead of paying the
full connect-timeout + fresh-beacon round trip for every lost (M.2)
or (M.3).

The sweep runs the same seeded city at 0/5/15/30% frame loss with the
retransmitter off and on, and reports completion counts and the median
authentication delay.  Everything runs in virtual time on seeded RNGs,
so every number here is bit-deterministic per host-independent run --
the completion counts are exact-gated in ``scripts/bench_gate.py``.
"""

import statistics

from repro.core.protocols.user_router import RetryPolicy
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig

LOSS_GRID = (0.0, 0.05, 0.15, 0.30)
SEED = 1234
USERS = 8
DURATION = 240.0

RETRY = RetryPolicy(initial_timeout=5.0, backoff_factor=2.0,
                    max_timeout=20.0, max_retries=4, jitter=0.1)


def run_city(loss: float, retries: bool) -> dict:
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=SEED,
        topology=TopologyConfig(area_side=400.0, router_grid=1,
                                user_count=USERS, seed=SEED,
                                access_range=400.0),
        group_sizes=(("Company X", 16),),
        beacon_interval=4.0,
        loss_probability=loss,
        retry_policy=RETRY if retries else None))
    for user in scenario.sim_users.values():
        user.connect_timeout = 45.0
    scenario.run(DURATION)
    delays = sorted(d for u in scenario.sim_users.values()
                    for d in u.auth_delays)
    metrics = scenario.user_metrics()
    return {
        "completed": sum(1 for u in scenario.sim_users.values()
                         if u.state == "connected"),
        "attempts": int(metrics["connect_attempts"]),
        "retransmits": int(metrics["retransmits"]),
        "median_delay": statistics.median(delays) if delays else None,
    }


def test_handshake_loss_sweep(reporter):
    report = reporter("handshake_loss: completion and auth delay vs "
                      "frame loss, retransmission off/on")
    rows = []
    outcomes = {}
    for loss in LOSS_GRID:
        for retries in (False, True):
            outcome = run_city(loss, retries)
            outcomes[(loss, retries)] = outcome
            mode = "on" if retries else "off"
            rows.append((f"{loss:.0%}", mode,
                         f"{outcome['completed']}/{USERS}",
                         outcome["attempts"],
                         outcome["retransmits"],
                         "-" if outcome["median_delay"] is None
                         else f"{outcome['median_delay']:.2f}"))
            slug = f"loss{int(loss * 100)}_retry_{mode}"
            report.record(f"completed_{slug}", outcome["completed"])
            report.record(f"attempts_{slug}", outcome["attempts"])
            report.record(f"retransmits_{slug}",
                          outcome["retransmits"])
            if outcome["median_delay"] is not None:
                report.record(f"median_delay_{slug}",
                              round(outcome["median_delay"], 4))
    report.table(("loss", "retries", "completed", "attempts",
                  "retransmits", "median delay (s)"), rows)
    report.row(f"{USERS} users, 1 router, {DURATION:.0f}s virtual, "
               f"seed {SEED}; policy: t0={RETRY.initial_timeout}s x"
               f"{RETRY.backoff_factor} cap {RETRY.max_timeout}s, "
               f"{RETRY.max_retries} retries")

    # Lossless baseline: everyone connects either way, and the
    # retransmitter stays silent (no spurious duplicates).
    assert outcomes[(0.0, False)]["completed"] == USERS
    assert outcomes[(0.0, True)]["completed"] == USERS
    assert outcomes[(0.0, True)]["retransmits"] == 0
    # Under real loss the retransmitter must actually fire, and never
    # complete fewer handshakes than timeout-and-new-beacon alone.
    for loss in LOSS_GRID[1:]:
        assert outcomes[(loss, True)]["completed"] \
            >= outcomes[(loss, False)]["completed"]
    assert any(outcomes[(loss, True)]["retransmits"] > 0
               for loss in LOSS_GRID[1:])

"""Ablation A1 -- the asymmetric/symmetric hybrid session design (V.C).

Paper: "PEACE adopts an asymmetric-symmetric hybrid approach for
session authentication to reduce computational cost ... all subsequent
data exchanging of the same session is authenticated through highly
efficient MAC-based approach."

The ablation compares the shipped design (one group-signature handshake
+ N MAC-authenticated packets) against the straw man the paper is
implicitly arguing with (group-sign every packet), in both measured
wall time and the paper's own operation-count currency.
"""

import random
import time

from repro import instrument
from repro.core import groupsig


def test_a1_hybrid_vs_sign_every_packet(reporter, ss512_scheme,
                                        test_deployment, benchmark):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(101)
    packets = 20
    payload = b"x" * 256

    # Straw man: one group signature per data packet (SS512).
    start = time.perf_counter()
    with instrument.count_operations() as straw_ops:
        for i in range(packets):
            message = payload + i.to_bytes(4, "big")
            signature = groupsig.sign(gpk, keys[0], message, rng=rng)
            groupsig.verify(gpk, message, signature)
    straw_time = time.perf_counter() - start

    # PEACE: one handshake (2 sign + 2 verify ops total across both
    # sides of the TEST deployment) then MAC-only data.
    deployment = test_deployment
    start = time.perf_counter()
    with instrument.count_operations() as hybrid_ops:
        user_session, router_session = deployment.connect("alice", "MR-1")
        for _ in range(packets):
            router_session.receive(user_session.send(payload))
    hybrid_time = time.perf_counter() - start

    report = reporter("A1: hybrid sessions vs sign-every-packet "
                      f"({packets} packets)")
    report.table(
        ("design", "pairings", "exp", "MAC ops", "wall"),
        [("group-sign every packet (SS512)",
          straw_ops.pairings(), straw_ops.exponentiations(),
          straw_ops.total("mac"), f"{straw_time:.2f}s"),
         ("PEACE hybrid: 1 handshake + MACs (TEST)",
          hybrid_ops.pairings(), hybrid_ops.exponentiations(),
          hybrid_ops.total("mac"), f"{hybrid_time:.2f}s")])
    report.row("pairings per packet: "
               f"straw man {straw_ops.pairings() / packets:.1f}, "
               f"hybrid {hybrid_ops.pairings() / packets:.2f} "
               "(amortized handshake)")

    # Shape claims: the hybrid design's pairing count is a constant
    # (handshake only) while the straw man pays 5 pairings per packet.
    assert straw_ops.pairings() == packets * 5
    assert hybrid_ops.pairings() == 5   # one sign + one verify
    assert hybrid_ops.total("mac") >= packets


def test_a1_mac_packet_wall_time(benchmark, test_deployment):
    deployment = test_deployment
    user_session, router_session = deployment.connect("bob", "MR-1")
    payload = b"y" * 256

    def roundtrip():
        return router_session.receive(user_session.send(payload))

    assert benchmark(roundtrip) == payload

"""E6 -- Bogus data injection filtering (Section V.A).

Paper claim: 'such bogus data traffic will be all immediately
filtered' -- for outsiders (no keys), revoked users (keys in the URL),
and replayed traffic.  The bench runs the combined campaign and
reports acceptance per attacker class.
"""

from repro.analysis.attack_eval import injection_campaign


def test_e6_injection_filtering_table(reporter):
    result = injection_campaign(seed=61, user_count=4, duration=120.0)
    report = reporter("E6: bogus injection filtering")
    report.table(
        ("traffic class", "attempted", "accepted", "filtered"),
        [
            ("legitimate users", result.legit_attempted,
             result.legit_accepted,
             result.legit_attempted - result.legit_accepted),
            ("outsider forged M.2", result.outsider_injected,
             result.outsider_accepted,
             result.outsider_injected - result.outsider_accepted),
            ("replayed M.2", result.replays_sent,
             result.replays_accepted,
             result.replays_sent - result.replays_accepted),
            ("revoked-user M.2", result.revoked_attempts,
             result.revoked_accepted,
             result.revoked_attempts - result.revoked_accepted),
            ("sessionless bogus data", result.bogus_data_frames,
             result.bogus_data_accepted,
             result.bogus_data_frames - result.bogus_data_accepted),
        ])

    # The paper's claim, verbatim: every bogus class fully filtered,
    # every legitimate attempt served.
    assert result.outsider_accepted == 0
    assert result.replays_accepted == 0
    assert result.revoked_accepted == 0
    assert result.bogus_data_accepted == 0
    assert result.legit_accepted == result.legit_attempted > 0


def test_e6_rejection_wall_time(benchmark, test_deployment):
    """Cost of rejecting one well-formed forgery (the router's burden
    that motivates E5's puzzles)."""
    import random

    from repro.errors import InvalidSignature
    from repro.wmn.adversary import forge_access_request

    deployment = test_deployment
    router = deployment.routers["MR-1"]
    rng = random.Random(62)

    def reject_one():
        beacon = router.make_beacon()
        forged = forge_access_request(deployment.group, beacon,
                                      deployment.clock.now(), rng)
        try:
            router.process_request(forged)
        except InvalidSignature:
            return True
        raise AssertionError("forgery accepted")

    assert benchmark.pedantic(reject_one, rounds=5, iterations=1)

"""E5 -- DoS resilience via client puzzles (Section V.A, DoS attacks).

Paper claims: verification's pairing cost 'can be easily exploited by
the adversary'; with client puzzles 'the adversary must have abundant
resources ... while [legitimate users] are still able to obtain
network accesses regardless the existence of the attack'.

The bench floods one router at increasing rates, with the defense off
and on, and reports legitimate-user outcomes and router CPU load.
"""

import math

import pytest

from repro.analysis.attack_eval import dos_campaign
from repro.crypto.puzzles import Puzzle, solve_puzzle


def test_e5_flood_sweep(reporter):
    report = reporter("E5: DoS flood, puzzles off vs on")
    rows = []
    duration = 45.0
    for rate in (10.0, 30.0):
        for puzzles in (False, True):
            result = dos_campaign(flood_rate=rate, puzzles=puzzles,
                                  difficulty=14, duration=duration,
                                  seed=51, user_count=3)
            delay = ("-" if math.isnan(result.mean_auth_delay)
                     else f"{result.mean_auth_delay:.2f}")
            rows.append((
                f"{rate:.0f}/s", "on" if puzzles else "off",
                f"{result.legit_success_rate:.0%}", delay,
                result.requests_dropped_queue,
                f"{result.router_cpu_busy / duration:.0%}",
                result.attacker_sent, result.attacker_puzzle_limited))
    report.table(("flood", "puzzles", "legit ok", "auth delay s",
                  "queue drops", "router CPU", "atk sent",
                  "atk throttled"), rows)

    # Shape claims at the heavy flood level:
    heavy_off = dos_campaign(flood_rate=30.0, puzzles=False,
                             duration=duration, seed=52, user_count=3)
    heavy_on = dos_campaign(flood_rate=30.0, puzzles=True, difficulty=14,
                            duration=duration, seed=52, user_count=3)
    # Puzzles slash router CPU consumed by the attack ...
    assert heavy_on.router_cpu_busy < heavy_off.router_cpu_busy * 0.7
    # ... throttle the attacker ...
    assert heavy_on.attacker_puzzle_limited > 0
    # ... and keep legitimate users served.
    assert heavy_on.legit_success_rate == 1.0


def test_e5_puzzle_asymmetry(reporter):
    """Solving costs ~2^k hashes, verification costs one (Juels-
    Brainard's defining asymmetry)."""
    import time
    report = reporter("E5b: puzzle solve/verify asymmetry")
    rows = []
    for bits in (8, 12, 16):
        puzzle = Puzzle.fresh(bits)
        start = time.perf_counter()
        solution = solve_puzzle(puzzle, b"bench")
        solve_time = time.perf_counter() - start
        from repro.crypto.puzzles import verify_solution
        start = time.perf_counter()
        assert verify_solution(puzzle, b"bench", solution)
        verify_time = time.perf_counter() - start
        rows.append((bits, f"{solve_time * 1000:.2f}",
                     f"{verify_time * 1e6:.1f}",
                     f"{solve_time / max(verify_time, 1e-9):.0f}x"))
    report.table(("difficulty bits", "solve ms", "verify us",
                  "asymmetry"), rows)


def test_e5_puzzle_solve_wall_time(benchmark):
    puzzle = Puzzle.fresh(12)
    counter = [0]

    def solve():
        counter[0] += 1
        return solve_puzzle(puzzle, b"bench-%d" % counter[0])

    benchmark.pedantic(solve, rounds=5, iterations=1)

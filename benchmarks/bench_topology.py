"""F1 -- The three-layer metropolitan architecture of Fig. 1.

The paper's Fig. 1 is structural: wired APs on layer 1, a mesh-router
backbone on layer 2, mobile users on layer 3.  The bench generates the
default metropolitan layout, reports its structural statistics, and
checks the properties the paper's system assumptions require (Section
III.A: 'a well connected WMN that covers the whole area of a city').
"""

import math

from repro.wmn.topology import TopologyConfig, build_topology, topology_report


def test_f1_architecture_report(reporter):
    report = reporter("F1: three-layer metropolitan topology (Fig. 1)")
    rows = []
    for grid, users in ((2, 20), (4, 40), (6, 80)):
        config = TopologyConfig(area_side=500.0 * grid, router_grid=grid,
                                user_count=users, seed=10 + grid)
        stats = topology_report(build_topology(config))
        rows.append((f"{grid}x{grid}", int(stats["routers"]),
                     int(stats["gateways"]), int(stats["users"]),
                     f"{stats['area_km2']:.0f}",
                     "yes" if stats["backbone_connected"] else "no",
                     f"{stats['mean_router_degree']:.1f}",
                     f"{stats['mean_hops_to_gateway']:.2f}",
                     f"{stats['user_coverage_fraction']:.0%}"))
    report.table(("grid", "routers", "APs", "users", "km^2",
                  "connected", "mean degree", "mean hops to AP",
                  "user coverage"), rows)

    # Section III.A assumptions hold for the default city:
    stats = topology_report(build_topology(TopologyConfig(seed=0)))
    assert stats["backbone_connected"] == 1.0
    assert stats["user_coverage_fraction"] >= 0.9
    assert not math.isinf(stats["max_hops_to_gateway"])


def test_f1_topology_build_wall_time(benchmark):
    config = TopologyConfig(router_grid=6, user_count=200, seed=3)
    topology = benchmark(build_topology, config)
    assert len(topology.router_positions) == 36

"""Ablation A3 -- URL growth management and beacon overhead.

Paper: "PEACE can proactively control the size of URL" and carries the
URL in every beacon.  This ablation quantifies what URL growth costs
on the two axes that matter: beacon bytes (every user hears every
beacon) and verification pairings (every handshake scans the URL) --
and shows how the epoch-rotation renewal (membership maintenance)
resets both.
"""

import random

from repro.core.deployment import Deployment
from repro.wmn.costmodel import CostModel


def _fresh(seed=121, pool=24):
    users = [(f"u{i}", ["Company X"]) for i in range(8)]
    return Deployment.build(preset="TEST", seed=seed,
                            groups={"Company X": pool},
                            users=users, routers=["MR-1"])


def test_a3_url_growth_cost(reporter):
    deployment = _fresh()
    router = deployment.routers["MR-1"]
    cost = CostModel()
    report = reporter("A3: URL growth -> beacon bytes & verify cost")
    rows = []
    victims = [name for name in deployment.users][:6]
    revoked = 0
    for step in range(4):
        router.refresh_lists()
        beacon = router.make_beacon()
        url_len = len(router.url.tokens)
        rows.append((url_len, len(beacon.encode()),
                     3 + 2 * url_len,
                     f"{cost.group_verify(url_len) * 1000:.0f}"))
        if step < 3:
            for _ in range(2):
                name = victims[revoked]
                index = deployment.users[name].credentials[
                    "Company X"].index
                deployment.operator.revoke_user_key(index)
                revoked += 1
    report.table(("|URL|", "beacon bytes", "verify pairings",
                  "verify ms (cost model)"), rows)

    # Epoch rotation resets the URL and the beacon size.
    grown_beacon_size = rows[-1][1]
    deployment.rotate_epoch(exclude=victims[:revoked])
    router.refresh_lists()
    reset_beacon = router.make_beacon()
    report.row(f"after epoch rotation: |URL|=0, beacon "
               f"{len(reset_beacon.encode())} B "
               f"(was {grown_beacon_size} B)")

    # Shape: beacon grows linearly with URL; rotation restores it.
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes) and sizes[-1] > sizes[0]
    assert len(reset_beacon.encode()) < grown_beacon_size
    assert len(router.url.tokens) == 0
    # The excluded users hold no credentials post-rotation.
    from repro.errors import ParameterError
    import pytest
    with pytest.raises(ParameterError):
        deployment.connect(victims[0], "MR-1")


def test_a3_beacon_encode_wall_time(benchmark):
    deployment = _fresh(seed=122)
    for name in list(deployment.users)[:4]:
        index = deployment.users[name].credentials["Company X"].index
        deployment.operator.revoke_user_key(index)
    router = deployment.routers["MR-1"]
    router.refresh_lists()
    beacon = router.make_beacon()
    benchmark(beacon.encode)

"""Observability overhead: traced vs untraced sign+verify (SS512).

The tracing layer's contract (DESIGN.md, docs/OBSERVABILITY.md) is
that full collection -- stage spans, the instrument->span op bridge,
timers, and counters -- costs at most 10% on the paper-comparable
SS512 sign+verify path, and that the *disabled* path (no registry
installed) stays in the noise.  This benchmark measures both and
records the machine-checked boolean ``overhead_le_10pct`` that
``scripts/bench_gate.py`` gates on.

Span bookkeeping is microseconds per handshake while one SS512
sign+verify is tens of milliseconds of pairing arithmetic, so the 10%
ceiling has orders-of-magnitude headroom; a failure here means the
hot path grew a per-operation cost (e.g. an op-sink doing real work
per ``note()``), not host noise.
"""

import random
import time

from repro import obs
from repro.core import groupsig

ROUNDS = 4
ITERATIONS = 2
MAX_OVERHEAD = 0.10


def _best(callable_, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead(reporter, ss512_scheme):
    rep = reporter("obs_overhead: tracing overhead on SS512 sign+verify")
    gpk, _master, keys = ss512_scheme
    rng = random.Random(17)
    message = b"obs-overhead"
    # Warm the engine tables outside every timed region (one-time,
    # per-gpk cost; both variants would otherwise race to pay it).
    gpk.engine.g2_table
    gpk.engine.w_table
    gpk.engine.base_pairing()
    groupsig.verify(gpk, message, groupsig.sign(gpk, keys[0], message,
                                                rng=rng))

    def workload():
        for _ in range(ITERATIONS):
            signature = groupsig.sign(gpk, keys[0], message, rng=rng)
            groupsig.verify(gpk, message, signature)

    def traced_workload():
        registry = obs.MetricsRegistry()
        with obs.collecting(registry):
            workload()
        return registry

    untraced = _best(workload)
    traced = _best(traced_workload)
    overhead = traced / untraced - 1.0

    registry = traced_workload()
    spans = registry.snapshot()["spans"]["records"]
    # Sanity: the traced run really collected stage spans with op
    # attribution (otherwise "low overhead" measures nothing).
    assert any(s["name"] == "groupsig.sign" and s["ops"].get("pairing")
               for s in spans)
    assert any(s["name"] == "groupsig.spk" and s["ops"].get("pairing")
               for s in spans)

    rep.table(
        ["variant", "best ms", "overhead"],
        [["untraced", f"{untraced * 1e3:.1f}", "--"],
         ["traced", f"{traced * 1e3:.1f}", f"{overhead * 100:+.1f}%"]])
    rep.record("iterations", ITERATIONS)
    rep.record("untraced_seconds", untraced)
    rep.record("traced_seconds", traced)
    rep.record("overhead_fraction", overhead)
    rep.record("max_overhead_fraction", MAX_OVERHEAD)
    rep.record("spans_per_traced_run", len(spans))
    rep.record("overhead_le_10pct", bool(overhead <= MAX_OVERHEAD))
    assert overhead <= MAX_OVERHEAD

"""Ablation A4 -- mesh-router authentication capacity.

The paper's computational analysis (V.C) implies a router's handshake
throughput ceiling: one virtual CPU serving group-signature
verifications at ``6 exp + (3 + 2|URL|) pairings`` each.  This bench
sweeps the offered handshake load against that ceiling and reports the
classic M/D/1-style saturation: completions track offered load until
the CPU saturates, then the queue sheds the excess.
"""

import random

from repro.core.protocols.dos import DosPolicy
from repro.wmn.costmodel import CostModel
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def _arrival_scenario(seed: int, user_count: int,
                      reconnect_interval: float) -> Scenario:
    """Users that reconnect on a timer create a steady handshake load."""
    return Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=300.0, router_grid=1,
                                user_count=user_count, seed=seed,
                                access_range=400.0),
        group_sizes=(("Company X", max(8, user_count)),),
        beacon_interval=2.0,
        reconnect_interval=reconnect_interval))


def test_a4_capacity_sweep(reporter):
    cost = CostModel()
    service_time = cost.group_verify(0)
    capacity = 1.0 / service_time
    report = reporter("A4: router handshake capacity "
                      f"(service {service_time * 1000:.0f} ms -> "
                      f"ceiling {capacity:.1f}/s)")
    duration = 120.0
    rows = []
    results = []
    for users, interval in ((4, 30.0), (8, 15.0), (16, 6.0), (24, 3.0)):
        scenario = _arrival_scenario(200 + users, users, interval)
        for user in scenario.sim_users.values():
            user.connect_timeout = 8.0
        scenario.run(duration)
        metrics = scenario.router_metrics()
        offered = metrics["requests_enqueued"] / duration
        completed = metrics["handshakes_completed"] / duration
        cpu = metrics["cpu_busy_seconds"] / duration
        rows.append((users, f"{offered:.2f}", f"{completed:.2f}",
                     f"{cpu:.0%}",
                     int(metrics["requests_dropped_queue"])))
        results.append((offered, completed, cpu))
    report.table(("users", "offered req/s", "completed/s",
                  "router CPU", "queue drops"), rows)

    # Shape claims: throughput rises with load but the CPU fraction
    # approaches (and never exceeds) saturation.
    completions = [completed for _o, completed, _c in results]
    assert completions[-1] > completions[0]
    assert all(cpu <= 1.01 for _o, _c, cpu in results)
    # Completed rate never exceeds the service ceiling.
    assert all(completed <= capacity * 1.05
               for _o, completed, _c in results)


def test_a4_calibrated_cost_model(reporter):
    """CostModel.calibrate() reflects this host's real primitives."""
    calibrated = CostModel.calibrate(preset="TEST", repeats=2)
    default = CostModel()
    report = reporter("A4b: calibrated vs default cost model (TEST host)")
    report.table(
        ("parameter", "default (SS512-class)", "calibrated (TEST)"),
        [("pairing ms", f"{default.pairing * 1000:.1f}",
          f"{calibrated.pairing * 1000:.2f}"),
         ("G1 exp ms", f"{default.exponentiation * 1000:.1f}",
          f"{calibrated.exponentiation * 1000:.2f}"),
         ("group verify(0) ms", f"{default.group_verify(0) * 1000:.0f}",
          f"{calibrated.group_verify(0) * 1000:.1f}"),
         ("ceiling (handshakes/s)",
          f"{1 / default.group_verify(0):.1f}",
          f"{1 / calibrated.group_verify(0):.1f}")])
    assert calibrated.pairing > 0
    assert calibrated.group_verify(4) > calibrated.group_verify(0)


def test_a4_sustained_load_wall_time(benchmark):
    def run():
        scenario = _arrival_scenario(999, 8, 10.0)
        scenario.run(60.0)
        return scenario.router_metrics()["handshakes_completed"]

    completed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert completed > 0

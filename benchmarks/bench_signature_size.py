"""E1 -- Communication overhead (Section V.C).

Paper claim: the group signature is 2 G1 + 5 Z_p elements; with the
MNT-170 parameters that is 1,192 bits = 149 bytes, "almost the same"
as a 128-byte RSA-1024 signature.  This bench regenerates the size
table (paper arithmetic + our measured encodings) and times the
encoders.
"""

import random

from repro.analysis.sizes import paper_signature_accounting, signature_size_table
from repro.core import groupsig
from repro.sig.rsa import rsa_generate


def test_e1_signature_size_table(reporter, ss512_group, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    report = reporter("E1: signature sizes (paper V.C communication)")
    rows = [(r.scheme, r.signature_bits, r.signature_bytes, r.note)
            for r in signature_size_table(ss512_group)]
    report.table(("scheme", "bits", "bytes", "note"), rows)

    paper = paper_signature_accounting()
    assert paper.signature_bits == 1192 and paper.signature_bytes == 149

    signature = groupsig.sign(gpk, keys[0], b"size-bench",
                              rng=random.Random(1))
    measured = len(signature.encode())
    formula = groupsig.GroupSignature.encoded_size(ss512_group)
    report.row(f"measured SS512 signature: {measured} B "
               f"(formula {formula} B)")
    assert measured == formula

    rsa = rsa_generate(1024, rng=random.Random(2))
    rsa_len = len(rsa.sign(b"size-bench"))
    report.row(f"measured RSA-1024 signature: {rsa_len} B (paper: 128 B)")
    assert rsa_len == 128
    # Shape claim: group signature within ~1.3x of RSA-1024 in the
    # paper's arithmetic.
    assert paper.signature_bytes / rsa_len < 1.3


def test_e1_group_signature_encode(benchmark, ss512_group, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    signature = groupsig.sign(gpk, keys[0], b"encode-bench",
                              rng=random.Random(3))
    blob = benchmark(signature.encode)
    assert len(blob) == groupsig.GroupSignature.encoded_size(ss512_group)


def test_e1_group_signature_decode(benchmark, ss512_group, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    blob = groupsig.sign(gpk, keys[0], b"decode-bench",
                         rng=random.Random(4)).encode()
    decoded = benchmark(groupsig.GroupSignature.decode, ss512_group, blob)
    assert decoded.encode() == blob

"""revocation_scale -- sharded URL + tag cache vs the serial Eq.3 scan.

The paper's verifier-local revocation walks the whole URL (one table
pairing per listed token per verification).  The sharded path
(:mod:`repro.core.revocation`) computes the signature's period tag --
2 pairings, |URL|-independent -- and consults exactly one shard.  This
experiment measures the crossover at metropolitan URL sizes and holds
the fast path to *bit-identical* behaviour: same outcomes, same error
message, same ``token_index`` as the serial first-match scan, including
under shuffled URL orderings (chaos seeds 101/202/303).

The second half measures epidemic CRL/URL distribution: a single
router refreshes from the NO, every other router starts stale, and
push-pull anti-entropy (delta-first, full-list fallback) must converge
the whole overlay within a bounded number of rounds under 15%
per-exchange loss.

CI runs |URL| in {100, 1000} and a 24-router overlay; the nightly
job sets ``BENCH_REVOCATION_LARGE=1`` to add |URL| = 10^4, a
1000-router overlay, and a telemetry-rollup JSONL from a full gossip
scenario.  Gates (scripts/bench_gate.py): sharded+cached >= 5x the
linear scan at |URL| = 1000, identity booleans, and convergence.
"""

import os
import random
import time

import pytest

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import RevocationToken
from repro.core.operator_entity import NetworkOperator
from repro.core.revocation import (
    RevocationState,
    RevocationTagCache,
    epoch_period,
    serial_scan_outcome,
)
from repro.core.router import MeshRouter
from repro.pairing import PairingGroup
from repro.wmn.gossip import ListGossip
from repro.wmn.simclock import EventLoop, SimClock

URL_SIZES = (100, 1000)
LARGE_URL_SIZE = 10_000
GATE_URL_SIZE = 1000
REQUIRED_SPEEDUP = 5.0
NUM_SHARDS = 64
CHAOS_SEEDS = (101, 202, 303)

EPIDEMIC_ROUTERS = 24
LARGE_EPIDEMIC_ROUTERS = 1000
EPIDEMIC_LOSS = 0.15
EPIDEMIC_MAX_ROUNDS = 48

LARGE = os.environ.get("BENCH_REVOCATION_LARGE") == "1"


def _interleaved_best(fn_a, fn_b, rounds):
    """Min-of-rounds for two callables with alternating measurement
    (same estimator as bench_batch_core: host drift on a shared 1-core
    box must not land on one side of the ratio only)."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _check_outcome(state, message, signature):
    """The sharded check's outcome in the serial scan's shape."""
    try:
        state.check(message, signature)
    except groupsig.RevokedKeyError as exc:
        return exc
    return None


def _build_overlay(router_count, seed):
    """One stale overlay: NO + routers all holding version-0 lists,
    then a burst of revocations only the seed router fetches."""
    loop = EventLoop(start=1_000_000.0)
    clock = SimClock(loop)
    operator = NetworkOperator(PairingGroup("TEST"), clock=clock,
                               rng=random.Random(seed))
    routers = [MeshRouter(f"MR-{i:04d}", operator, clock=clock,
                          rng=random.Random(seed + 1 + i))
               for i in range(router_count)]
    # Revocations happen *after* every router snapshotted version 0.
    gm_bundle, _ttp = operator.register_user_group("Metro", 8)
    for index, _x in gm_bundle.entries[:4]:
        operator.revoke_user_key(index)
    operator.provision_router("decoy-router")
    operator.revoke_router("decoy-router")
    routers[0].refresh_lists()
    gossip = ListGossip(loop, routers, round_period=30.0, fanout=2,
                        loss_probability=EPIDEMIC_LOSS,
                        rng=random.Random(seed + 0x60551))
    return gossip


@pytest.fixture(scope="module")
def scale_scheme():
    group = PairingGroup("TEST")
    rng = random.Random(2026)
    gpk, master = groupsig.keygen_master(group, rng)
    keys = [groupsig.issue_member_key(group, master, 700 + i, (i, 0), rng)
            for i in range(2)]
    return group, gpk, keys, rng


def test_revocation_scale(reporter, scale_scheme):
    group, gpk, keys, rng = scale_scheme
    revoked_key, clean_key = keys
    period = epoch_period(gpk.epoch)
    message = b"revocation-scale"
    sig_revoked = groupsig.sign(gpk, revoked_key, message, rng=rng,
                                period=period)
    sig_clean = groupsig.sign(gpk, clean_key, message, rng=rng,
                              period=period)

    sizes = URL_SIZES + ((LARGE_URL_SIZE,) if LARGE else ())
    # Decoys are random G1 points (any URL entry is just a token): the
    # clean signer's scan walks every one of them, the paper's
    # worst case and the cost sharding removes.
    decoys = [RevocationToken(group.random_g1(rng))
              for _ in range(max(sizes) - 1)]

    cache = RevocationTagCache(capacity=2 * max(sizes))
    report = reporter("revocation_scale: sharded URL + tag cache vs "
                      "serial Eq.3 scan; epidemic spread under loss")

    outcomes_identical = True
    token_index_identical = True
    rows = []
    speedups = {}
    for size in sizes:
        # The revoked signer's token sits at the END of the URL: the
        # serial scan's worst case for a revoked signature, and the
        # largest token_index the identity check can get wrong.
        tokens = tuple(decoys[:size - 1]) + (RevocationToken(revoked_key.a),)
        state = RevocationState(gpk, num_shards=NUM_SHARDS, cache=cache)
        state.update(tokens, url_version=size)

        # Bit-identity at this size: clean passes both paths, revoked
        # raises the same error text and token_index on both paths.
        serial_clean = serial_scan_outcome(gpk, message, sig_clean,
                                           tokens, period)
        serial_revoked = serial_scan_outcome(gpk, message, sig_revoked,
                                             tokens, period)
        sharded_clean = _check_outcome(state, message, sig_clean)
        sharded_revoked = _check_outcome(state, message, sig_revoked)
        outcomes_identical &= (serial_clean is None
                               and sharded_clean is None
                               and serial_revoked is not None
                               and sharded_revoked is not None
                               and str(serial_revoked)
                               == str(sharded_revoked))
        token_index_identical &= (
            serial_revoked is not None and sharded_revoked is not None
            and serial_revoked.token_index == sharded_revoked.token_index
            == size - 1)

        linear_s, sharded_s = _interleaved_best(
            lambda t=tokens: serial_scan_outcome(gpk, message, sig_clean,
                                                 t, period),
            lambda s=state: s.check(message, sig_clean),
            rounds=3)
        speedups[size] = linear_s / sharded_s
        rows.append((size, f"{linear_s * 1000:.2f}",
                     f"{sharded_s * 1e6:.1f}",
                     f"{speedups[size]:.1f}x"))

    # Shuffled-URL identity at the gated size: the sharded lookup must
    # report the *same first-match index* the serial scan does for any
    # ordering (chaos seeds fixed by the issue).
    base = list(tuple(decoys[:GATE_URL_SIZE - 1])
                + (RevocationToken(revoked_key.a),))
    for seed in CHAOS_SEEDS:
        shuffled = list(base)
        random.Random(seed).shuffle(shuffled)
        state = RevocationState(gpk, num_shards=NUM_SHARDS, cache=cache)
        state.update(tuple(shuffled), url_version=seed)
        serial = serial_scan_outcome(gpk, message, sig_revoked,
                                     tuple(shuffled), period)
        sharded = _check_outcome(state, message, sig_revoked)
        outcomes_identical &= (serial is not None and sharded is not None
                               and str(serial) == str(sharded))
        token_index_identical &= (
            serial is not None and sharded is not None
            and serial.token_index == sharded.token_index)

    # Cache contract on the measured state: a warm rebuild derives no
    # tags at all (every lookup hits), the property that makes delta
    # updates cheap at metropolitan scale.
    warm_state = RevocationState(gpk, num_shards=NUM_SHARDS, cache=cache)
    with instrument.count_operations() as warm_ops:
        warm_state.update(tuple(base), url_version=GATE_URL_SIZE + 1)
    rebuild_pairing_free = warm_ops.total("pairing") == 0

    report.table(("|URL|", "linear ms", "sharded us", "speedup"),
                 [(str(s), lin, sh, sp) for s, lin, sh, sp in rows])
    report.row(f"gate: sharded+cached >= {REQUIRED_SPEEDUP:g}x at "
               f"|URL| = {GATE_URL_SIZE}")
    report.record("url_sizes", list(sizes))
    report.record("num_shards", NUM_SHARDS)
    report.record("required_speedup", REQUIRED_SPEEDUP)
    for size in sizes:
        report.record(f"speedup_url{size}", speedups[size])
    report.record("outcomes_identical", outcomes_identical)
    report.record("token_index_identical", token_index_identical)
    report.record("rebuild_pairing_free", rebuild_pairing_free)
    report.record("chaos_seeds", list(CHAOS_SEEDS))

    assert outcomes_identical
    assert token_index_identical
    assert rebuild_pairing_free
    assert speedups[GATE_URL_SIZE] >= REQUIRED_SPEEDUP, speedups

    # -- epidemic CRL/URL distribution under loss ----------------------
    router_count = LARGE_EPIDEMIC_ROUTERS if LARGE else EPIDEMIC_ROUTERS
    gossip = _build_overlay(router_count, seed=7)
    rounds = gossip.run_until_converged(EPIDEMIC_MAX_ROUNDS)
    converged = gossip.converged()

    # Replayability: the same seeds converge in the same number of
    # rounds with the same exchange/loss tallies.
    replay = _build_overlay(router_count, seed=7)
    replay_rounds = replay.run_until_converged(EPIDEMIC_MAX_ROUNDS)
    deterministic = (replay_rounds == rounds
                     and replay.exchanges == gossip.exchanges
                     and replay.losses == gossip.losses)

    report.table(
        ("routers", "loss", "rounds", "exchanges", "deltas", "full",
         "lost"),
        [(router_count, f"{EPIDEMIC_LOSS:.0%}", rounds, gossip.exchanges,
          gossip.deltas_applied, gossip.full_syncs, gossip.losses)])
    report.record("epidemic_routers", router_count)
    report.record("epidemic_loss_pct", EPIDEMIC_LOSS * 100)
    report.record("epidemic_rounds", rounds)
    report.record("epidemic_max_rounds", EPIDEMIC_MAX_ROUNDS)
    report.record("epidemic_converged", converged)
    report.record("epidemic_deterministic", deterministic)
    report.record("epidemic_exchanges", gossip.exchanges)
    report.record("epidemic_deltas_applied", gossip.deltas_applied)
    report.record("epidemic_full_syncs", gossip.full_syncs)
    report.record("epidemic_losses", gossip.losses)

    assert converged
    assert deterministic
    assert rounds <= EPIDEMIC_MAX_ROUNDS
    # Delta-first protocol: at least one exchange moved a delta, and
    # losses actually occurred (the 15% is real, not vacuous).
    assert gossip.deltas_applied + gossip.full_syncs > 0
    assert gossip.losses > 0


@pytest.mark.skipif(not LARGE, reason="nightly only "
                    "(BENCH_REVOCATION_LARGE=1)")
def test_nightly_gossip_scenario_telemetry(reporter):
    """Full-stack nightly run: a gossip + sharded-revocation scenario
    with telemetry windows, dumped as JSONL for the artifact upload."""
    from repro.wmn.scenario import Scenario, ScenarioConfig

    scenario = Scenario(ScenarioConfig(
        seed=42, gossip_period=45.0, gossip_loss=EPIDEMIC_LOSS,
        sharded_revocation=True, telemetry_window=60.0,
        list_refresh_period=120.0))
    scenario.run(600.0)
    scenario.publish_metrics()
    jsonl = scenario.telemetry_jsonl()

    out_dir = os.environ.get("BENCH_OUTPUT_DIR")
    report_dir = (os.path.join(out_dir, "reports") if out_dir
                  else os.path.join(os.path.dirname(__file__), "reports"))
    os.makedirs(report_dir, exist_ok=True)
    path = os.path.join(report_dir, "revocation_scale_telemetry.jsonl")
    with open(path, "w") as handle:
        handle.write(jsonl)

    report = reporter("revocation_scale_nightly: gossip scenario "
                      "telemetry rollups")
    report.record("telemetry_windows", jsonl.count("\n"))
    report.record("gossip_rounds",
                  scenario.gossip.rounds if scenario.gossip else 0)
    report.row(f"telemetry JSONL -> {path}")
    assert scenario.gossip is not None and scenario.gossip.rounds > 0
    assert jsonl

"""E4 -- Handshake rounds, message sizes, and authentication delay.

Paper claims (V.C communication): both AKA protocols complete in three
messages -- 'the minimal communication rounds necessary to achieve
mutual authentication' -- and the per-message overhead on the user is
one group signature.  The bench counts rounds and bytes on real
handshakes and measures auth delay in the simulated city.
"""

import random

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def test_e4_rounds_and_bytes(reporter, test_deployment):
    deployment = test_deployment
    router = deployment.routers["MR-1"]
    user = deployment.users["alice"]
    report = reporter("E4: handshake rounds and message sizes")

    beacon = router.make_beacon()                        # M.1
    request, pending = user.connect_to_router(beacon)    # M.2
    confirm, _rs = router.process_request(request)       # M.3
    user.complete_router_handshake(pending, confirm)

    url = beacon.url
    engine_i = deployment.users["alice"].peer_engine()
    engine_r = deployment.users["bob"].peer_engine()
    hello, pending_i = engine_i.initiate(beacon.g)           # M~.1
    response, pending_r = engine_r.respond(hello, url)       # M~.2
    peer_confirm, _si = engine_i.complete(pending_i, response, url)  # M~.3
    engine_r.finalize(pending_r, peer_confirm)

    from repro.core.groupsig import GroupSignature
    sig_bytes = GroupSignature.encoded_size(deployment.group)
    rows = [
        ("user-router", "M.1 beacon", len(beacon.encode()), "router"),
        ("user-router", "M.2 request", len(request.encode()), "user"),
        ("user-router", "M.3 confirm", len(confirm.encode()), "router"),
        ("user-user", "M~.1 hello", len(hello.encode()), "user"),
        ("user-user", "M~.2 response", len(response.encode()), "user"),
        ("user-user", "M~.3 confirm", len(peer_confirm.encode()), "user"),
    ]
    report.table(("protocol", "message", "bytes", "sender"), rows)
    report.row(f"group signature within M.2/M~.1/M~.2: {sig_bytes} B "
               f"(TEST preset)")
    report.row("rounds: 3 per protocol (paper: minimal for mutual auth)")
    # Machine-readable sizes for the regression gate: fully determined
    # by the wire format and the TEST parameter set, so exact-match.
    for _proto, label, size, _sender in rows:
        slug = label.split()[0].replace("~", "t").replace(".", "_")
        report.record(f"bytes_{slug}", size)
    report.record("bytes_group_signature", sig_bytes)
    report.record("rounds_per_protocol", 3)

    # Shape claims: exactly 3 messages each; the user's uplink cost in
    # M.2 is dominated by the group signature.
    assert len(rows) == 6
    assert sig_bytes > len(request.encode()) / 2


def test_e4_simulated_auth_delay(reporter):
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=44,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=12, seed=44,
                                access_range=600.0),
        group_sizes=(("Company X", 16), ("University Z", 16)),
        beacon_interval=5.0))
    scenario.run(60.0)
    stats = scenario.handshake_stats().summary()
    report = reporter("E4b: simulated authentication delay")
    report.table(("metric", "seconds"),
                 [(k, f"{v:.4f}") for k, v in stats.items()])
    cost = scenario.config.cost_model
    report.row(f"cost model: sign {cost.group_sign() * 1000:.0f} ms, "
               f"verify(0) {cost.group_verify(0) * 1000:.0f} ms")
    assert stats["count"] == 12
    # Delay floor: user-side sign + beacon check; ceiling: a couple of
    # beacon intervals under queueing.
    assert stats["mean"] > cost.group_sign()
    assert stats["p95"] < 15.0


def test_e4_full_handshake_wall_time(benchmark, test_deployment):
    deployment = test_deployment
    router = deployment.routers["MR-1"]
    user = deployment.users["alice"]

    def handshake():
        beacon = router.make_beacon()
        request, pending = user.connect_to_router(beacon)
        confirm, _ = router.process_request(request)
        return user.complete_router_handshake(pending, confirm)

    session = benchmark.pedantic(handshake, rounds=5, iterations=1)
    assert session is not None


def test_e4_peer_handshake_wall_time(benchmark, test_deployment):
    deployment = test_deployment

    def peer_handshake():
        return deployment.peer_connect("alice", "bob", "MR-1")

    sessions = benchmark.pedantic(peer_handshake, rounds=5, iterations=1)
    assert sessions[0].session_id == sessions[1].session_id

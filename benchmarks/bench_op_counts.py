"""E2 -- Computational overhead: abstract operation counts (V.C).

Paper claims: sign = 8 exponentiations + 2 pairings; verify = 6
exponentiations + (3 + 2|URL|) pairings; the fast-revocation variant
= 6 exponentiations + 5 pairings.  The bench measures all three with
the instrumented group and times sign/verify on SS512.
"""

import random

from repro.analysis.opreport import (
    expected_fast_verify_cost,
    expected_sign_cost,
    expected_verify_cost,
    measure_fast_verify_cost,
    measure_sign_cost,
    measure_verify_cost,
)
from repro.core import groupsig
from repro.core.groupsig import RevocationToken


def test_e2_operation_count_table(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    report = reporter("E2: operation counts (paper V.C computation)")
    rng = random.Random(10)
    decoys = [RevocationToken(k.a) for k in keys[1:11]]

    rows = []
    sign = measure_sign_cost(gpk, keys[0], rng=rng)
    exp_sign = expected_sign_cost()
    rows.append(("sign", f"{exp_sign.exponentiations} exp + "
                 f"{exp_sign.pairings} pair",
                 f"{sign.exponentiations} exp + {sign.pairings} pair",
                 f"{sign.wall_seconds * 1000:.1f} ms"))
    report.record("sign_exp", sign.exponentiations)
    report.record("sign_pair", sign.pairings)
    for url_size in (0, 1, 5, 10):
        measured = measure_verify_cost(gpk, keys[0],
                                       url=decoys[:url_size], rng=rng)
        expected = expected_verify_cost(url_size)
        rows.append((f"verify |URL|={url_size}",
                     f"{expected.exponentiations} exp + "
                     f"{expected.pairings} pair",
                     f"{measured.exponentiations} exp + "
                     f"{measured.pairings} pair",
                     f"{measured.wall_seconds * 1000:.1f} ms"))
        assert measured.pairings == expected.pairings
        assert measured.exponentiations == expected.exponentiations
        report.record(f"verify_url{url_size}_exp", measured.exponentiations)
        report.record(f"verify_url{url_size}_pair", measured.pairings)
    fast = measure_fast_verify_cost(gpk, keys[0], decoys, rng=rng)
    exp_fast = expected_fast_verify_cost()
    rows.append(("verify (fast revocation, any |URL|)",
                 f"{exp_fast.exponentiations} exp + "
                 f"{exp_fast.pairings} pair",
                 f"{fast.exponentiations} exp + {fast.pairings} pair",
                 f"{fast.wall_seconds * 1000:.1f} ms"))
    assert (fast.exponentiations, fast.pairings) == (6, 5)
    report.record("fast_verify_exp", fast.exponentiations)
    report.record("fast_verify_pair", fast.pairings)
    report.table(("operation", "paper", "measured", "wall (SS512)"), rows)

    assert (sign.exponentiations, sign.pairings) == (8, 2)


def test_e2_sign_wall_time(benchmark, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(11)
    result = benchmark.pedantic(
        lambda: groupsig.sign(gpk, keys[0], b"bench", rng=rng),
        rounds=5, iterations=1)
    groupsig.verify(gpk, b"bench", result)


def test_e2_verify_wall_time(benchmark, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    signature = groupsig.sign(gpk, keys[0], b"bench",
                              rng=random.Random(12))
    benchmark.pedantic(
        lambda: groupsig.verify(gpk, b"bench", signature),
        rounds=5, iterations=1)

"""E3 -- Verification cost vs |URL| (Section V.C).

Paper claims: 'the actually computational cost of signature
verification depends on the size of URL' (linear, +2 pairings per
token), and the precomputed-table variant is |URL|-independent at 6
exp + 5 pairings.  The bench sweeps |URL| and shows the crossover:
the fast variant wins as soon as |URL| > 1.
"""

import random
import time

from repro.analysis.opreport import url_scaling_table
from repro.core import groupsig
from repro.core.groupsig import PeriodRevocationTable, RevocationToken

PERIOD = b"bench-epoch"


def test_e3_url_scaling_series(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(20)
    decoys = [RevocationToken(k.a) for k in keys[1:33]]
    rows = url_scaling_table(gpk, keys[0], decoys,
                             url_sizes=[0, 1, 2, 4, 8, 16, 32], rng=rng)

    report = reporter("E3: verify cost vs |URL| (paper V.C scaling)")
    report.table(
        ("|URL|", "pairings (paper 3+2U)", "pairings measured",
         "exp", "wall ms"),
        [(r["url_size"], 3 + 2 * r["url_size"], r["pairings_measured"],
          r["exponentiations_measured"],
          f"{r['wall_seconds'] * 1000:.1f}") for r in rows])

    # Shape: linear in |URL|, slope 2 pairings per token.
    pairings = [r["pairings_measured"] for r in rows]
    sizes = [r["url_size"] for r in rows]
    for (s1, p1), (s2, p2) in zip(zip(sizes, pairings),
                                  zip(sizes[1:], pairings[1:])):
        assert p2 - p1 == 2 * (s2 - s1)
    # Wall time grows with |URL| (allow noise on small sizes).
    assert rows[-1]["wall_seconds"] > rows[0]["wall_seconds"]


def test_e3_fast_variant_crossover(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(21)
    decoys = [RevocationToken(k.a) for k in keys[1:33]]
    report = reporter("E3b: linear scan vs precomputed-table revocation")

    rows = []
    for url_size in (0, 1, 2, 8, 32):
        url = decoys[:url_size]
        message = b"crossover-%d" % url_size
        signature = groupsig.sign(gpk, keys[0], message, rng=rng)
        start = time.perf_counter()
        groupsig.verify(gpk, message, signature, url=url)
        linear = time.perf_counter() - start

        period_signature = groupsig.sign(gpk, keys[0], message, rng=rng,
                                         period=PERIOD)
        table = PeriodRevocationTable(gpk, url, PERIOD)   # amortized
        start = time.perf_counter()
        groupsig.verify(gpk, message, period_signature, period=PERIOD)
        assert not table.is_revoked(message, period_signature)
        fast = time.perf_counter() - start
        rows.append((url_size, f"{linear * 1000:.1f}",
                     f"{fast * 1000:.1f}",
                     "fast" if fast < linear else "linear"))
    report.table(("|URL|", "linear scan ms", "fast variant ms", "winner"),
                 rows)
    # Shape claim: the fast variant wins for large URLs.
    assert rows[-1][3] == "fast"


def test_e3_verify_url32_wall_time(benchmark, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    decoys = [RevocationToken(k.a) for k in keys[1:33]]
    signature = groupsig.sign(gpk, keys[0], b"bench",
                              rng=random.Random(22))
    benchmark.pedantic(
        lambda: groupsig.verify(gpk, b"bench", signature, url=decoys),
        rounds=3, iterations=1)

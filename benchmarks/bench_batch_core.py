"""batch_core -- the randomized multi-pairing batch engine vs sequential.

``verify_batch`` (engine mode) classifies every signature on the batch
core's fast kernels: fused Miller-loop/subgroup passes, per-token
fixed-argument line tables for the Eq.3 URL scan, one shared final
exponentiation for the SPK's pairing product, and deferred unit-circle
tag tests.  This experiment measures the resulting batch-vs-sequential
speedup on the paper-comparable workload -- SS512, |URL| = 8 -- across
batch sizes 1 / 4 / 16, against the same sequential baseline the seed's
3.84x figure used (per-item ``verify`` with ``use_engine=False``).

Both sides are timed min-of-rounds in this one process, with every
amortized table (token line tables, NAF step tables, GT fixed base)
built outside the timed region: the tables are per-gpk state, paid once
over the key's lifetime.  The acceptance gate is >= 6x at batch 16.

The bench also asserts the batch core's contract on the measured runs
themselves: identical outcomes and identical instrumented operation
counts vs the sequential path, i.e. per-signature *abstract* cost
(6 exps, ``3 + 2*|URL|`` pairings) is invariant -- only wall-clock
drops.  ``BENCH_batch_core.json`` carries the ms/sig curve and the
per-signature op counts.
"""

import random
import time

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import RevocationToken

URL_SIZE = 8
BATCH_SIZES = (1, 4, 16)
GATE_BATCH_SIZE = 16
REQUIRED_SPEEDUP = 6.0


def _best(callable_, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, rounds):
    """Min-of-rounds for two callables with alternating measurement.

    On a shared 1-core host the CPU budget drifts on a seconds scale;
    timing all of A's rounds and then all of B's lets that drift land
    on one side only and bias the ratio.  Alternating A/B within each
    round keeps the estimator (an honest min over full executions) but
    samples both sides across the same noise window.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_batch_core_speedup(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(512)
    # Signers outside the URL: every item walks the full revocation
    # scan, the paper's worst case and the cost the batch core amortizes.
    url = tuple(RevocationToken(k.a) for k in keys[32:32 + URL_SIZE])
    batches = {}
    for size in BATCH_SIZES:
        batches[size] = [
            (b"batch-core-%d-%d" % (size, i),
             groupsig.sign(gpk, keys[i % 8], b"batch-core-%d-%d" % (size, i),
                           rng=rng))
            for i in range(size)]

    # Amortized engine state, built outside the timed region.
    engine = gpk.engine
    engine.g2_table
    engine.w_table
    engine.base_pairing()
    engine.gt_table
    engine.g2_naf_steps
    engine.w_naf_steps
    engine.token_steps(url)

    # Contract check on the gated batch: same outcomes, same counts.
    gate_batch = batches[GATE_BATCH_SIZE]
    with instrument.count_operations() as batch_ops:
        batch_results = groupsig.verify_batch(gpk, gate_batch, url=url)
    with instrument.count_operations() as seq_ops:
        seq_results = [groupsig.verify(gpk, m, s, url=url,
                                       use_engine=False)
                       for m, s in gate_batch]
    assert all(r is None for r in batch_results)
    assert all(r is None for r in seq_results)
    assert batch_ops.snapshot() == seq_ops.snapshot()
    assert batch_ops.total("pairing") == \
        GATE_BATCH_SIZE * (3 + 2 * URL_SIZE)
    assert batch_ops.total("exp") == GATE_BATCH_SIZE * 4
    ops_identical = True  # asserted above; recorded for the gate

    per_sig = {}
    for size in BATCH_SIZES:
        if size == GATE_BATCH_SIZE:
            continue
        batch = batches[size]
        seconds = _best(lambda b=batch: groupsig.verify_batch(
            gpk, b, url=url), rounds=3)
        per_sig[size] = seconds / size

    # The gated ratio's two sides are timed interleaved so host drift
    # cannot land on one side only.
    gate_seconds, sequential_seconds = _interleaved_best(
        lambda: groupsig.verify_batch(gpk, gate_batch, url=url),
        lambda: [groupsig.verify(gpk, m, s, url=url, use_engine=False)
                 for m, s in gate_batch], rounds=3)
    per_sig[GATE_BATCH_SIZE] = gate_seconds / GATE_BATCH_SIZE
    rows = [(size, f"{per_sig[size] * 1000:.1f}") for size in BATCH_SIZES]
    sequential_per_sig = sequential_seconds / GATE_BATCH_SIZE
    speedup = sequential_per_sig / per_sig[GATE_BATCH_SIZE]

    report = reporter("batch_core: randomized multi-pairing batch "
                      "engine vs sequential (SS512)")
    report.table(
        ("batch size", "batch ms/sig"),
        [(str(size), ms) for size, ms in rows])
    report.row(f"sequential (engine off): "
               f"{sequential_per_sig * 1000:.1f} ms/sig")
    report.row(f"speedup at batch {GATE_BATCH_SIZE}: {speedup:.2f}x "
               f"(gate >= {REQUIRED_SPEEDUP:g}x)")
    report.record("url_size", URL_SIZE)
    report.record("gate_batch_size", GATE_BATCH_SIZE)
    for size in BATCH_SIZES:
        report.record(f"batch{size}_ms_per_sig", per_sig[size] * 1000)
    report.record("sequential_ms_per_sig", sequential_per_sig * 1000)
    report.record("batch_speedup_16", speedup)
    report.record("required_speedup", REQUIRED_SPEEDUP)
    report.record("op_counts_identical", ops_identical)
    report.record("pairings_per_sig", 3 + 2 * URL_SIZE)
    report.record("exps_per_sig", 4)
    report.record("op_counts_batch", batch_ops.snapshot())

    assert speedup >= REQUIRED_SPEEDUP, speedup

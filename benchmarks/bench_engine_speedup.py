"""E9 -- Engine-layer speedup: precomputation vs naive verification.

The crypto engine (fixed-argument pairing tables, cached base pairing,
wNAF multi-exponentiation) is a pure implementation-level optimisation:
it must leave every instrumented operation count untouched while cutting
wall-clock time.  This experiment measures both halves of that contract
on the paper-comparable SS512 preset:

* revocation-scan verification (|URL| = 32) engine-on vs engine-off,
  the acceptance gate (>= 1.5x) for the engine refactor;
* base verification (|URL| = 0) engine-on vs engine-off;
* batch throughput: ``verify_batch`` vs sequential ``verify``.

Machine-readable results land in ``BENCH_engine_speedup.json``.
"""

import random
import time

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import RevocationToken

URL_SIZE = 32
REQUIRED_SPEEDUP = 1.5


def _time(callable_, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_e9_engine_speedup(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(90)
    url = [RevocationToken(k.a) for k in keys[1:1 + URL_SIZE]]
    message = b"engine-speedup"
    signature = groupsig.sign(gpk, keys[0], message, rng=rng)

    # Build the per-gpk tables outside the timed region: they are a
    # one-time cost per system parameter set, amortized over the gpk's
    # lifetime (that amortization is the whole point of the engine).
    gpk.engine.g2_table
    gpk.engine.w_table
    gpk.engine.base_pairing()

    # Count invariance first: identical instrumented cost either way.
    counts = {}
    for use_engine in (True, False):
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, message, signature, url=url,
                            use_engine=use_engine)
        counts[use_engine] = ops.snapshot()
    assert counts[True] == counts[False]
    assert counts[True]["pairing"] == 3 + 2 * URL_SIZE

    scan_on = _time(lambda: groupsig.verify(
        gpk, message, signature, url=url, use_engine=True))
    scan_off = _time(lambda: groupsig.verify(
        gpk, message, signature, url=url, use_engine=False))
    scan_speedup = scan_off / scan_on

    base_on = _time(lambda: groupsig.verify(
        gpk, message, signature, use_engine=True))
    base_off = _time(lambda: groupsig.verify(
        gpk, message, signature, use_engine=False))
    base_speedup = base_off / base_on

    batch = []
    for index, key in enumerate(keys[40:44]):   # signers outside the URL
        batch_message = b"batch-%d" % index
        batch.append((batch_message,
                      groupsig.sign(gpk, key, batch_message, rng=rng)))
    batch_url = url[:8]
    batch_on = _time(lambda: groupsig.verify_batch(
        gpk, batch, url=batch_url), rounds=2)
    sequential_off = _time(
        lambda: [groupsig.verify(gpk, m, s, url=batch_url,
                                 use_engine=False) for m, s in batch],
        rounds=2)
    batch_speedup = sequential_off / batch_on

    report = reporter("engine_speedup: precomputation engine vs naive "
                      "(SS512)")
    report.table(
        ("scenario", "engine off ms", "engine on ms", "speedup"),
        [(f"verify, |URL|={URL_SIZE}", f"{scan_off * 1000:.1f}",
          f"{scan_on * 1000:.1f}", f"{scan_speedup:.2f}x"),
         ("verify, |URL|=0", f"{base_off * 1000:.1f}",
          f"{base_on * 1000:.1f}", f"{base_speedup:.2f}x"),
         (f"4 sigs, |URL|=8 (batch vs sequential)",
          f"{sequential_off * 1000:.1f}", f"{batch_on * 1000:.1f}",
          f"{batch_speedup:.2f}x")])
    report.record("revocation_scan_url_size", URL_SIZE)
    report.record("revocation_scan_engine_off_seconds", scan_off)
    report.record("revocation_scan_engine_on_seconds", scan_on)
    report.record("revocation_scan_speedup", scan_speedup)
    report.record("base_verify_speedup", base_speedup)
    report.record("batch_vs_sequential_speedup", batch_speedup)
    report.record("op_counts_engine_on", counts[True])
    report.record("op_counts_engine_off", counts[False])
    report.record("required_speedup", REQUIRED_SPEEDUP)

    # Acceptance gate: the engine must beat the naive revocation scan by
    # at least 1.5x at |URL| = 32.
    assert scan_speedup >= REQUIRED_SPEEDUP, scan_speedup

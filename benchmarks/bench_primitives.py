"""E9 -- Primitive costs underlying the paper's V.C arithmetic.

The paper prices everything in 'exponentiations' and 'bilinear map
computations'; this bench measures both on every shipped parameter set,
plus the conventional primitives (ECDSA-160, RSA-1024, AES, SHA-256
puzzles) PEACE composes with.
"""

import random
import time

from repro.pairing import PairingGroup
from repro.sig.curves import SECP160R1
from repro.sig.ecdsa import ecdsa_generate
from repro.sig.rsa import rsa_generate


def _time_it(fn, repeats=5):
    best = min(_timed(fn) for _ in range(repeats))
    return best


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_e9_primitive_cost_table(reporter):
    report = reporter("E9: primitive costs per parameter set")
    rows = []
    rng = random.Random(91)
    for preset in ("TEST", "SS256", "SS512"):
        group = PairingGroup(preset)
        a = group.random_scalar(rng)
        p = group.g1 ** a
        pairing_ms = _time_it(lambda: group.pair(p, group.g2)) * 1000
        exp_ms = _time_it(lambda: group.g1 ** a) * 1000
        hash_ms = _time_it(
            lambda: group.hash_to_g1(b"bench", preset.encode())) * 1000
        rows.append((preset, f"{group.params.p.bit_length()}",
                     f"{pairing_ms:.2f}", f"{exp_ms:.2f}",
                     f"{hash_ms:.2f}"))
    report.table(("preset", "|p| bits", "pairing ms", "G1 exp ms",
                  "hash-to-G1 ms"), rows)

    keypair = ecdsa_generate(SECP160R1, rng=rng)
    signature = keypair.sign(b"bench")
    ecdsa_sign_ms = _time_it(lambda: keypair.sign(b"bench")) * 1000
    ecdsa_verify_ms = _time_it(
        lambda: keypair.public.verify(b"bench", signature)) * 1000
    rsa = rsa_generate(1024, rng=rng)
    rsa_sig = rsa.sign(b"bench")
    rsa_sign_ms = _time_it(lambda: rsa.sign(b"bench")) * 1000
    rsa_verify_ms = _time_it(
        lambda: rsa.public.verify(b"bench", rsa_sig)) * 1000
    report.table(("primitive", "ms"), [
        ("ECDSA-160 sign", f"{ecdsa_sign_ms:.2f}"),
        ("ECDSA-160 verify", f"{ecdsa_verify_ms:.2f}"),
        ("RSA-1024 sign", f"{rsa_sign_ms:.2f}"),
        ("RSA-1024 verify", f"{rsa_verify_ms:.2f}"),
    ])

    # Shape claim motivating the hybrid design and the DoS analysis:
    # the pairing is the most expensive primitive.  (In this affine
    # pure-Python implementation a G1 exponentiation is also inversion-
    # heavy, so the ratio is smaller than on optimized libraries.)
    group = PairingGroup("SS512")
    a = group.random_scalar(rng)
    pairing = _time_it(lambda: group.pair(group.g1, group.g2))
    exp = _time_it(lambda: group.g1 ** a)
    assert pairing > exp


def test_e9_pairing_ss512(benchmark, ss512_group):
    benchmark.pedantic(
        lambda: ss512_group.pair(ss512_group.g1, ss512_group.g2),
        rounds=5, iterations=2)


def test_e9_g1_exp_ss512(benchmark, ss512_group):
    scalar = ss512_group.random_scalar(random.Random(92))
    benchmark.pedantic(lambda: ss512_group.g1 ** scalar,
                       rounds=5, iterations=5)


def test_e9_aes_ctr_throughput(benchmark):
    from repro.crypto.aes import AES
    cipher = AES(b"k" * 16)
    data = b"x" * 4096
    benchmark.pedantic(lambda: cipher.ctr_xor(b"n" * 16, data),
                       rounds=3, iterations=1)


def test_e9_hmac_aead_seal(benchmark):
    from repro.crypto.aead import AeadKey
    key = AeadKey(b"\x01" * 32)
    benchmark(lambda: key.seal(b"p" * 256))

"""Ablation A2 -- client-puzzle difficulty tuning (Section V.A).

The paper adopts Juels-Brainard puzzles but does not pick a difficulty;
this ablation sweeps it, exposing the design trade-off: higher
difficulty throttles the attacker harder but costs every legitimate
user real solving time.  The sweet spot is where the attacker's
effective rate collapses while the legitimate solve time stays far
below the handshake's own crypto cost.
"""

from repro.analysis.attack_eval import dos_campaign
from repro.wmn.costmodel import CostModel


def test_a2_difficulty_sweep(reporter):
    report = reporter("A2: puzzle difficulty ablation "
                      "(flood 30/s, attacker 50 kH/s)")
    cost = CostModel()
    rows = []
    for bits in (6, 10, 14, 18):
        result = dos_campaign(flood_rate=30.0, puzzles=True,
                              difficulty=bits, duration=45.0,
                              seed=111, user_count=3)
        legit_solve = cost.puzzle_solve(bits)
        attacker_solve = (1 << bits) / 50_000.0
        rows.append((bits,
                     f"{legit_solve * 1000:.1f}",
                     f"{attacker_solve * 1000:.0f}",
                     result.attacker_sent,
                     result.attacker_puzzle_limited,
                     f"{result.router_cpu_busy / result.duration:.0%}",
                     f"{result.legit_success_rate:.0%}"))
    report.table(("bits", "legit solve ms", "attacker solve ms",
                  "atk sent", "atk throttled", "router CPU",
                  "legit ok"), rows)

    weak = dos_campaign(flood_rate=30.0, puzzles=True, difficulty=6,
                        duration=45.0, seed=112, user_count=3)
    strong = dos_campaign(flood_rate=30.0, puzzles=True, difficulty=14,
                          duration=45.0, seed=112, user_count=3)
    # Shape: too-easy puzzles leave the attacker unthrottled; adequate
    # ones collapse its rate while legit users still all connect.
    assert weak.attacker_puzzle_limited == 0
    assert strong.attacker_puzzle_limited > 0
    assert strong.legit_success_rate == 1.0
    assert strong.router_cpu_busy < weak.router_cpu_busy


def test_a2_strong_difficulty_campaign(benchmark):
    benchmark.pedantic(
        lambda: dos_campaign(flood_rate=20.0, puzzles=True, difficulty=16,
                             duration=30.0, seed=113, user_count=2),
        rounds=1, iterations=1)

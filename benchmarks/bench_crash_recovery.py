"""crash_recovery -- crash/restart equivalence and checkpoint warm-up.

The durability claim (DESIGN.md, "Durability & crash recovery"): a
router that crashes, loses its unsynced journal tail, and restores
from disk is *observably indistinguishable* from one that never
crashed -- same handshake outcomes, same ``token_index`` on revoked
attempts, bit-identical beacon/confirm bytes, and identical rejection
behaviour under an adversarial replay storm that re-submits pre-crash
(M.2)s to the recovered router.  The only asymmetry a crash may leave
is *internal* (pairings re-derived, journal length); nothing on the
wire.

Two experiments:

* **Crash churn (seeds 101/202/303).**  A scripted protocol run --
  handshakes, two revocations, periodic list refreshes -- executed
  twice on the same virtual clock: once uninterrupted, once with an
  fsync-lossy power cut (unsynced refresh records dropped, torn bytes
  appended) and a cold restore mid-sequence.  Every message byte and
  outcome is traced and the traces must match exactly, including a
  16-shot replay storm fired at both runs after the acceptance window
  has passed.

* **Checkpoint warm-up at |URL| = 10^3.**  A cold router enabling
  sharded revocation pays one tag pairing per listed token; warming
  from a peer's signed :class:`TagCheckpoint` replaces all of them
  with one ECDSA verification.  Gate: warm-up >= 5x the cold build,
  and the warm build performs *zero* pairings.

Gates registered in scripts/bench_gate.py: the four identity booleans,
``degraded_reentry``, ``warm_pairings == 0``, ``warmup_speedup >= 5``.
"""

import hashlib
import random
import time

from repro import instrument
from repro.core import groupsig
from repro.core.clock import ManualClock
from repro.core.deployment import Deployment
from repro.core.durable import DurableRouterStore, MemoryStorage
from repro.core.groupsig import RevocationToken
from repro.core.operator_entity import NetworkOperator
from repro.core.revocation import RevocationTagCache
from repro.core.router import MeshRouter
from repro.errors import DegradedModeError, ReplayError
from repro.pairing import PairingGroup

CHAOS_SEEDS = (101, 202, 303)
START = 1_000_000.0
NUM_SHARDS = 64
WARMUP_URL_SIZE = 1000
REQUIRED_WARMUP_SPEEDUP = 5.0
STORM_REPLAYS = 8          # per captured request, pre- and post-crash
TS_WINDOW = 30.0           # protocol default; storm fires well past it


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:16]


def _interleaved_best(fn_a, fn_b, rounds):
    """Min-of-rounds with alternating measurement (same estimator as
    bench_revocation_scale: shared-host drift must not land on one
    side of the ratio only)."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


# -- crash churn: scripted run, executed with and without a crash ----------

class _ProtocolRun:
    """One deterministic protocol timeline on a manual clock.

    Every handshake reseeds the router's and the user's RNG from the
    (seed, step) pair immediately before use, so each message is a
    pure function of (security state, clock, step) -- the property
    that lets the crashed and uncrashed runs be compared byte for
    byte.  ECDSA signing is RFC 6979 deterministic and
    ``reprovision_router`` consumes no operator randomness, so the
    extra recovery work in the crash run cannot desynchronize anything
    the baseline also computes.
    """

    def __init__(self, seed: int, crash: bool) -> None:
        self.seed = seed
        self.crash = crash
        self.clock = ManualClock(START)
        self.deployment = Deployment.build(
            preset="TEST", seed=seed,
            groups={"Company X": 8, "University Z": 8},
            users=[("alice", ["Company X"]), ("bob", ["University Z"]),
                   ("carol", ["University Z"])],
            routers=["MR-1"], clock=self.clock)
        self.operator = self.deployment.operator
        self.router = self.deployment.routers["MR-1"]
        # Manual syncs only: the power cut at T+99 must find the T+70
        # refresh in the unsynced tail.
        self.store = DurableRouterStore(MemoryStorage(), "MR-1",
                                        sync_every=10_000)
        self.router.attach_durable(self.store)
        self.router.enable_sharded_revocation(
            num_shards=8, cache=RevocationTagCache())
        for user in self.deployment.users.values():
            user.auth_period = self.router.engine.auth_period
        self.store.sync()
        self.trace = []
        self.captured = {}
        self.step = 0
        self.fsync_lost = 0
        self.recovery = None
        self.restore_seconds = 0.0

    def _at(self, offset: float) -> None:
        self.clock.advance(START + offset - self.clock.now())

    def attempt(self, user_name: str, capture: str = "") -> None:
        """One full beacon -> request -> confirm handshake, traced."""
        self.step += 1
        user = self.deployment.users[user_name]
        self.router.rng.seed(self.seed * 1_000_003 + self.step)
        user.rng.seed(self.seed * 2_000_003 + self.step)
        beacon = self.router.make_beacon()
        request, pending = user.connect_to_router(beacon)
        if capture:
            self.captured[capture] = request
        token_index = session_id = error = confirm_digest = None
        try:
            confirm, session = self.router.process_request(request)
            user_session = user.complete_router_handshake(pending, confirm)
            session_id = user_session.session_id.hex()
            # The AEAD envelope of (M.3) carries a random nonce (drawn
            # from the OS, as it should be); identity is over the
            # *authenticated content* -- DH shares plus the opened
            # key-confirmation payload.
            confirm_digest = _digest(confirm.g_r_user.encode()
                                     + confirm.g_r_router.encode()
                                     + session.open_handshake(confirm.sealed))
            kind = "accepted"
        except groupsig.RevokedKeyError as exc:
            kind, token_index, error = "revoked", exc.token_index, str(exc)
        self.trace.append({
            "step": self.step, "t": self.clock.now() - START,
            "user": user_name, "kind": kind,
            "beacon": _digest(beacon.encode()),
            "request": _digest(request.encode()),
            "confirm": confirm_digest, "session": session_id,
            "token_index": token_index, "error": error})

    def refresh(self) -> None:
        self.router.refresh_lists()

    def crash_and_restore(self) -> None:
        """Power cut at T+99: drop the unsynced tail, tear the end of
        the journal, discard the process, restore from disk at T+100."""
        self._at(99.0)
        self.fsync_lost = self.store.storage.lose_unsynced()
        self.store.storage.append(b"torn")   # half-written final frame
        self._at(100.0)
        start = time.perf_counter()
        # The deployment threads one shared Random through every
        # entity; hand the same object to the restored router so the
        # per-step reseeding drives a single stream in both runs.
        self.router = MeshRouter.restore(
            self.store, self.operator, clock=self.clock,
            rng=self.router.rng, cache=RevocationTagCache())
        self.restore_seconds = time.perf_counter() - start
        self.deployment.routers["MR-1"] = self.router
        self.recovery = self.router.recovery

    def storm(self) -> None:
        """Adversarial replay storm at T+400: re-submit captured
        pre-crash and post-recovery (M.2)s.  Both echoes have aged out
        (or were never known to the recovered router), so every shot
        must die in the replay precheck -- identically in both runs."""
        self.router.expire()
        before = self.router.engine.stats["rejected_replay"]
        for name in ("pre_crash", "post_recovery"):
            request = self.captured[name]
            for shot in range(STORM_REPLAYS):
                try:
                    self.router.process_request(request)
                    outcome = "ACCEPTED"
                except ReplayError as exc:
                    outcome = f"ReplayError: {exc}"
                self.trace.append({
                    "step": f"storm-{name}-{shot}",
                    "t": self.clock.now() - START, "kind": "storm",
                    "request": _digest(request.encode()),
                    "outcome": outcome})
        self.trace.append({
            "kind": "storm-stats",
            "rejected_replay_delta":
                self.router.engine.stats["rejected_replay"] - before})

    def execute(self) -> None:
        revoke = self.operator.revoke_user_key
        users = self.deployment.users
        self._at(10.0)
        self.attempt("alice")
        self._at(20.0)
        self.attempt("bob")                      # not yet revoked
        self._at(35.0)
        revoke(users["bob"].credentials["University Z"].index)
        self._at(40.0)
        self.refresh()                           # journaled ...
        self.store.sync()                        # ... and made durable
        self._at(50.0)
        self.attempt("bob")                      # rejected: revoked
        self._at(55.0)
        self.attempt("alice")
        self._at(70.0)
        self.refresh()                           # journaled, NOT synced
        self._at(75.0)
        self.attempt("alice", capture="pre_crash")
        self._at(95.0)
        revoke(users["carol"].credentials["University Z"].index)
        if self.crash:
            self.crash_and_restore()             # T+99 cut, T+100 boot
        self._at(100.0)
        self.refresh()                           # periodic pull; in the
        self.store.sync()                        # crash run, boot refresh
        self._at(110.0)
        self.attempt("carol")                    # post-recovery revocation
        self._at(115.0)
        self.attempt("alice", capture="post_recovery")
        self._at(120.0)
        self.attempt("bob")                      # still revoked
        self._at(400.0)                          # both echoes aged out
        self.storm()


def _trace_views(run):
    outcomes = [(e.get("step"), e.get("t"), e.get("user"), e.get("kind"),
                 e.get("session"), e.get("error"), e.get("outcome"),
                 e.get("rejected_replay_delta"))
                for e in run.trace]
    messages = [(e.get("beacon"), e.get("request"), e.get("confirm"))
                for e in run.trace if e.get("kind") != "storm-stats"]
    token_indexes = [e.get("token_index") for e in run.trace]
    storm = [(e.get("step"), e.get("outcome"),
              e.get("rejected_replay_delta"))
             for e in run.trace
             if e.get("kind") in ("storm", "storm-stats")]
    return outcomes, messages, token_indexes, storm


def _degraded_reentry(seed: int) -> bool:
    """A router that reboots partitioned must re-enter degraded-mode
    refusal from its *journaled* fetch time, not a fresh one."""
    clock = ManualClock(START)
    deployment = Deployment.build(preset="TEST", seed=seed,
                                  routers=["MR-1"], clock=clock)
    router = deployment.routers["MR-1"]
    store = DurableRouterStore(MemoryStorage(), "MR-1", sync_every=1)
    router.attach_durable(store)
    router.set_operator_channel(False)
    clock.advance(700.0)                         # grace is 600 s
    restored = MeshRouter.restore(store, deployment.operator, clock=clock)
    try:
        restored.make_beacon()
        return False
    except DegradedModeError:
        return not restored._channel_up


def test_crash_recovery(reporter):
    report = reporter("crash_recovery: crash/restart bit-identity under "
                      "replay storm; checkpoint warm-up at |URL| = 10^3")

    # -- crash churn over the chaos seeds ------------------------------
    outcomes_identical = messages_identical = True
    token_index_identical = replay_storm_identical = True
    rows = []
    for seed in CHAOS_SEEDS:
        baseline = _ProtocolRun(seed, crash=False)
        baseline.execute()
        crashed = _ProtocolRun(seed, crash=True)
        crashed.execute()

        b_out, b_msg, b_tok, b_storm = _trace_views(baseline)
        c_out, c_msg, c_tok, c_storm = _trace_views(crashed)
        outcomes_identical &= b_out == c_out
        messages_identical &= b_msg == c_msg
        token_index_identical &= (b_tok == c_tok
                                  and sum(t is not None for t in b_tok) == 3)
        replay_storm_identical &= b_storm == c_storm

        assert crashed.fsync_lost > 0            # the cut lost real bytes
        assert crashed.recovery.tail_dropped > 0  # and tore the tail
        assert crashed.recovery.records_replayed > 0
        assert crashed.router.revocation_state is not None
        rows.append((seed, len(baseline.trace), crashed.fsync_lost,
                     crashed.recovery.records_replayed,
                     crashed.recovery.tail_dropped,
                     f"{crashed.restore_seconds * 1000:.2f}",
                     b_out == c_out and b_msg == c_msg))

    degraded_reentry = all(_degraded_reentry(seed) for seed in CHAOS_SEEDS)

    report.table(("seed", "trace", "fsync lost B", "replayed",
                  "torn B", "restore ms", "identical"), rows)
    report.record("chaos_seeds", list(CHAOS_SEEDS))
    report.record("outcomes_identical", outcomes_identical)
    report.record("messages_identical", messages_identical)
    report.record("token_index_identical", token_index_identical)
    report.record("replay_storm_identical", replay_storm_identical)
    report.record("degraded_reentry", degraded_reentry)
    report.record("storm_replays_per_request", STORM_REPLAYS)

    assert outcomes_identical
    assert messages_identical
    assert token_index_identical
    assert replay_storm_identical
    assert degraded_reentry

    # -- checkpoint warm-up at metropolitan URL size -------------------
    clock = ManualClock(START)
    operator = NetworkOperator(PairingGroup("TEST"), clock=clock,
                               rng=random.Random(5))
    source = MeshRouter("MR-SRC", operator, clock=clock,
                        rng=random.Random(6))
    target = MeshRouter("MR-TGT", operator, clock=clock,
                        rng=random.Random(7))
    decoy_rng = random.Random(8)
    operator._revoked_tokens = [
        RevocationToken(operator.group.random_g1(decoy_rng))
        for _ in range(WARMUP_URL_SIZE)]
    operator._url_version += 1
    operator._snapshot_url()
    source.refresh_lists()
    target.refresh_lists()
    source.enable_sharded_revocation(num_shards=NUM_SHARDS,
                                     cache=RevocationTagCache())
    checkpoint = source.make_tag_checkpoint()
    assert checkpoint is not None

    def cold():
        target.enable_sharded_revocation(num_shards=NUM_SHARDS,
                                         cache=RevocationTagCache())

    def warm():
        target.enable_sharded_revocation(num_shards=NUM_SHARDS,
                                         cache=RevocationTagCache(),
                                         warm_checkpoint=checkpoint)

    with instrument.count_operations() as cold_ops:
        cold()
    with instrument.count_operations() as warm_ops:
        warm()
    cold_pairings = cold_ops.total("pairing")
    warm_pairings = warm_ops.total("pairing")

    cold_s, warm_s = _interleaved_best(cold, warm, rounds=3)
    warmup_speedup = cold_s / warm_s

    report.table(("|URL|", "shards", "cold ms", "warm ms", "speedup",
                  "cold pairings", "warm pairings"),
                 [(WARMUP_URL_SIZE, NUM_SHARDS, f"{cold_s * 1000:.2f}",
                   f"{warm_s * 1000:.2f}", f"{warmup_speedup:.1f}x",
                   cold_pairings, warm_pairings)])
    report.row(f"gate: checkpoint warm-up >= "
               f"{REQUIRED_WARMUP_SPEEDUP:g}x the cold build at "
               f"|URL| = {WARMUP_URL_SIZE}")
    report.record("warmup_url_size", WARMUP_URL_SIZE)
    report.record("warmup_num_shards", NUM_SHARDS)
    report.record("required_warmup_speedup", REQUIRED_WARMUP_SPEEDUP)
    report.record("warmup_speedup", warmup_speedup)
    report.record("cold_pairings", cold_pairings)
    report.record("warm_pairings", warm_pairings)

    assert cold_pairings >= WARMUP_URL_SIZE
    assert warm_pairings == 0
    assert warmup_speedup >= REQUIRED_WARMUP_SPEEDUP, warmup_speedup

"""health_detection -- chaos detection quality of the health observatory.

The observability claim (docs/OBSERVABILITY.md, "Health & incidents"):
with ``health=True`` the scenario's alert rules and per-router health
states detect every injected router kill and operator-channel sever
within at most two telemetry windows (MTTD <= 2), stay completely
silent on a fault-free run of the same mesh (zero false positives),
replay bit-identically per seed, and cost at most 3% of the run's
wall-clock time to evaluate.

Per chaos seed (101/202/303) the durable 4-router city from the CI
chaos driver runs three times: twice with an identical fault plan --
one router killed and restarted, another's operator channel severed
and restored -- and once fault-free.  The two chaos runs must produce
byte-identical incident-timeline JSONL; the fault-free run must fire
zero alerts and end with every router healthy.

Gates registered in scripts/bench_gate.py: ``all_incidents_detected``,
``mttd_windows_le_2``, ``baseline_alerts == 0``,
``timelines_identical``, ``overhead_le_3pct``.
"""

import time

from repro.core.protocols.user_router import RetryPolicy
from repro.faults import FaultInjector, FaultPlan, RouterFault
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig

CHAOS_SEEDS = (101, 202, 303)
DURATION = 240.0
TELEMETRY_WINDOW = 30.0
MAX_MTTD_WINDOWS = 2
MAX_EVAL_OVERHEAD = 0.03

RETRY = RetryPolicy(initial_timeout=2.0, backoff_factor=2.0,
                    max_timeout=8.0, max_retries=4, jitter=0.1)


def _build_scenario(seed: int) -> Scenario:
    """The durable, sharded, gossiping 4-router city under 15% loss
    (same shape as scripts/chaos_recovery_run.py), health enabled."""
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=6, seed=seed,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=0.15,
        retry_policy=RETRY,
        durable=True,
        sharded_revocation=True,
        gossip_period=20.0,
        gossip_checkpoints=True,
        telemetry_window=TELEMETRY_WINDOW,
        health=True))
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    return scenario


def _build_plan(seed: int, router_ids) -> FaultPlan:
    """Kill + restart the first router, sever + restore the last
    router's operator channel -- one incident of each kind."""
    first, last = router_ids[0], router_ids[-1]
    return FaultPlan(
        seed=seed,
        router=(RouterFault("kill", at=40.0, router_id=first),
                RouterFault("restart", at=90.0, router_id=first),
                RouterFault("sever_channel", at=60.0, router_id=last),
                RouterFault("restore_channel", at=150.0,
                            router_id=last)))


def _chaos_run(seed: int):
    """One seeded chaos run; returns detection results and timings."""
    scenario = _build_scenario(seed)
    injector = FaultInjector(_build_plan(seed,
                                         sorted(scenario.sim_routers)))
    injector.arm_scenario(scenario)
    start = time.perf_counter()
    scenario.run(DURATION)
    run_seconds = time.perf_counter() - start
    return {
        "incidents": scenario.incidents(injector),
        "jsonl": scenario.incidents_jsonl(injector),
        "run_seconds": run_seconds,
        "eval_seconds": scenario.health_eval_seconds,
    }


def _baseline_run(seed: int):
    """Same mesh, no faults: must fire nothing and end healthy."""
    scenario = _build_scenario(seed)
    scenario.run(DURATION)
    return scenario.alert_events(), scenario.health_snapshot()


def test_health_detection(reporter):
    report = reporter("health_detection: chaos MTTD, false positives, "
                      "replay identity, and eval overhead")

    rows = []
    incidents_total = incidents_detected = 0
    max_mttd_windows = 0
    baseline_alerts = 0
    timelines_identical = True
    run_seconds = eval_seconds = 0.0
    for seed in CHAOS_SEEDS:
        first = _chaos_run(seed)
        second = _chaos_run(seed)
        timelines_identical &= first["jsonl"] == second["jsonl"]
        run_seconds += first["run_seconds"] + second["run_seconds"]
        eval_seconds += first["eval_seconds"] + second["eval_seconds"]

        incidents = first["incidents"]
        # The plan injects exactly one kill and one sever per seed.
        assert {i["incident"] for i in incidents} == \
            {"router-kill", "channel-sever"}
        detected = [i for i in incidents if i["detected"]]
        incidents_total += len(incidents)
        incidents_detected += len(detected)
        seed_mttd = max(int(i["mttd_windows"]) for i in detected)
        max_mttd_windows = max(max_mttd_windows, seed_mttd)

        alerts, snapshot = _baseline_run(seed)
        baseline_alerts += len(alerts)
        rows.append((seed, len(incidents), len(detected), seed_mttd,
                     len(alerts), snapshot["status"],
                     first["jsonl"] == second["jsonl"]))

    all_detected = incidents_detected == incidents_total > 0
    overhead = eval_seconds / run_seconds
    report.table(("seed", "incidents", "detected", "max MTTD (w)",
                  "baseline alerts", "baseline status", "identical"),
                 rows)
    report.row(f"gates: every incident detected, MTTD <= "
               f"{MAX_MTTD_WINDOWS} windows, 0 baseline alerts, "
               f"bit-identical replay, eval overhead <= "
               f"{MAX_EVAL_OVERHEAD:.0%} "
               f"(measured {overhead:.2%} of {run_seconds:.2f}s)")
    report.record("chaos_seeds", list(CHAOS_SEEDS))
    report.record("duration", DURATION)
    report.record("telemetry_window", TELEMETRY_WINDOW)
    report.record("incidents_total", incidents_total)
    report.record("incidents_detected", incidents_detected)
    report.record("all_incidents_detected", bool(all_detected))
    report.record("max_mttd_windows", max_mttd_windows)
    report.record("mttd_windows_le_2",
                  bool(0 < max_mttd_windows <= MAX_MTTD_WINDOWS))
    report.record("baseline_alerts", baseline_alerts)
    report.record("timelines_identical", bool(timelines_identical))
    report.record("run_seconds", run_seconds)
    report.record("health_eval_seconds", eval_seconds)
    report.record("eval_overhead_fraction", overhead)
    report.record("max_eval_overhead_fraction", MAX_EVAL_OVERHEAD)
    report.record("overhead_le_3pct", bool(overhead <= MAX_EVAL_OVERHEAD))

    assert all_detected
    assert max_mttd_windows <= MAX_MTTD_WINDOWS
    assert baseline_alerts == 0
    assert timelines_identical
    assert overhead <= MAX_EVAL_OVERHEAD, overhead

"""E8 -- Privacy and accountability games (Sections IV.D / V.B).

Paper claims, as measurable success rates:
* the adversary / GMs / TTP cannot link two sessions to one user
  (advantage ~ 0 in the distinguishing game);
* NO, holding grt, attributes any session to a user group (rate 1);
* the law authority, with NO + GM, recovers the full identity;
* the fast-revocation variant's documented trade: within one period a
  verifier links a signer's signatures (rate 1).
"""

import random

from repro.analysis.privacy_games import (
    linking_with_token_rate,
    period_linkability_rate,
    run_unlinkability_game,
    strategy_compare_encodings,
    strategy_insider_keys,
    strategy_t2_ratio,
    view_disclosure_report,
)
from repro.core.deployment import Deployment


def test_e8_unlinkability_game_table(reporter, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    players = keys[:6]
    report = reporter("E8: unlinkability / accountability games")
    rows = []

    naive = run_unlinkability_game(gpk, players,
                                   strategy_compare_encodings,
                                   trials=20, rng=random.Random(81))
    rows.append(("adversary: compare encodings", f"{naive.success_rate:.0%}",
                 f"{naive.advantage:.2f}", "~0 (coin flip)"))
    algebraic = run_unlinkability_game(gpk, players, strategy_t2_ratio,
                                       trials=20, rng=random.Random(82))
    rows.append(("adversary: T2 ratio test", f"{algebraic.success_rate:.0%}",
                 f"{algebraic.advantage:.2f}", "~0 (coin flip)"))
    insider = run_unlinkability_game(
        gpk, players[:2], strategy_insider_keys, trials=16,
        rng=random.Random(83), aux=players[2:])
    rows.append(("insider: other members' keys",
                 f"{insider.success_rate:.0%}",
                 f"{insider.advantage:.2f}", "~0 (coin flip)"))
    token_rate = linking_with_token_rate(gpk, players, trials=12,
                                         rng=random.Random(84))
    rows.append(("NO: full grt", f"{token_rate:.0%}", "1.00",
                 "1 (accountability)"))
    period_rate = period_linkability_rate(gpk, players, trials=12,
                                          rng=random.Random(85))
    rows.append(("anyone, fast-revocation period mode",
                 f"{period_rate:.0%}", "1.00",
                 "1 (documented trade-off)"))
    report.table(("observer / strategy", "success", "advantage",
                  "paper expectation"), rows)

    assert naive.advantage <= 0.5
    assert algebraic.advantage <= 0.5
    assert token_rate == 1.0
    assert period_rate == 1.0


def test_e8_disclosure_tiers(reporter):
    deployment = Deployment.build(
        preset="TEST", seed=88,
        groups={"Company X": 4, "University Z": 4},
        users=[("alice", ["Company X", "University Z"])],
        routers=["MR-1"])
    report_data = view_disclosure_report(deployment, "alice", "MR-1",
                                         context="Company X")
    report = reporter("E8b: per-party disclosure tiers")
    report.table(("party", "learns"),
                 sorted(report_data.items()))
    assert "alice" not in report_data["network_operator"]
    assert "alice" in report_data["law_authority"]


def test_e8_game_wall_time(benchmark, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    benchmark.pedantic(
        lambda: run_unlinkability_game(gpk, keys[:3],
                                       strategy_compare_encodings,
                                       trials=2, rng=random.Random(86)),
        rounds=2, iterations=1)

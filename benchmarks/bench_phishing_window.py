"""E7 -- Phishing window of a revoked mesh router (Section V.A).

Paper claim: a *fresh* rogue router phishes nobody (it cannot present
an NO-signed certificate); a *revoked* router keeps phishing 'only for
up to (inverse of the update frequency - (current time - last
periodical update time))' -- i.e. the window is bounded by one CRL
update period.  The bench sweeps the CRL period and measures the
observed window.
"""

from repro.analysis.attack_eval import phishing_campaign


def test_e7_window_vs_crl_period(reporter):
    report = reporter("E7: revoked-router phishing window vs CRL period")
    rows = []
    results = []
    for period in (60.0, 120.0, 240.0):
        result = phishing_campaign(crl_update_period=period,
                                   revoke_at=100.0,
                                   duration=100.0 + 3 * period + 60.0,
                                   seed=71, user_count=3)
        results.append(result)
        rows.append((f"{period:.0f}s",
                     result.victims_before_revocation,
                     result.victims_after_revocation,
                     f"{result.observed_window:.1f}s",
                     f"{result.paper_bound:.0f}s",
                     "yes" if result.observed_window
                     <= result.paper_bound else "NO"))
    report.table(("CRL period", "victims before", "victims after",
                  "observed window", "paper bound", "within bound"),
                 rows)
    report.row(f"fresh rogue router victims (all runs): "
               f"{sum(r.rogue_victims for r in results)} (paper: 0)")

    for result in results:
        # Before revocation the router is legitimate and serves users.
        assert result.victims_before_revocation > 0
        # The window never exceeds one CRL update period.
        assert result.observed_window <= result.paper_bound
        # A never-certified rogue gets nobody, ever.
        assert result.rogue_victims == 0

    # Shape: a tighter CRL period shrinks (or keeps equal) the window.
    windows = [r.observed_window for r in results]
    assert windows[0] <= results[-1].paper_bound


def test_e7_short_period_campaign_wall_time(benchmark):
    benchmark.pedantic(
        lambda: phishing_campaign(crl_update_period=60.0, revoke_at=50.0,
                                  duration=240.0, seed=72, user_count=2),
        rounds=1, iterations=1)

"""E10 -- Multi-core verification: VerifierPool vs serial verify_batch.

The gateway-router bottleneck is embarrassingly parallel: each of the
batch's signatures costs 6 exponentiations and ``3 + 2*|URL|`` pairings
independently of the others.  This experiment shards the paper-sized
workload -- 64 signatures against a 32-entry revocation list on the
SS512 preset -- across a :class:`VerifierPool` and compares wall-clock
time with the serial engine path, while asserting the pool's contract:
identical outcomes and identical instrumented operation counts.

The >= 2x acceptance gate applies where it physically can: it needs
real cores.  On hosts with fewer than ``WORKERS`` CPUs the measured
speedup (necessarily ~1x or below, since the "parallel" workers time-
slice one core plus pay IPC) is still recorded honestly in
``BENCH_parallel_verify.json`` together with the host core count, and
the hard assert is skipped -- documented in the JSON via
``speedup_gate_enforced``.
"""

import os
import random
import time

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import RevocationToken
from repro.core.verifier_pool import VerifierPool

BATCH_SIZE = 64
URL_SIZE = 32
WORKERS = 4
CHUNK_SIZE = 4
REQUIRED_SPEEDUP = 2.0


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def test_e10_parallel_verify(reporter, ss512_group, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(1024)
    # Tokens that match no signer: every verification walks the full
    # URL (the paper's worst case, and the component worth sharding).
    url = tuple(RevocationToken(ss512_group.random_g1(rng))
                for _ in range(URL_SIZE))
    batch = []
    for index in range(BATCH_SIZE):
        message = b"parallel-verify-%d" % index
        batch.append((message, groupsig.sign(gpk, keys[index % len(keys)],
                                             message, rng=rng)))

    # Warm the parent engine outside the timed region, mirroring what
    # the pool initializer does for each worker.
    gpk.engine.g2_table
    gpk.engine.w_table
    gpk.engine.base_pairing()

    with instrument.count_operations() as serial_ops:
        start = time.perf_counter()
        serial_results = groupsig.verify_batch(gpk, batch, url=url)
        serial_seconds = time.perf_counter() - start

    with VerifierPool(gpk, url, processes=WORKERS,
                      chunk_size=CHUNK_SIZE) as pool:
        with instrument.count_operations() as pool_ops:
            start = time.perf_counter()
            pool_results = pool.verify_batch(batch)
            pool_seconds = time.perf_counter() - start
        parallel = pool.is_parallel
        fallbacks = pool.serial_fallbacks

    # The pool's contract, asserted on the measured runs themselves.
    assert [type(r) for r in pool_results] == \
        [type(r) for r in serial_results]
    assert all(r is None for r in serial_results)
    assert pool_ops.snapshot() == serial_ops.snapshot()
    assert serial_ops.total("pairing") == BATCH_SIZE * (3 + 2 * URL_SIZE)

    speedup = serial_seconds / pool_seconds
    cores = _host_cores()
    gate_enforced = parallel and cores >= WORKERS

    report = reporter("parallel_verify: VerifierPool vs serial "
                      "verify_batch (SS512)")
    report.table(
        ("path", "seconds", "sigs/s"),
        [("serial verify_batch", f"{serial_seconds:.2f}",
          f"{BATCH_SIZE / serial_seconds:.2f}"),
         (f"VerifierPool x{WORKERS}", f"{pool_seconds:.2f}",
          f"{BATCH_SIZE / pool_seconds:.2f}")])
    report.row(f"speedup {speedup:.2f}x on {cores} core(s); gate "
               f"{'enforced' if gate_enforced else 'recorded only'}")
    report.record("batch_size", BATCH_SIZE)
    report.record("url_size", URL_SIZE)
    report.record("workers", WORKERS)
    report.record("chunk_size", CHUNK_SIZE)
    report.record("host_cores", cores)
    report.record("pool_was_parallel", parallel)
    report.record("pool_serial_fallbacks", fallbacks)
    report.record("serial_seconds", serial_seconds)
    report.record("pool_seconds", pool_seconds)
    report.record("speedup", speedup)
    report.record("required_speedup", REQUIRED_SPEEDUP)
    report.record("speedup_gate_enforced", gate_enforced)
    report.record("op_counts", serial_ops.snapshot())

    # >= 2x with >= 4 workers -- enforceable only where >= 4 hardware
    # cores exist; otherwise the numbers above stand as the record.
    if gate_enforced:
        assert speedup >= REQUIRED_SPEEDUP, speedup

"""E10 -- Multi-core verification: VerifierPool vs serial verify_batch.

The gateway-router bottleneck is embarrassingly parallel: each of the
batch's signatures costs 6 exponentiations and ``3 + 2*|URL|`` pairings
independently of the others.  This experiment shards the paper-sized
workload -- 64 signatures against a 32-entry revocation list on the
SS512 preset -- across a :class:`VerifierPool` and compares wall-clock
time with the serial engine path, while asserting the pool's contract:
identical outcomes and identical instrumented operation counts.

The pool sizes itself (``processes=None``): on a single-core host it
engages *auto-serial* mode -- no worker processes, chunks run in the
calling process on the batch core -- which is what turned the recorded
0.83x regression (4 workers time-slicing 1 core plus IPC) into >= 1x.
Two gates apply, matching the host:

* always: speedup >= 1.0 (auto-serial makes this safe everywhere; the
  pool runs the very same batch-core kernels as serial ``verify_batch``
  with only per-chunk bookkeeping on top, so min-of-rounds lands at
  parity on one core and above it wherever real workers help);
* with live workers on >= 4 cores: speedup >= 2.0.

Both sides are timed interleaved min-of-rounds so drift on a shared
host cannot inflate one side only.  ``BENCH_parallel_verify.json``
records ``host_cores``, ``pool_auto_serial``, and ``pool_processes``
alongside the timings so the gate's decision is auditable.
"""

import random
import time

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import RevocationToken
from repro.core.verifier_pool import VerifierPool, available_cores

BATCH_SIZE = 64
URL_SIZE = 32
CHUNK_SIZE = 4
REQUIRED_SPEEDUP = 1.0          # every host; auto-serial makes it safe
REQUIRED_PARALLEL_SPEEDUP = 2.0  # live workers on >= 4 cores
PARALLEL_GATE_CORES = 4
ROUNDS = 3
#: In-bench tolerance on the universal gate: on one core the two sides
#: run identical kernels, so the honest ratio is 1.0 up to residual
#: timer noise; the CI gate (scripts/bench_gate.py) enforces 1.0 with
#: its own slack against the recorded value.
SERIAL_TOLERANCE = 0.97


def test_e10_parallel_verify(reporter, ss512_group, ss512_scheme):
    gpk, _master, keys = ss512_scheme
    rng = random.Random(1024)
    # Tokens that match no signer: every verification walks the full
    # URL (the paper's worst case, and the component worth sharding).
    url = tuple(RevocationToken(ss512_group.random_g1(rng))
                for _ in range(URL_SIZE))
    batch = []
    for index in range(BATCH_SIZE):
        message = b"parallel-verify-%d" % index
        batch.append((message, groupsig.sign(gpk, keys[index % len(keys)],
                                             message, rng=rng)))

    # Warm the parent engine outside the timed region, mirroring what
    # the pool initializer does for each worker.
    engine = gpk.engine
    engine.g2_table
    engine.w_table
    engine.base_pairing()
    engine.gt_table
    engine.g2_naf_steps
    engine.w_naf_steps
    engine.token_steps(url)

    with VerifierPool(gpk, url, processes=None,
                      chunk_size=CHUNK_SIZE) as pool:
        # Contract check on one full batch: same outcomes, same counts.
        with instrument.count_operations() as serial_ops:
            serial_results = groupsig.verify_batch(gpk, batch, url=url)
        with instrument.count_operations() as pool_ops:
            pool_results = pool.verify_batch(batch)
        assert [type(r) for r in pool_results] == \
            [type(r) for r in serial_results]
        assert all(r is None for r in serial_results)
        assert pool_ops.snapshot() == serial_ops.snapshot()
        assert serial_ops.total("pairing") == \
            BATCH_SIZE * (3 + 2 * URL_SIZE)

        # Timed region: alternate serial/pool each round so host drift
        # lands on both sides; keep the min over full executions.
        serial_seconds = pool_seconds = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            groupsig.verify_batch(gpk, batch, url=url)
            serial_seconds = min(serial_seconds,
                                 time.perf_counter() - start)
            start = time.perf_counter()
            pool.verify_batch(batch)
            pool_seconds = min(pool_seconds, time.perf_counter() - start)

        parallel = pool.is_parallel
        auto_serial = pool.auto_serial
        processes = pool.processes
        fallbacks = pool.serial_fallbacks
        cores = pool.host_cores

    assert cores == available_cores()
    if cores <= 1:
        # The headline fix: a 1-core host must engage auto-serial
        # instead of spawning losing workers.
        assert auto_serial and not parallel and processes == 0

    speedup = serial_seconds / pool_seconds
    parallel_gate = parallel and cores >= PARALLEL_GATE_CORES

    report = reporter("parallel_verify: VerifierPool vs serial "
                      "verify_batch (SS512)")
    report.table(
        ("path", "seconds", "sigs/s"),
        [("serial verify_batch", f"{serial_seconds:.2f}",
          f"{BATCH_SIZE / serial_seconds:.2f}"),
         (f"VerifierPool ({'auto-serial' if auto_serial else f'x{processes}'})",
          f"{pool_seconds:.2f}", f"{BATCH_SIZE / pool_seconds:.2f}")])
    report.row(f"speedup {speedup:.2f}x on {cores} core(s); "
               f"auto_serial={auto_serial}; >=2x gate "
               f"{'enforced' if parallel_gate else 'recorded only'}")
    report.record("batch_size", BATCH_SIZE)
    report.record("url_size", URL_SIZE)
    report.record("chunk_size", CHUNK_SIZE)
    report.record("rounds", ROUNDS)
    report.record("host_cores", cores)
    report.record("pool_processes", processes)
    report.record("pool_auto_serial", auto_serial)
    report.record("pool_was_parallel", parallel)
    report.record("pool_serial_fallbacks", fallbacks)
    report.record("serial_seconds", serial_seconds)
    report.record("pool_seconds", pool_seconds)
    report.record("speedup", speedup)
    report.record("required_speedup", REQUIRED_SPEEDUP)
    report.record("required_parallel_speedup", REQUIRED_PARALLEL_SPEEDUP)
    report.record("speedup_gate_enforced", parallel_gate)
    report.record("op_counts", serial_ops.snapshot())

    # Universal gate: the pool must never lose to serial.  The timer
    # tolerance covers residual noise on identical single-core work;
    # the recorded value is gated at >= 1.0 (with gate slack) in CI.
    assert speedup >= REQUIRED_SPEEDUP * SERIAL_TOLERANCE, speedup
    # Parallel gate where it physically can apply.
    if parallel_gate:
        assert speedup >= REQUIRED_PARALLEL_SPEEDUP, speedup

"""Benchmark fixtures and the experiment-report helper.

Each benchmark regenerates one table/figure-equivalent claim from the
paper's Section V (see DESIGN.md's experiment index).  Timings use
pytest-benchmark; the paper-style rows are printed live (bypassing
capture) and appended to ``benchmarks/reports/<experiment>.txt`` so
``bench_output.txt`` and the repo both carry them.

Alongside each text report the reporter writes a machine-readable
``BENCH_<experiment>.json`` at the repository root: the rendered tables
(headers + rows) plus any key/value measurements recorded with
:meth:`Reporter.record`.  Downstream tooling (and the acceptance check
on ``bench_engine_speedup``) parses the JSON instead of scraping text.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys

import pytest

from repro.core import groupsig
from repro.core.deployment import Deployment
from repro.pairing import PairingGroup

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class Reporter:
    """Accumulates experiment rows; flushes to stdout + report files.

    Text goes to ``benchmarks/reports/<slug>.txt`` as before; the same
    content (tables as structured headers/rows, plus explicit
    :meth:`record` measurements) lands in ``BENCH_<slug>.json`` at the
    repository root.
    """

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.lines = [f"== {experiment} =="]
        self.tables = []
        self.values = {}

    @property
    def slug(self) -> str:
        return self.experiment.split(":")[0].strip()

    def row(self, text: str) -> None:
        self.lines.append(text)

    def record(self, key: str, value) -> None:
        """Store one named measurement for the JSON report."""
        self.values[key] = value

    def table(self, headers, rows) -> None:
        self.tables.append({"headers": [str(h) for h in headers],
                            "rows": [[c for c in r] for r in rows]})
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(headers)] if rows else \
                 [len(str(h)) for h in headers]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.row(fmt.format(*headers))
        self.row(fmt.format(*("-" * w for w in widths)))
        for r in rows:
            self.row(fmt.format(*[str(c) for c in r]))

    def flush(self) -> None:
        # BENCH_OUTPUT_DIR redirects both artifacts (the regression
        # gate runs benches into a scratch dir and diffs against the
        # committed baselines, which must stay untouched).
        out_dir = os.environ.get("BENCH_OUTPUT_DIR")
        report_dir = (os.path.join(out_dir, "reports") if out_dir
                      else REPORT_DIR)
        json_root = out_dir if out_dir else REPO_ROOT
        text = "\n".join(self.lines) + "\n"
        os.makedirs(report_dir, exist_ok=True)
        path = os.path.join(report_dir, self.slug + ".txt")
        with open(path, "w") as handle:
            handle.write(text)
        json_path = os.path.join(json_root, f"BENCH_{self.slug}.json")
        with open(json_path, "w") as handle:
            json.dump({"experiment": self.experiment,
                       # Timing numbers are host-relative; stamp where
                       # they came from so baseline diffs across
                       # machines are recognizable as such.
                       "host": {
                           "cpu_count": os.cpu_count(),
                           "python_version": platform.python_version(),
                           "machine": platform.machine(),
                       },
                       "tables": self.tables,
                       "values": self.values}, handle, indent=2,
                      default=str)
            handle.write("\n")
        sys.__stdout__.write("\n" + text)
        sys.__stdout__.flush()


@pytest.fixture
def reporter(benchmark):
    """Per-test reporter factory; flushed automatically on teardown.

    Depends on (and touches) the ``benchmark`` fixture so report-style
    experiments are collected and executed under ``--benchmark-only``
    alongside the timing benchmarks; the registered timing is a
    one-round no-op, the experiment's value is its printed table.
    """
    created = []

    def make(experiment: str) -> Reporter:
        if not created:
            benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rep = Reporter(experiment)
        created.append(rep)
        return rep

    yield make
    for rep in created:
        rep.flush()


@pytest.fixture(scope="session")
def ss512_group():
    """The default-security pairing group (paper-comparable level)."""
    return PairingGroup("SS512")


@pytest.fixture(scope="session")
def ss512_scheme(ss512_group):
    rng = random.Random(2026)
    gpk, master = groupsig.keygen_master(ss512_group, rng)
    keys = [groupsig.issue_member_key(ss512_group, master, 900 + i // 8,
                                      (i // 8, i % 8), rng)
            for i in range(64)]
    return gpk, master, keys


@pytest.fixture(scope="session")
def test_deployment():
    """TEST-preset deployment for protocol-level benchmarks."""
    return Deployment.build(
        preset="TEST", seed=99,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1"])

"""Benchmark fixtures and the experiment-report helper.

Each benchmark regenerates one table/figure-equivalent claim from the
paper's Section V (see DESIGN.md's experiment index).  Timings use
pytest-benchmark; the paper-style rows are printed live (bypassing
capture) and appended to ``benchmarks/reports/<experiment>.txt`` so
``bench_output.txt`` and the repo both carry them.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

from repro.core import groupsig
from repro.core.deployment import Deployment
from repro.pairing import PairingGroup

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


class Reporter:
    """Accumulates experiment rows; flushes to stdout + a report file."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.lines = [f"== {experiment} =="]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def table(self, headers, rows) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(headers)] if rows else \
                 [len(str(h)) for h in headers]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.row(fmt.format(*headers))
        self.row(fmt.format(*("-" * w for w in widths)))
        for r in rows:
            self.row(fmt.format(*[str(c) for c in r]))

    def flush(self) -> None:
        text = "\n".join(self.lines) + "\n"
        os.makedirs(REPORT_DIR, exist_ok=True)
        path = os.path.join(
            REPORT_DIR, self.experiment.split(":")[0].strip() + ".txt")
        with open(path, "w") as handle:
            handle.write(text)
        sys.__stdout__.write("\n" + text)
        sys.__stdout__.flush()


@pytest.fixture
def reporter(benchmark):
    """Per-test reporter factory; flushed automatically on teardown.

    Depends on (and touches) the ``benchmark`` fixture so report-style
    experiments are collected and executed under ``--benchmark-only``
    alongside the timing benchmarks; the registered timing is a
    one-round no-op, the experiment's value is its printed table.
    """
    created = []

    def make(experiment: str) -> Reporter:
        if not created:
            benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rep = Reporter(experiment)
        created.append(rep)
        return rep

    yield make
    for rep in created:
        rep.flush()


@pytest.fixture(scope="session")
def ss512_group():
    """The default-security pairing group (paper-comparable level)."""
    return PairingGroup("SS512")


@pytest.fixture(scope="session")
def ss512_scheme(ss512_group):
    rng = random.Random(2026)
    gpk, master = groupsig.keygen_master(ss512_group, rng)
    keys = [groupsig.issue_member_key(ss512_group, master, 900 + i // 8,
                                      (i // 8, i % 8), rng)
            for i in range(64)]
    return gpk, master, keys


@pytest.fixture(scope="session")
def test_deployment():
    """TEST-preset deployment for protocol-level benchmarks."""
    return Deployment.build(
        preset="TEST", seed=99,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1"])

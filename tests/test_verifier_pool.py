"""VerifierPool: bit-identical to serial verification, only parallel.

The contract under test (see the module docstring of
:mod:`repro.core.verifier_pool`):

* accept/reject outcomes match :func:`groupsig.verify_batch` exactly,
  including error type, message, and the opened revocation
  ``token_index``;
* instrumented operation counts replayed by the pool equal the serial
  counts;
* serial mode (``processes=0``), a dead pool, and a stale snapshot all
  degrade to the serial path without changing results.
"""

import dataclasses
import random

import pytest

from repro import instrument
from repro.core import groupsig
from repro.core.verifier_pool import VerifierPool, snapshot_fingerprint
from repro.errors import InvalidSignature, RevokedKeyError


@pytest.fixture(scope="module")
def url_tokens(member_keys):
    """Three tokens; a2 sits at index 1, b1 at index 2."""
    return (groupsig.RevocationToken(member_keys["b2"].a),
            groupsig.RevocationToken(member_keys["a2"].a),
            groupsig.RevocationToken(member_keys["b1"].a))


@pytest.fixture(scope="module")
def mixed_batch(gpk, member_keys):
    """Ten items spanning every outcome class.

    Indices 2 and 7 sign with revoked keys (a2, b1), index 4 is
    tampered, index 8 degenerate (identity T1); the rest are valid.
    """
    rng = random.Random(90210)
    signers = ["a1", "b2", "a2", "a1", "b2", "b2", "a1", "b1", "a1", "b2"]
    batch = []
    for index, name in enumerate(signers):
        message = b"pool message %d" % index
        signature = groupsig.sign(gpk, member_keys[name], message, rng=rng)
        if index == 4:
            signature = dataclasses.replace(signature,
                                            s_x=signature.s_x + 1)
        if index == 8:
            signature = dataclasses.replace(
                signature, t1=signature.t1 / signature.t1)
        batch.append((message, signature))
    return batch


def outcome_key(result):
    """Comparable digest of one verify outcome."""
    if result is None:
        return ("ok",)
    return (type(result).__name__, str(result),
            getattr(result, "token_index", None))


def run_both(gpk, url_tokens, batch, pool, **kwargs):
    """(serial results+ops, pool results+ops) for one batch."""
    with instrument.count_operations() as serial_ops:
        serial = groupsig.verify_batch(gpk, batch, url=url_tokens, **kwargs)
    with instrument.count_operations() as pool_ops:
        pooled = pool.verify_batch(batch, **kwargs)
    return (serial, serial_ops.snapshot()), (pooled, pool_ops.snapshot())


class TestSmoke:
    def test_serial_mode_identity(self, gpk, url_tokens, mixed_batch):
        with VerifierPool(gpk, url_tokens, processes=0) as pool:
            assert not pool.is_parallel
            (serial, serial_ops), (pooled, pool_ops) = run_both(
                gpk, url_tokens, mixed_batch, pool)
        assert [outcome_key(r) for r in pooled] == \
            [outcome_key(r) for r in serial]
        assert pool_ops == serial_ops

    def test_worker_pool_identity(self, gpk, url_tokens, mixed_batch):
        with VerifierPool(gpk, url_tokens, processes=2,
                          chunk_size=3) as pool:
            (serial, serial_ops), (pooled, pool_ops) = run_both(
                gpk, url_tokens, mixed_batch, pool)
        assert [outcome_key(r) for r in pooled] == \
            [outcome_key(r) for r in serial]
        assert pool_ops == serial_ops


class TestOutcomeDetail:
    def test_revocation_index_matches_serial(self, gpk, url_tokens,
                                             mixed_batch):
        serial = groupsig.verify_batch(gpk, mixed_batch, url=url_tokens)
        with VerifierPool(gpk, url_tokens, processes=2,
                          chunk_size=4) as pool:
            pooled = pool.verify_batch(mixed_batch)
        for index in (2, 7):
            assert isinstance(serial[index], RevokedKeyError)
            assert isinstance(pooled[index], RevokedKeyError)
            assert (pooled[index].token_index
                    == serial[index].token_index)
        assert serial[2].token_index == 1   # a2's token position
        assert serial[7].token_index == 2   # b1's token position
        assert isinstance(pooled[4], InvalidSignature)
        assert isinstance(pooled[8], InvalidSignature)
        assert "degenerate" in str(pooled[8])

    def test_period_mode_identity(self, gpk, url_tokens, mixed_batch):
        period = b"epoch-0042"
        with VerifierPool(gpk, url_tokens, processes=2,
                          chunk_size=3) as pool:
            (serial, serial_ops), (pooled, pool_ops) = run_both(
                gpk, url_tokens, mixed_batch, pool, period=period)
        assert [outcome_key(r) for r in pooled] == \
            [outcome_key(r) for r in serial]
        assert pool_ops == serial_ops

    def test_check_revocation_off(self, gpk, url_tokens, mixed_batch):
        with VerifierPool(gpk, url_tokens, processes=0) as pool:
            (serial, _), (pooled, _) = run_both(
                gpk, url_tokens, mixed_batch, pool, check_revocation=False)
        assert [outcome_key(r) for r in pooled] == \
            [outcome_key(r) for r in serial]
        assert all(not isinstance(r, RevokedKeyError) for r in pooled)

    def test_empty_batch(self, gpk, url_tokens):
        with VerifierPool(gpk, url_tokens, processes=0) as pool:
            assert pool.verify_batch([]) == []


class TestDegradedModes:
    def test_dead_pool_falls_back_serially(self, gpk, url_tokens,
                                           mixed_batch):
        pool = VerifierPool(gpk, url_tokens, processes=2, chunk_size=3)
        try:
            assert pool.is_parallel
            # Kill the workers behind the pool's back; submissions now
            # fail and every chunk must take the in-process path.
            pool._pool.terminate()
            pool._pool.join()
            serial = groupsig.verify_batch(gpk, mixed_batch,
                                           url=url_tokens)
            pooled = pool.verify_batch(mixed_batch)
        finally:
            pool.close()
        assert [outcome_key(r) for r in pooled] == \
            [outcome_key(r) for r in serial]
        assert pool.serial_fallbacks > 0

    def test_close_is_idempotent(self, gpk, url_tokens):
        pool = VerifierPool(gpk, url_tokens, processes=2)
        pool.close()
        pool.close()
        assert not pool.is_parallel

    def test_bad_parameters_rejected(self, gpk, url_tokens):
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            VerifierPool(gpk, url_tokens, processes=0, chunk_size=0)
        with pytest.raises(ParameterError):
            VerifierPool(gpk, url_tokens, processes=-1)

    def test_fingerprint_tracks_snapshot(self, gpk, url_tokens):
        with VerifierPool(gpk, url_tokens, processes=0) as pool:
            assert pool.matches(gpk, url_tokens)
            assert not pool.matches(gpk, url_tokens[:1])
        assert (snapshot_fingerprint(gpk, url_tokens)
                != snapshot_fingerprint(gpk, url_tokens[:1]))


class TestRouterIntegration:
    @staticmethod
    def _requests(deployment, count=5):
        router = deployment.routers["MR-1"]
        users = [deployment.users["alice"], deployment.users["bob"]]
        requests = []
        for index in range(count):
            beacon = router.make_beacon()
            request, _ = users[index % 2].connect_to_router(beacon)
            if index == 3:
                request = dataclasses.replace(
                    request, group_signature=dataclasses.replace(
                        request.group_signature,
                        s_x=request.group_signature.s_x + 1))
            requests.append(request)
        return router, requests

    def test_batch_with_pool_matches_serial(self, fresh_deployment):
        deployment = fresh_deployment()
        router, requests = self._requests(deployment)
        url = router.url
        serial = router.process_request_batch(requests)
        stats_after_serial = dict(router.engine.stats)
        # A second, structurally identical set of fresh requests for
        # the pooled run: re-submitting the same (M.2)s would hit the
        # duplicate-suppression cache (covered in the chaos suite)
        # instead of the verification path under test here.
        _, pooled_requests = self._requests(deployment)
        with VerifierPool(router.engine.gpk, url.tokens,
                          processes=2, chunk_size=2) as pool:
            pooled = router.process_request_batch(pooled_requests,
                                                  pool=pool)
        # Same classification per slot, same stats increments.
        for left, right in zip(serial, pooled):
            assert isinstance(left, tuple) == isinstance(right, tuple)
            if not isinstance(left, tuple):
                assert outcome_key(left) == outcome_key(right)
        delta = {key: router.engine.stats[key] - stats_after_serial[key]
                 for key in stats_after_serial}
        assert delta["requests"] == len(requests)
        assert delta["accepted"] == sum(
            1 for item in serial if isinstance(item, tuple))

    def test_stale_pool_is_ignored(self, fresh_deployment, monkeypatch):
        deployment = fresh_deployment()
        router, requests = self._requests(deployment, count=2)
        stale_tokens = (groupsig.RevocationToken(
            deployment.group.random_g1(random.Random(5))),)
        with VerifierPool(router.engine.gpk, stale_tokens,
                          processes=0) as pool:
            assert not pool.matches(router.engine.gpk, router.url.tokens)

            def explode(*args, **kwargs):  # pragma: no cover - guard
                raise AssertionError("stale pool must not be consulted")

            monkeypatch.setattr(pool, "verify_batch", explode)
            outcomes = router.process_request_batch(requests, pool=pool)
        assert all(isinstance(item, tuple) for item in outcomes)

"""The engine-threaded verification paths: equivalence and op counts.

Three properties pin the tentpole refactor down:

1. engine-on and engine-off ``verify`` accept/reject identically;
2. ``verify_batch`` classifies every item exactly as per-item ``verify``
   would (including bad signatures and revoked signers);
3. the instrumented operation counts are unchanged by the engine --
   tables move wall-clock time, never abstract cost.
"""

import random

import pytest

from repro import instrument
from repro.core import groupsig
from repro.errors import InvalidSignature, RevokedKeyError


@pytest.fixture(scope="module")
def signed_batch(gpk, member_keys):
    """Six valid (message, signature) pairs from three different signers."""
    rng = random.Random(501)
    batch = []
    signers = ["a1", "a2", "b1", "a1", "b2", "a2"]
    for index, name in enumerate(signers):
        message = b"batch message %d" % index
        batch.append((message,
                      groupsig.sign(gpk, member_keys[name], message,
                                    rng=rng)))
    return batch


def _tampered(signature):
    return groupsig.GroupSignature(
        signature.r, signature.t1, signature.t2, signature.c,
        signature.s_alpha, signature.s_x + 1, signature.s_delta)


class TestEngineEquivalence:
    def test_valid_signature_both_paths(self, gpk, signed_batch):
        message, signature = signed_batch[0]
        groupsig.verify(gpk, message, signature, use_engine=True)
        groupsig.verify(gpk, message, signature, use_engine=False)

    def test_bad_signature_both_paths(self, gpk, signed_batch):
        message, signature = signed_batch[0]
        for use_engine in (True, False):
            with pytest.raises(InvalidSignature):
                groupsig.verify(gpk, message, _tampered(signature),
                                use_engine=use_engine)

    def test_revoked_scan_both_paths(self, gpk, member_keys, signed_batch):
        url = [groupsig.RevocationToken(member_keys["a1"].a),
               groupsig.RevocationToken(member_keys["b1"].a),
               groupsig.RevocationToken(member_keys["b2"].a)]
        for index, (message, signature) in enumerate(signed_batch):
            outcomes = set()
            for use_engine in (True, False):
                try:
                    groupsig.verify(gpk, message, signature, url=url,
                                    use_engine=use_engine)
                    outcomes.add("ok")
                except RevokedKeyError:
                    outcomes.add("revoked")
            assert len(outcomes) == 1, (index, outcomes)

    def test_engine_counts_match_naive(self, gpk, member_keys):
        rng = random.Random(77)
        message = b"count parity"
        signature = groupsig.sign(gpk, member_keys["a1"], message, rng=rng)
        url = [groupsig.RevocationToken(member_keys["b1"].a),
               groupsig.RevocationToken(member_keys["b2"].a),
               groupsig.RevocationToken(member_keys["a2"].a)]
        snapshots = []
        for use_engine in (True, False):
            with instrument.count_operations() as ops:
                groupsig.verify(gpk, message, signature, url=url,
                                use_engine=use_engine)
            snapshots.append(ops.snapshot())
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["pairing"] == 3 + 2 * len(url)

    def test_period_mode_counts_match_naive(self, gpk, member_keys):
        rng = random.Random(78)
        message = b"period count parity"
        period = b"2026-08"
        signature = groupsig.sign(gpk, member_keys["a1"], message,
                                  rng=rng, period=period)
        # Warm the period cache so the engine path is the cache-hit one.
        groupsig.verify(gpk, message, signature, period=period)
        snapshots = []
        for use_engine in (True, False):
            with instrument.count_operations() as ops:
                groupsig.verify(gpk, message, signature, period=period,
                                use_engine=use_engine)
            snapshots.append(ops.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_engine_is_per_gpk_and_bounded(self, gpk):
        engine = gpk.engine
        assert engine is gpk.engine          # cached on the instance
        assert not hasattr(groupsig, "_BASE_PAIRING_CACHE")
        for index in range(3 * engine.max_periods):
            engine.generators(b"", 0, b"period-%d" % index)
        assert len(engine._periods) == engine.max_periods


class TestVerifyBatch:
    def test_all_valid(self, gpk, signed_batch):
        results = groupsig.verify_batch(gpk, signed_batch)
        assert results == [None] * len(signed_batch)

    def test_one_bad_signature_rejected(self, gpk, signed_batch):
        batch = list(signed_batch)
        batch[2] = (batch[2][0], _tampered(batch[2][1]))
        results = groupsig.verify_batch(gpk, batch)
        for index, result in enumerate(results):
            if index == 2:
                assert isinstance(result, InvalidSignature)
            else:
                assert result is None

    def test_matches_per_item_verify_with_revocation(self, gpk, member_keys,
                                                     signed_batch):
        url = [groupsig.RevocationToken(member_keys["a1"].a),
               groupsig.RevocationToken(member_keys["b2"].a)]
        batch = list(signed_batch)
        batch[4] = (batch[4][0], _tampered(batch[4][1]))
        results = groupsig.verify_batch(gpk, batch, url=url)
        for (message, signature), result in zip(batch, results):
            try:
                groupsig.verify(gpk, message, signature, url=url)
                assert result is None
            except (InvalidSignature, RevokedKeyError) as exc:
                assert type(result) is type(exc)

    def test_period_mode(self, gpk, member_keys):
        rng = random.Random(93)
        period = b"epoch-9"
        url = [groupsig.RevocationToken(member_keys["b1"].a)]
        batch = []
        for index, name in enumerate(["a1", "b1", "a2"]):
            message = b"period batch %d" % index
            batch.append((message,
                          groupsig.sign(gpk, member_keys[name], message,
                                        rng=rng, period=period)))
        results = groupsig.verify_batch(gpk, batch, url=url, period=period)
        assert results[0] is None
        assert isinstance(results[1], RevokedKeyError)
        assert results[2] is None

    def test_screen_subgroup_same_outcome_for_honest_batch(self, gpk,
                                                           signed_batch):
        rng = random.Random(17)
        batch = list(signed_batch)
        batch[1] = (batch[1][0], _tampered(batch[1][1]))
        exact = groupsig.verify_batch(gpk, batch)
        screened = groupsig.verify_batch(gpk, batch, rng=rng,
                                         screen_subgroup=True)
        assert [type(item) for item in exact] == \
            [type(item) for item in screened]

    def test_empty_batch(self, gpk):
        assert groupsig.verify_batch(gpk, []) == []

    def test_batch_counts_are_per_item(self, gpk, signed_batch):
        with instrument.count_operations() as ops:
            groupsig.verify_batch(gpk, signed_batch[:3])
        assert ops.pairings() == 3 * 3
        assert ops.exponentiations() == 3 * 6


class TestSmoke:
    """~10s subset exercised by scripts/tier1.sh."""

    def test_batch_and_engine_agree(self, gpk, member_keys):
        rng = random.Random(5)
        message = b"smoke"
        good = groupsig.sign(gpk, member_keys["a1"], message, rng=rng)
        groupsig.verify(gpk, message, good, use_engine=True)
        groupsig.verify(gpk, message, good, use_engine=False)
        results = groupsig.verify_batch(
            gpk, [(message, good), (message, _tampered(good))])
        assert results[0] is None
        assert isinstance(results[1], InvalidSignature)

"""Session key ratcheting and keying-material export."""

import pytest

from repro.errors import SessionError


@pytest.fixture
def session_pair(fresh_deployment):
    return fresh_deployment().connect("alice", "MR-1")


class TestRekey:
    def test_synchronized_rekey_keeps_working(self, session_pair):
        user, router = session_pair
        router.receive(user.send(b"gen 0"))
        assert user.rekey() == 1
        assert router.rekey() == 1
        assert router.receive(user.send(b"gen 1")) == b"gen 1"
        assert user.receive(router.send(b"gen 1 back")) == b"gen 1 back"

    def test_unsynchronized_rekey_severs(self, session_pair):
        user, router = session_pair
        user.rekey()
        packet = user.send(b"from the future")
        with pytest.raises(SessionError):
            router.receive(packet)

    def test_old_generation_packets_rejected_after_rekey(self,
                                                         session_pair):
        """Forward secrecy within the session: a packet sealed under
        generation N fails once both sides moved to N+1."""
        user, router = session_pair
        stale = user.send(b"old generation")
        user.rekey()
        router.rekey()
        with pytest.raises(SessionError):
            router.receive(stale)

    def test_many_generations(self, session_pair):
        user, router = session_pair
        for generation in range(1, 6):
            assert user.rekey() == generation
            assert router.rekey() == generation
            payload = b"g%d" % generation
            assert router.receive(user.send(payload)) == payload

    def test_generations_produce_distinct_keys(self, session_pair):
        user, _router = session_pair
        first = user.export_key_material(b"probe")
        user.rekey()
        second = user.export_key_material(b"probe")
        assert first != second


class TestExport:
    def test_both_sides_export_identically(self, session_pair):
        user, router = session_pair
        assert (user.export_key_material(b"app")
                == router.export_key_material(b"app"))

    def test_labels_separate(self, session_pair):
        user, _ = session_pair
        assert (user.export_key_material(b"a")
                != user.export_key_material(b"b"))

    def test_length_control(self, session_pair):
        user, _ = session_pair
        assert len(user.export_key_material(b"x", length=48)) == 48

    def test_sessions_export_differently(self, fresh_deployment):
        deployment = fresh_deployment()
        s1, _ = deployment.connect("alice", "MR-1")
        s2, _ = deployment.connect("alice", "MR-1")
        assert (s1.export_key_material(b"app")
                != s2.export_key_material(b"app"))

"""Chaos suite: seeded fault plans against the full handshake stack.

The contract under test (ISSUE acceptance): for every plan and every
seed, a handshake either *completes* -- with user and router holding
the same session, able to exchange data, exactly as a fault-free run
would -- or *fails closed* with a typed :mod:`repro.errors` error /
a clean timeout.  Never a hang, a crash, or a half-open session that
one side believes in and the other does not.

Every test here runs across the three fixed CI seeds so a failure
names its reproduction recipe.
"""

import pytest

from repro import obs
from repro.core.protocols.user_router import RetryPolicy
from repro.errors import DegradedModeError
from repro.faults import FaultInjector, FaultPlan, RadioFault, RouterFault
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig

CHAOS_SEEDS = [101, 202, 303]

RETRY = RetryPolicy(initial_timeout=2.0, backoff_factor=2.0,
                    max_timeout=8.0, max_retries=4, jitter=0.1)


def chaos_scenario(seed, users=3, retry=True, loss=0.0, **overrides):
    config = ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=400.0, router_grid=1,
                                user_count=users, seed=seed,
                                access_range=400.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=loss,
        retry_policy=RETRY if retry else None,
        **overrides)
    scenario = Scenario(config)
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    return scenario


def assert_no_half_open_sessions(scenario):
    """The never-silent-partial invariant: every user that believes it
    is connected holds a session its router also holds; every user
    that does not is absent from its attempt's pending state."""
    router_sessions = set()
    for sim_router in scenario.sim_routers.values():
        router_sessions |= set(sim_router.router.engine.sessions)
    for user in scenario.sim_users.values():
        if user.state == "connected":
            assert user.session is not None
            assert user.session.session_id in router_sessions
        else:
            assert user.session is None


class TestChaosHandshake:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_m2_loss_recovered_by_retransmission(self, seed):
        """Dropping a prefix of M.2 traffic: the retransmitter must
        complete every handshake without a fresh beacon cycle."""
        scenario = chaos_scenario(seed)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="drop", probability=0.6,
                              frame_kinds=("M.2",), stop=20.0)]))
        injector.arm_scenario(scenario)
        scenario.run(120.0)
        assert scenario.connected_fraction() == 1.0
        assert_no_half_open_sessions(scenario)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_m3_loss_never_yields_two_sessions(self, seed):
        """Satellite: the router's M.3 is dropped, the user retransmits
        its M.2, the router re-serves the cached confirm.  One session,
        one log entry, one completed handshake per user -- the
        retransmit is counted as a duplicate exactly once per copy."""
        scenario = chaos_scenario(seed)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="drop", probability=1.0,
                              frame_kinds=("M.3",), stop=6.0)]))
        injector.arm_scenario(scenario)
        with obs.collecting() as registry:
            scenario.run(120.0)
        assert scenario.connected_fraction() == 1.0
        assert_no_half_open_sessions(scenario)
        users = len(scenario.sim_users)
        for sim_router in scenario.sim_routers.values():
            engine = sim_router.router.engine
            # Exactly one live session and one audit-log entry per
            # user, regardless of how many M.2 copies arrived.
            assert len(engine.sessions) == users
            assert len(engine.log) == users
            assert engine.stats["accepted"] == users
            assert engine.stats["duplicate_requests"] >= 1
            assert sim_router.metrics["handshakes_completed"] == users
            # The obs counter saw the same duplicates the stats did.
            assert (registry.counter_value("router.duplicate_requests_total")
                    == engine.stats["duplicate_requests"])

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_corruption_rejected_then_recovered(self, seed):
        """Corrupted M.2 bytes must be rejected (typed error inside the
        router, counted as a rejection), and the retransmitted clean
        copy must still complete the handshake."""
        scenario = chaos_scenario(seed)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="corrupt", probability=1.0,
                              frame_kinds=("M.2",), stop=5.0)]))
        injector.arm_scenario(scenario)
        scenario.run(180.0)
        assert scenario.connected_fraction() == 1.0
        assert_no_half_open_sessions(scenario)
        metrics = scenario.router_metrics()
        assert (metrics["handshakes_rejected"] >= 1
                or injector.counts.get("corrupt", 0) == 0)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_duplicate_m2_frames_single_session(self, seed):
        """The medium itself duplicates M.2 (no loss): the router must
        treat the copies idempotently."""
        scenario = chaos_scenario(seed, retry=False)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="duplicate", copies=2,
                              frame_kinds=("M.2",))]))
        injector.arm_scenario(scenario)
        scenario.run(60.0)
        assert scenario.connected_fraction() == 1.0
        assert_no_half_open_sessions(scenario)
        users = len(scenario.sim_users)
        for sim_router in scenario.sim_routers.values():
            engine = sim_router.router.engine
            assert len(engine.sessions) == users
            assert engine.stats["accepted"] == users
            assert engine.stats["duplicate_requests"] == 2 * users
            assert sim_router.metrics["handshakes_completed"] == users

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_outcome_matches_fault_free_run(self, seed):
        """Completed-handshake equivalence: a faulted run that connects
        everyone ends in the same observable protocol state as the
        fault-free run -- same per-router acceptance counts, same
        session cardinality, zero rejected data."""
        def terminal_state(plan):
            scenario = chaos_scenario(seed)
            if plan is not None:
                FaultInjector(plan).arm_scenario(scenario)
            scenario.run(120.0)
            return {
                "connected": scenario.connected_fraction(),
                "accepted": sorted(
                    r.router.engine.stats["accepted"]
                    for r in scenario.sim_routers.values()),
                "sessions": sorted(
                    len(r.router.engine.sessions)
                    for r in scenario.sim_routers.values()),
            }

        clean = terminal_state(None)
        faulted = terminal_state(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="drop", probability=0.5,
                              frame_kinds=("M.2", "M.3"), stop=15.0)]))
        assert faulted == clean

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_retry_budget_exhaustion_fails_closed(self, seed):
        """100% M.2 loss forever: retransmission cannot help.  The user
        must burn its budget, give up cleanly, and retry from a later
        beacon -- still no session anywhere, no hang."""
        scenario = chaos_scenario(seed, users=2)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="drop", probability=1.0,
                              frame_kinds=("M.2",))]))
        injector.arm_scenario(scenario)
        scenario.run(120.0)
        assert scenario.connected_fraction() == 0.0
        assert_no_half_open_sessions(scenario)
        metrics = scenario.user_metrics()
        assert metrics["retry_give_ups"] >= 1
        assert metrics["retransmits"] >= 1
        for sim_router in scenario.sim_routers.values():
            assert sim_router.router.engine.sessions == {}


class TestDegradedMode:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_grace_window_then_typed_refusal(self, seed, fresh_deployment):
        """An honest router that loses its backhaul serves last-known
        lists within the grace window, then refuses with
        DegradedModeError -- fail closed, not stale-forever."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        router.staleness_grace = 120.0
        user = deployment.users["alice"]

        FaultInjector(FaultPlan(
            seed=seed, router=[RouterFault(kind="sever_channel")]
        )).arm_router(router)
        assert router.degraded

        # Inside the grace window: full service on last-known lists.
        deployment.clock.advance(60.0)
        beacon = router.make_beacon()
        request, pending = user.connect_to_router(beacon)
        confirm, _ = router.process_request(request)
        session = user.complete_router_handshake(pending, confirm)
        assert session.session_id in router.engine.sessions

        # Past the grace window: every protocol entry point refuses.
        deployment.clock.advance(120.0)
        with pytest.raises(DegradedModeError):
            router.make_beacon()
        with pytest.raises(DegradedModeError):
            router.process_request(request)
        with pytest.raises(DegradedModeError):
            router.process_request_batch([request])

    def test_channel_restore_clears_degradation(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        router.staleness_grace = 60.0
        router.set_operator_channel(False)
        deployment.clock.advance(600.0)
        with pytest.raises(DegradedModeError):
            router.make_beacon()
        router.set_operator_channel(True)
        assert not router.degraded
        assert router.lists_age() == 0.0     # refreshed on restore
        router.make_beacon()                 # serving again

    def test_revoked_router_exempt_from_degraded_mode(self,
                                                      fresh_deployment):
        """E7's phishing window depends on a *revoked* router serving
        ever-staler lists; degraded mode must never kick in there."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        router.staleness_grace = 60.0
        router.sever_operator_channel()      # revocation path
        deployment.clock.advance(10_000.0)
        assert not router.degraded
        router.make_beacon()                 # still phishing happily
        # And flipping the honest channel is a no-op on revoked routers.
        router.set_operator_channel(False)
        assert not router.degraded

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_degraded_router_in_simulation_stops_cleanly(self, seed):
        """Severed backhaul mid-simulation: beacons stop after the
        grace window (suppressed, not crashed) and the loop keeps
        running."""
        scenario = chaos_scenario(seed, users=2)
        for sim_router in scenario.sim_routers.values():
            sim_router.router.staleness_grace = 30.0
        injector = FaultInjector(FaultPlan(
            seed=seed,
            router=[RouterFault(kind="sever_channel", at=10.0)]))
        for sim_router in scenario.sim_routers.values():
            injector.arm_router(sim_router.router, loop=scenario.loop)
        scenario.run(200.0)
        metrics = scenario.router_metrics()
        assert metrics["beacons_suppressed"] >= 1
        assert_no_half_open_sessions(scenario)


class TestExpireTick:
    def test_burst_then_silence_releases_state(self, fresh_deployment):
        """Satellite: a router that beacons in a burst and then goes
        quiet still sheds expired beacon secrets and cached confirms
        when the scenario loop drives expire()."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        for _ in range(10):
            router.make_beacon()
        beacon = router.make_beacon()
        request, pending = user.connect_to_router(beacon)
        confirm, _ = router.process_request(request)
        user.complete_router_handshake(pending, confirm)
        engine = router.engine
        assert len(engine._outstanding) == 11
        assert len(engine._completed) == 1

        # Silence: no beacons, so only the explicit tick can prune.
        deployment.clock.advance(engine.beacon_validity + 1.0)
        engine_outstanding_before = len(engine._outstanding)
        assert engine_outstanding_before == 11
        router.expire()
        assert engine._outstanding == {}
        assert engine._completed == {}

    def test_expire_keeps_fresh_state(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        router.make_beacon()
        deployment.clock.advance(5.0)
        router.expire()
        assert len(router.engine._outstanding) == 1

    def test_scenario_expire_interval_wired(self):
        scenario = chaos_scenario(101, users=1,
                                  expire_interval=20.0)
        scenario.run(10.0)   # builds + runs; the tick is scheduled
        router = next(iter(scenario.sim_routers.values())).router
        outstanding = len(router.engine._outstanding)
        assert outstanding >= 1
        scenario.loop.run_until(scenario.loop.now + 400.0)
        # Old beacons (>300s) are gone even though ticks, not
        # make_beacon, did the pruning between beacon bursts.
        for _key, (_r, _g, issued, _p) in \
                router.engine._outstanding.items():
            assert scenario.clock.now() - issued \
                <= router.engine.beacon_validity + 20.0

"""GT serialization and the precomputed-pairing verify variant."""

import pytest

from repro import instrument
from repro.core import groupsig
from repro.errors import EncodingError, InvalidSignature


class TestGtCodec:
    def test_roundtrip(self, group):
        element = group.pair(group.g1, group.g2) ** 7
        assert group.decode_gt(element.encode()) == element

    def test_identity_roundtrip(self, group):
        identity = group.gt_identity()
        assert group.decode_gt(identity.encode()).is_identity()

    def test_bad_width_rejected(self, group):
        with pytest.raises(EncodingError):
            group.decode_gt(b"\x00" * 7)

    def test_off_subgroup_value_rejected(self, group):
        """An arbitrary F_p2 value (order not dividing r) is refused."""
        size = group.params.field_bytes
        for candidate in range(2, 50):
            blob = (candidate.to_bytes(size, "big")
                    + (0).to_bytes(size, "big"))
            try:
                group.decode_gt(blob)
            except EncodingError:
                return
        pytest.skip("no off-subgroup scalar found in range")

    def test_zero_rejected(self, group):
        with pytest.raises(EncodingError):
            group.decode_gt(b"\x00" * group.params.gt_bytes)


class TestPrecomputedVerify:
    def test_accepts_valid_signatures(self, gpk, member_keys, rng):
        signature = groupsig.sign(gpk, member_keys["a1"], b"pc", rng=rng)
        groupsig.verify(gpk, b"pc", signature, precomputed=True)

    def test_rejects_invalid_signatures(self, gpk, member_keys, rng):
        signature = groupsig.sign(gpk, member_keys["a1"], b"pc", rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"other", signature, precomputed=True)

    def test_saves_exactly_one_pairing(self, gpk, member_keys, rng):
        signature = groupsig.sign(gpk, member_keys["a1"], b"pc", rng=rng)
        groupsig.verify(gpk, b"pc", signature, precomputed=True)  # warm
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, b"pc", signature, precomputed=True)
        assert ops.pairings() == 2
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, b"pc", signature)
        assert ops.pairings() == 3

    def test_default_keeps_paper_accounting(self, gpk, member_keys, rng):
        """The paper-faithful count stays the default."""
        signature = groupsig.sign(gpk, member_keys["a1"], b"pc2",
                                  rng=rng)
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, b"pc2", signature)
        assert ops.pairings() == 3
        assert ops.exponentiations() == 6

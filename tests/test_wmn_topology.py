"""Tests for the three-layer metropolitan topology (Fig. 1 / F1)."""

import math

import pytest

from repro.errors import SimulationError
from repro.wmn.topology import TopologyConfig, build_topology, topology_report


class TestBuild:
    def test_router_count(self):
        topology = build_topology(TopologyConfig(router_grid=3, seed=1))
        assert len(topology.router_positions) == 9

    def test_gateway_subset(self):
        topology = build_topology(TopologyConfig(router_grid=4,
                                                 gateway_fraction=0.25,
                                                 seed=1))
        assert len(topology.gateway_ids) == 4
        assert set(topology.gateway_ids) <= set(topology.router_positions)

    def test_at_least_one_gateway(self):
        topology = build_topology(TopologyConfig(router_grid=1,
                                                 gateway_fraction=0.01,
                                                 seed=1))
        assert len(topology.gateway_ids) == 1

    def test_users_inside_area(self):
        config = TopologyConfig(area_side=1000.0, user_count=30, seed=2)
        topology = build_topology(config)
        assert len(topology.user_positions) == 30
        for x, y in topology.user_positions.values():
            assert 0 <= x <= 1000 and 0 <= y <= 1000

    def test_deterministic(self):
        a = build_topology(TopologyConfig(seed=5))
        b = build_topology(TopologyConfig(seed=5))
        assert a.router_positions == b.router_positions
        assert a.user_positions == b.user_positions

    def test_zero_routers_rejected(self):
        with pytest.raises(SimulationError):
            build_topology(TopologyConfig(router_grid=0))

    def test_backbone_edges_respect_range(self):
        config = TopologyConfig(backbone_range=900.0, seed=3)
        topology = build_topology(config)
        for a, b in topology.backbone.edges:
            gap = math.dist(topology.router_positions[a],
                            topology.router_positions[b])
            assert gap <= 900.0


class TestQueries:
    def test_nearest_router(self):
        topology = build_topology(TopologyConfig(seed=1))
        router_id = topology.nearest_router((0.0, 0.0))
        assert router_id in topology.router_positions

    def test_routers_in_reach(self):
        topology = build_topology(TopologyConfig(seed=1))
        some_router = next(iter(topology.router_positions.values()))
        covering = topology.routers_in_reach_of(some_router)
        assert covering   # a point at a router is covered by it


class TestReport:
    def test_report_fields(self):
        report = topology_report(build_topology(TopologyConfig(seed=1)))
        expected_keys = {"routers", "gateways", "users",
                         "backbone_connected", "mean_router_degree",
                         "max_hops_to_gateway", "mean_hops_to_gateway",
                         "user_coverage_fraction", "area_km2"}
        assert expected_keys <= set(report)

    def test_default_city_is_connected_and_covered(self):
        """The default config models a working metro WMN: connected
        backbone, all users within some router's reach."""
        report = topology_report(build_topology(TopologyConfig(seed=0)))
        assert report["backbone_connected"] == 1.0
        assert report["user_coverage_fraction"] >= 0.9

    def test_sparse_network_detected(self):
        config = TopologyConfig(router_grid=3, backbone_range=100.0,
                                seed=1)
        report = topology_report(build_topology(config))
        assert report["backbone_connected"] == 0.0
        assert math.isinf(report["max_hops_to_gateway"])

    def test_denser_grid_fewer_hops(self):
        sparse = topology_report(build_topology(
            TopologyConfig(router_grid=2, gateway_fraction=0.3, seed=4)))
        dense = topology_report(build_topology(
            TopologyConfig(router_grid=5, gateway_fraction=0.3, seed=4)))
        assert dense["routers"] > sparse["routers"]

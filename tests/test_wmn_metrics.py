"""Tests for metric aggregation and the cost model."""

import math

import pytest

from repro.wmn.costmodel import CostModel
from repro.wmn.metrics import HandshakeStats, mean, merge_counters, percentile


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_nan(self):
        assert math.isnan(mean([]))

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 1) == 1.0

    def test_percentile_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 100) == 9.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_handshake_stats_summary(self):
        stats = HandshakeStats()
        stats.extend([0.1, 0.2, 0.3, 0.4])
        summary = stats.summary()
        assert summary["count"] == 4
        assert abs(summary["mean"] - 0.25) < 1e-9
        assert summary["max"] == 0.4

    def test_merge_counters(self):
        merged = merge_counters([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        assert merged == {"a": 4, "b": 2, "c": 4}

    def test_merge_empty(self):
        assert merge_counters([]) == {}


class TestCostModel:
    def test_group_sign_formula(self):
        cost = CostModel(pairing=0.02, exponentiation=0.002)
        assert abs(cost.group_sign() - (8 * 0.002 + 2 * 0.02)) < 1e-12

    def test_group_verify_scales_with_url(self):
        cost = CostModel()
        assert (cost.group_verify(10) - cost.group_verify(0)
                == pytest.approx(20 * cost.pairing))

    def test_fast_revocation_constant(self):
        cost = CostModel()
        assert (cost.group_verify_fast_revocation()
                == pytest.approx(6 * cost.exponentiation
                                 + 5 * cost.pairing))

    def test_fast_variant_wins_beyond_url_1(self):
        """The cost model reproduces the E3 crossover analytically."""
        cost = CostModel()
        assert cost.group_verify(0) < cost.group_verify_fast_revocation()
        assert cost.group_verify(2) > cost.group_verify_fast_revocation()

    def test_puzzle_solve_exponential(self):
        cost = CostModel(hash_op=1e-6)
        assert cost.puzzle_solve(11) == 2 * cost.puzzle_solve(10)

    def test_beacon_costs(self):
        cost = CostModel()
        assert cost.beacon_cost() == cost.ecdsa_sign
        assert cost.beacon_check() == 4 * cost.ecdsa_verify

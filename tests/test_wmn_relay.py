"""Multi-hop relaying over authenticated peer sessions."""

import pytest

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def relay_scenario(user_count=3, seed=5):
    return Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=600.0, router_grid=1,
                                user_count=user_count, seed=seed,
                                access_range=600.0, user_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=5.0,
        relay_capable=True))


class TestPeerHandshakeOverRadio:
    def test_two_users_establish_peer_session(self):
        scenario = relay_scenario()
        scenario.run(20.0)   # hear beacons (needed for g and URL)
        users = list(scenario.sim_users.values())
        a, b = users[0], users[1]
        a.initiate_peer(b.node_id)
        scenario.run(5.0)
        assert b.node_id in a.peer_sessions
        assert a.node_id in b.peer_sessions
        assert a.relay_metrics["peer_handshakes"] == 1
        assert b.relay_metrics["peer_handshakes"] == 1

    def test_peer_sessions_carry_data(self):
        scenario = relay_scenario()
        scenario.run(20.0)
        users = list(scenario.sim_users.values())
        a, b = users[0], users[1]
        a.initiate_peer(b.node_id)
        scenario.run(5.0)
        session_a = a.peer_sessions[b.node_id]
        session_b = b.peer_sessions[a.node_id]
        packet = session_a.send(b"direct peer data")
        assert session_b.receive(packet) == b"direct peer data"

    def test_initiate_before_beacon_fails(self):
        scenario = relay_scenario()
        users = list(scenario.sim_users.values())
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            users[0].initiate_peer(users[1].node_id)


class TestRelayedUplink:
    def _connected_relay_setup(self, hops):
        """Users all connected to the router plus a peer chain."""
        scenario = relay_scenario(user_count=hops + 1)
        scenario.run(30.0)
        users = list(scenario.sim_users.values())
        for left, right in zip(users, users[1:]):
            left.initiate_peer(right.node_id)
            scenario.run(5.0)
        return scenario, users

    def test_single_hop_relay(self):
        scenario, users = self._connected_relay_setup(hops=1)
        source, relay = users[0], users[1]
        router = next(iter(scenario.sim_routers.values()))
        delivered_before = router.metrics["data_delivered"]
        # The SOURCE's own router session protects the inner packet;
        # the relay only forwards.
        assert source.session is not None
        from repro.wmn.nodes import pack_uplink
        inner = source.session.send(
            pack_uplink(b"relayed payload")).encode()
        source.send_relayed([relay.node_id], router.node_id, inner)
        scenario.run(5.0)
        assert router.metrics["data_delivered"] == delivered_before + 1
        assert relay.relay_metrics["relayed"] == 1

    def test_two_hop_relay(self):
        scenario, users = self._connected_relay_setup(hops=2)
        source, relay1, relay2 = users
        router = next(iter(scenario.sim_routers.values()))
        delivered_before = router.metrics["data_delivered"]
        from repro.wmn.nodes import pack_uplink
        inner = source.session.send(pack_uplink(b"two hops")).encode()
        source.send_relayed([relay1.node_id, relay2.node_id],
                            router.node_id, inner)
        scenario.run(5.0)
        assert router.metrics["data_delivered"] == delivered_before + 1
        assert relay1.relay_metrics["relayed"] == 1
        assert relay2.relay_metrics["relayed"] == 1

    def test_relay_without_session_rejected(self):
        scenario = relay_scenario()
        scenario.run(20.0)
        users = list(scenario.sim_users.values())
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            users[0].send_relayed([users[1].node_id], "MR-0", b"data")

    def test_unsolicited_relay_frame_dropped(self):
        """A relay envelope from a stranger (no peer session) is
        rejected -- relaying only for authenticated peers (IV.C)."""
        scenario = relay_scenario()
        scenario.run(20.0)
        users = list(scenario.sim_users.values())
        target = users[0]
        from repro.wmn.radio import Frame
        target.deliver(Frame("RLY", b"\x00" * 64, src="stranger",
                             dst=target.node_id))
        assert target.relay_metrics["relay_rejected"] == 1
        assert target.relay_metrics["relayed"] == 0

    def test_tampered_envelope_rejected(self):
        scenario, users = self._connected_relay_setup(hops=1)
        source, relay = users[0], users[1]
        session = source.peer_sessions[relay.node_id]
        packet = session.send(b"will be tampered")
        blob = bytearray(packet.encode())
        blob[-1] ^= 1
        from repro.wmn.radio import Frame
        relay.deliver(Frame("RLY", bytes(blob), src=source.node_id,
                            dst=relay.node_id))
        assert relay.relay_metrics["relay_rejected"] >= 1

"""Tests for router certificates, CRL, and URL."""

import random

import pytest

from repro.core import groupsig
from repro.core.certs import (
    MAX_CLOCK_SKEW,
    CertificateRevocationList,
    RouterCertificate,
    UserRevocationList,
)
from repro.core.clock import ManualClock
from repro.errors import CertificateError
from repro.sig.curves import SECP160R1
from repro.sig.ecdsa import ecdsa_generate


@pytest.fixture(scope="module")
def operator_key():
    return ecdsa_generate(SECP160R1, rng=random.Random(500))


@pytest.fixture(scope="module")
def router_cert(operator_key):
    router_key = ecdsa_generate(SECP160R1, rng=random.Random(501))
    cert = RouterCertificate("MR-9", router_key.public, 2000.0, b"")
    return RouterCertificate("MR-9", router_key.public, 2000.0,
                             operator_key.sign(cert.signed_payload()))


class TestRouterCertificate:
    def test_valid_cert_accepted(self, router_cert, operator_key):
        router_cert.validate(operator_key.public, now=1000.0)

    def test_expired_cert_rejected(self, router_cert, operator_key):
        with pytest.raises(CertificateError):
            router_cert.validate(operator_key.public, now=2001.0)

    def test_forged_signature_rejected(self, router_cert, operator_key):
        forged = RouterCertificate(router_cert.router_id,
                                   router_cert.public_key,
                                   router_cert.expires_at,
                                   b"\x00" * 42)
        with pytest.raises(CertificateError):
            forged.validate(operator_key.public, now=1000.0)

    def test_self_signed_cert_rejected(self, operator_key):
        """The rogue-phisher case: signed by the router itself."""
        rogue_key = ecdsa_generate(SECP160R1, rng=random.Random(502))
        cert = RouterCertificate("MR-rogue", rogue_key.public, 9999.0, b"")
        cert = RouterCertificate("MR-rogue", rogue_key.public, 9999.0,
                                 rogue_key.sign(cert.signed_payload()))
        with pytest.raises(CertificateError):
            cert.validate(operator_key.public, now=1000.0)

    def test_encode_roundtrip(self, router_cert, operator_key):
        decoded = RouterCertificate.decode(SECP160R1, router_cert.encode())
        decoded.validate(operator_key.public, now=1000.0)
        assert decoded.router_id == "MR-9"

    def test_altered_expiry_rejected(self, router_cert, operator_key):
        extended = RouterCertificate(router_cert.router_id,
                                     router_cert.public_key,
                                     router_cert.expires_at + 10_000,
                                     router_cert.signature)
        with pytest.raises(CertificateError):
            extended.validate(operator_key.public, now=1000.0)


def make_crl(operator_key, version=1, issued_at=1000.0, period=600.0,
             revoked=frozenset()):
    crl = CertificateRevocationList(version, issued_at, period,
                                    frozenset(revoked), b"")
    return CertificateRevocationList(
        version, issued_at, period, frozenset(revoked),
        operator_key.sign(crl.signed_payload()))


class TestCrl:
    def test_valid_crl_accepted(self, operator_key):
        crl = make_crl(operator_key)
        crl.validate(operator_key.public, now=1100.0)

    def test_stale_crl_rejected(self, operator_key):
        """Staleness beyond one update period -- the phishing tell."""
        crl = make_crl(operator_key, issued_at=1000.0, period=600.0)
        with pytest.raises(CertificateError):
            crl.validate(operator_key.public, now=1601.0)

    def test_staleness_override(self, operator_key):
        crl = make_crl(operator_key, issued_at=1000.0, period=600.0)
        crl.validate(operator_key.public, now=1601.0, max_staleness=1e9)

    def test_membership(self, operator_key):
        crl = make_crl(operator_key, revoked={"MR-1", "MR-2"})
        assert crl.is_revoked("MR-1")
        assert not crl.is_revoked("MR-3")

    def test_forged_crl_rejected(self, operator_key):
        """An attacker cannot shrink the CRL: signature covers content."""
        crl = make_crl(operator_key, revoked={"MR-1"})
        stripped = CertificateRevocationList(
            crl.version, crl.issued_at, crl.update_period, frozenset(),
            crl.signature)
        with pytest.raises(CertificateError):
            stripped.validate(operator_key.public, now=1100.0)

    def test_encode_roundtrip(self, operator_key):
        crl = make_crl(operator_key, revoked={"MR-5"})
        decoded = CertificateRevocationList.decode(crl.encode())
        decoded.validate(operator_key.public, now=1100.0)
        assert decoded.is_revoked("MR-5")

    def test_garbage_rejected(self):
        with pytest.raises(CertificateError):
            CertificateRevocationList.decode(b"XYZ garbage")


class TestFutureDating:
    """A future-dated list must not pass freshness forever (negative
    staleness used to satisfy ``now - issued_at <= limit`` trivially)."""

    def test_future_dated_crl_rejected(self, operator_key):
        clock = ManualClock(1000.0)
        crl = make_crl(operator_key,
                       issued_at=clock.now() + MAX_CLOCK_SKEW + 1.0)
        with pytest.raises(CertificateError, match="future-dated"):
            crl.validate(operator_key.public, now=clock.now())

    def test_future_dated_crl_within_skew_accepted(self, operator_key):
        clock = ManualClock(1000.0)
        crl = make_crl(operator_key,
                       issued_at=clock.now() + MAX_CLOCK_SKEW - 1.0)
        crl.validate(operator_key.public, now=clock.now())

    def test_future_dated_crl_accepted_once_time_catches_up(self,
                                                            operator_key):
        clock = ManualClock(1000.0)
        issued_at = clock.now() + MAX_CLOCK_SKEW + 50.0
        crl = make_crl(operator_key, issued_at=issued_at)
        with pytest.raises(CertificateError):
            crl.validate(operator_key.public, now=clock.now())
        clock.advance(MAX_CLOCK_SKEW + 50.0)
        crl.validate(operator_key.public, now=clock.now())

    def test_future_dated_url_rejected(self, operator_key):
        clock = ManualClock(5000.0)
        issued_at = clock.now() + MAX_CLOCK_SKEW + 1.0
        url = UserRevocationList(0, issued_at, 600.0, (), b"")
        url = UserRevocationList(0, issued_at, 600.0, (),
                                 operator_key.sign(url.signed_payload()))
        with pytest.raises(CertificateError, match="future-dated"):
            url.validate(operator_key.public, now=clock.now())

    def test_skew_override(self, operator_key):
        clock = ManualClock(1000.0)
        crl = make_crl(operator_key, issued_at=clock.now() + 500.0)
        with pytest.raises(CertificateError):
            crl.validate(operator_key.public, now=clock.now())
        crl.validate(operator_key.public, now=clock.now(), max_skew=1000.0)

    def test_max_staleness_override_does_not_bypass_skew(self,
                                                         operator_key):
        """The old bypass: huge max_staleness must not admit a
        future-dated list."""
        clock = ManualClock(1000.0)
        crl = make_crl(operator_key, issued_at=clock.now() + 10_000.0)
        with pytest.raises(CertificateError, match="future-dated"):
            crl.validate(operator_key.public, now=clock.now(),
                         max_staleness=1e9)


class TestUrl:
    def test_url_roundtrip(self, operator_key, group, member_keys):
        tokens = (groupsig.RevocationToken(member_keys["a1"].a),)
        url = UserRevocationList(3, 1000.0, 600.0, tokens, b"")
        url = UserRevocationList(
            3, 1000.0, 600.0, tokens,
            operator_key.sign(url.signed_payload()))
        decoded = UserRevocationList.decode(group, url.encode())
        decoded.validate(operator_key.public, now=1200.0)
        assert decoded.tokens[0].a == tokens[0].a

    def test_stale_url_rejected(self, operator_key):
        url = UserRevocationList(0, 1000.0, 600.0, (), b"")
        url = UserRevocationList(0, 1000.0, 600.0, (),
                                 operator_key.sign(url.signed_payload()))
        with pytest.raises(CertificateError):
            url.validate(operator_key.public, now=1700.0)

    def test_token_injection_rejected(self, operator_key, group,
                                      member_keys):
        """Adding a token (framing a user) breaks the signature."""
        url = UserRevocationList(0, 1000.0, 600.0, (), b"")
        url = UserRevocationList(0, 1000.0, 600.0, (),
                                 operator_key.sign(url.signed_payload()))
        framed = UserRevocationList(
            url.version, url.issued_at, url.update_period,
            (groupsig.RevocationToken(member_keys["a1"].a),),
            url.signature)
        with pytest.raises(CertificateError):
            framed.validate(operator_key.public, now=1100.0)

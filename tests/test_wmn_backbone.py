"""User-to-user communication through mesh routers and the backbone.

Paper III.A: "all the network traffic has to go through a mesh router
except the communication between two direct neighboring users" -- these
tests exercise that path: user A -> serving router -> (backbone) ->
user B's router -> one-hop downlink -> user B, addressed purely by
anonymous session handles.
"""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.wmn.backbone import BackboneFrame, BackboneNetwork, UplinkDirectory
from repro.wmn.nodes import (
    ENV_FROM_SESSION,
    ENV_TO_SESSION,
    ENV_UPLINK,
    pack_from_session,
    pack_to_session,
    pack_uplink,
    unpack_envelope,
)
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.simclock import EventLoop
from repro.wmn.topology import TopologyConfig


class TestEnvelopes:
    def test_uplink_roundtrip(self):
        kind, payload = unpack_envelope(pack_uplink(b"data"))
        assert kind == ENV_UPLINK and payload == b"data"

    def test_to_session_roundtrip(self):
        kind, (dst, payload) = unpack_envelope(
            pack_to_session(b"S" * 16, b"data"))
        assert kind == ENV_TO_SESSION
        assert dst == b"S" * 16 and payload == b"data"

    def test_from_session_roundtrip(self):
        kind, (src, payload) = unpack_envelope(
            pack_from_session(b"T" * 16, b"data"))
        assert kind == ENV_FROM_SESSION
        assert src == b"T" * 16 and payload == b"data"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_envelope(b"\x09junk")


class TestBackboneNetwork:
    def _net(self):
        import networkx as nx
        loop = EventLoop()
        graph = nx.path_graph(["MR-a", "MR-b", "MR-c"])
        return loop, BackboneNetwork(loop, graph)

    def test_multihop_delivery(self):
        loop, net = self._net()
        got = []
        net.attach_router("MR-a", got.append)
        net.attach_router("MR-c", got.append)
        assert net.send(BackboneFrame("MR-a", "MR-c", b"x"))
        loop.run_all()
        assert len(got) == 1 and got[0].payload == b"x"
        assert net.hops_traversed == 2

    def test_unknown_destination_dropped(self):
        loop, net = self._net()
        net.attach_router("MR-a", lambda f: None)
        assert not net.send(BackboneFrame("MR-a", "MR-z", b"x"))
        assert net.frames_undeliverable == 1

    def test_partition_detected(self):
        import networkx as nx
        loop = EventLoop()
        graph = nx.Graph()
        graph.add_nodes_from(["MR-a", "MR-b"])   # no edge
        net = BackboneNetwork(loop, graph)
        net.attach_router("MR-a", lambda f: None)
        net.attach_router("MR-b", lambda f: None)
        assert not net.send(BackboneFrame("MR-a", "MR-b", b"x"))

    def test_attach_unknown_node_rejected(self):
        _loop, net = self._net()
        with pytest.raises(SimulationError):
            net.attach_router("MR-z", lambda f: None)

    def test_latency_scales_with_hops(self):
        loop, net = self._net()
        arrivals = {}
        net.attach_router("MR-b", lambda f: arrivals.__setitem__(
            "b", loop.now))
        net.attach_router("MR-c", lambda f: arrivals.__setitem__(
            "c", loop.now))
        net.send(BackboneFrame("MR-a", "MR-b", b"x"))
        net.send(BackboneFrame("MR-a", "MR-c", b"x"))
        loop.run_all()
        assert arrivals["c"] > arrivals["b"]


class TestDirectory:
    def test_publish_locate_withdraw(self):
        directory = UplinkDirectory()
        directory.publish(b"S1", "MR-1")
        assert directory.locate(b"S1") == "MR-1"
        directory.withdraw(b"S1")
        assert directory.locate(b"S1") is None
        assert len(directory) == 0


@pytest.fixture(scope="module")
def city():
    """A 2x2-router city with users attached to different routers."""
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=555,
        topology=TopologyConfig(area_side=1600.0, router_grid=2,
                                user_count=6, seed=555,
                                access_range=600.0),
        group_sizes=(("Company X", 8), ("University Z", 8)),
        beacon_interval=4.0))
    scenario.run(40.0)
    return scenario


class TestEndToEnd:
    def _two_users_on_distinct_routers(self, scenario):
        by_router = {}
        for user in scenario.sim_users.values():
            if user.state == "connected":
                by_router.setdefault(user.router_id, user)
        routers = sorted(by_router)
        if len(routers) < 2:
            pytest.skip("all users landed on one router")
        return by_router[routers[0]], by_router[routers[1]]

    def test_cross_router_user_messaging(self, city):
        sender, receiver = self._two_users_on_distinct_routers(city)
        assert sender.router_id != receiver.router_id
        sender.send_to_session(receiver.session.session_id,
                               b"hello across the backbone")
        city.run(5.0)
        assert receiver.metrics["data_received"] == 1
        src_session, payload = receiver.inbox[-1]
        assert payload == b"hello across the backbone"
        assert src_session == sender.session.session_id
        assert city.backbone.frames_forwarded >= 1

    def test_reply_path(self, city):
        sender, receiver = self._two_users_on_distinct_routers(city)
        sender.send_to_session(receiver.session.session_id, b"ping")
        city.run(5.0)
        src_session, _ = receiver.inbox[-1]
        receiver.send_to_session(src_session, b"pong")
        city.run(5.0)
        assert sender.inbox[-1][1] == b"pong"

    def test_same_router_forwarding_is_local(self, city):
        by_router = {}
        for user in city.sim_users.values():
            if user.state == "connected":
                by_router.setdefault(user.router_id, []).append(user)
        pair = next((users for users in by_router.values()
                     if len(users) >= 2), None)
        if pair is None:
            pytest.skip("no two users share a router")
        a, b = pair[0], pair[1]
        before = city.sim_routers[a.router_id].metrics["forwarded_local"]
        a.send_to_session(b.session.session_id, b"neighborly")
        city.run(5.0)
        assert (city.sim_routers[a.router_id].metrics["forwarded_local"]
                == before + 1)
        assert b.inbox[-1][1] == b"neighborly"

    def test_unknown_destination_counted(self, city):
        sender, _ = self._two_users_on_distinct_routers(city)
        router = city.sim_routers[sender.router_id]
        before = router.metrics["forward_failed"]
        sender.send_to_session(b"\x00" * 16, b"to nowhere")
        city.run(5.0)
        assert router.metrics["forward_failed"] == before + 1

    def test_identities_never_in_forwarding_state(self, city):
        """The directory and session tables hold anonymous handles."""
        rendered = repr(city.directory._locations)
        for user in city.deployment.users.values():
            assert user.identity.uid.hex() not in rendered
            assert user.identity.name not in rendered

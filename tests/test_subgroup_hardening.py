"""Small-subgroup injection attempts against protocol boundaries.

The supersingular curve's full group order is ``p + 1 = h * r`` with a
large cofactor ``h``; a point can satisfy the curve equation yet lie
outside the prime-order-r subgroup.  Every externally supplied group
element (T1/T2 in signatures, the DH values of beacons, requests, and
peer messages) must be validated, or an attacker could inject
off-subgroup points.
"""

import random

import pytest

from repro.core import groupsig
from repro.core.messages import AccessRequest, Beacon, PeerHello
from repro.errors import (
    AuthenticationError,
    InvalidSignature,
    ProtocolError,
)
from repro.pairing.curve import Point
from repro.pairing.group import G1Element


def off_subgroup_point(group, rng=None):
    """Find a curve point OUTSIDE the order-r subgroup."""
    rng = rng or random.Random(1717)
    curve = group.curve
    while True:
        x = rng.randrange(curve.p)
        try:
            point = curve.lift_x(x, y_parity=rng.randrange(2))
        except Exception:
            continue
        if not curve.in_subgroup(point):
            return G1Element(point, group)


class TestOffSubgroupPoints:
    def test_such_points_exist(self, group):
        """Sanity: the cofactor is nontrivial and findable."""
        rogue = off_subgroup_point(group)
        assert group.curve.is_on_curve(rogue.point)
        assert not group.curve.in_subgroup(rogue.point)

    def test_signature_with_off_subgroup_t1_rejected(self, gpk,
                                                     member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng)
        rogue = off_subgroup_point(gpk.group)
        bad = groupsig.GroupSignature(sig.r, rogue, sig.t2, sig.c,
                                      sig.s_alpha, sig.s_x, sig.s_delta)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"m", bad)

    def test_signature_with_off_subgroup_t2_rejected(self, gpk,
                                                     member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng)
        rogue = off_subgroup_point(gpk.group)
        bad = groupsig.GroupSignature(sig.r, sig.t1, rogue, sig.c,
                                      sig.s_alpha, sig.s_x, sig.s_delta)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"m", bad)


class TestProtocolBoundaries:
    def test_beacon_with_off_subgroup_dh_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        beacon = router.make_beacon()
        rogue = off_subgroup_point(deployment.group)
        # Re-sign so only the subgroup check can catch it.
        forged = Beacon(beacon.router_id, beacon.g, rogue, beacon.ts1,
                        b"", beacon.certificate, beacon.crl, beacon.url)
        forged = Beacon(forged.router_id, forged.g, rogue, forged.ts1,
                        router.keypair.sign(forged.signed_payload()),
                        forged.certificate, forged.crl, forged.url)
        with pytest.raises(ProtocolError):
            deployment.users["alice"].connect_to_router(forged)

    def test_request_with_off_subgroup_dh_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        rogue = off_subgroup_point(deployment.group)
        forged = AccessRequest(rogue, request.g_r_router, request.ts2,
                               request.group_signature)
        with pytest.raises(AuthenticationError):
            router.process_request(forged)

    def test_peer_hello_with_off_subgroup_dh_rejected(self,
                                                      fresh_deployment):
        deployment = fresh_deployment()
        beacon = deployment.routers["MR-1"].make_beacon()
        initiator = deployment.users["alice"].peer_engine()
        responder = deployment.users["bob"].peer_engine()
        hello, _ = initiator.initiate(beacon.g)
        rogue = off_subgroup_point(deployment.group)
        forged = PeerHello(hello.g, rogue, hello.ts1,
                           hello.group_signature)
        with pytest.raises(ProtocolError):
            responder.respond(forged, beacon.url)

    def test_legitimate_flows_unaffected(self, fresh_deployment):
        """Hardening must not break anything legitimate."""
        deployment = fresh_deployment()
        deployment.connect("alice", "MR-1")
        deployment.peer_connect("alice", "bob", "MR-1")

"""AES correctness against FIPS-197 / SP 800-38A vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.errors import ParameterError


class TestFips197Vectors:
    def test_aes128(self):
        cipher = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        out = cipher.encrypt_block(
            bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_aes192(self):
        cipher = AES(bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"))
        out = cipher.encrypt_block(
            bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")

    def test_aes256(self):
        cipher = AES(bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"))
        out = cipher.encrypt_block(
            bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert out == bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")

    def test_sp800_38a_aes128_ecb_first_block(self):
        cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        out = cipher.encrypt_block(
            bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"))
        assert out == bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")


class TestCtrMode:
    def test_sp800_38a_ctr_vector(self):
        cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        counter = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        plaintext = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51")
        expected = bytes.fromhex(
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff")
        assert cipher.ctr_xor(counter, plaintext) == expected

    def test_ctr_self_inverse(self):
        cipher = AES(b"k" * 16)
        nonce = b"n" * 16
        data = b"some session payload bytes"
        assert cipher.ctr_xor(nonce, cipher.ctr_xor(nonce, data)) == data

    def test_ctr_counter_wraps(self):
        cipher = AES(b"k" * 16)
        nonce = b"\xff" * 16
        # Two blocks force a counter increment past 2^128 - 1.
        out = cipher.ctr_keystream(nonce, 32)
        assert len(out) == 32
        assert out[:16] != out[16:]

    def test_ctr_bad_nonce_rejected(self):
        with pytest.raises(ParameterError):
            AES(b"k" * 16).ctr_xor(b"short", b"data")

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=25)
    def test_property_roundtrip(self, data):
        cipher = AES(b"p" * 16)
        nonce = b"q" * 16
        assert cipher.ctr_xor(nonce, cipher.ctr_xor(nonce, data)) == data


class TestKeyHandling:
    def test_bad_key_sizes_rejected(self):
        for size in (0, 8, 15, 17, 31, 33):
            with pytest.raises(ParameterError):
                AES(b"k" * size)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ParameterError):
            AES(b"k" * 16).encrypt_block(b"short")

    def test_different_keys_differ(self):
        block = b"b" * 16
        assert (AES(b"a" * 16).encrypt_block(block)
                != AES(b"b" * 16).encrypt_block(block))

"""Tests for the RSA-1024 baseline."""

import random

import pytest

from repro.errors import InvalidSignature, ParameterError
from repro.sig.rsa import rsa_generate


@pytest.fixture(scope="module")
def keypair():
    return rsa_generate(1024, rng=random.Random(99))


class TestRsa:
    def test_roundtrip(self, keypair):
        sig = keypair.sign(b"hello")
        assert keypair.public.verify(b"hello", sig)

    def test_signature_is_128_bytes(self, keypair):
        """The paper's comparison point: RSA-1024 = 128 bytes."""
        assert len(keypair.sign(b"x")) == 128

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"hello")
        assert not keypair.public.verify(b"hellO", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"hello"))
        sig[0] ^= 1
        assert not keypair.public.verify(b"hello", bytes(sig))

    def test_wrong_length_rejected(self, keypair):
        assert not keypair.public.verify(b"hello", b"\x01" * 64)

    def test_oversize_value_rejected(self, keypair):
        too_big = (keypair.public.n + 1).to_bytes(128, "big") \
            if keypair.public.n + 1 < (1 << 1024) else b"\xff" * 128
        assert not keypair.public.verify(b"hello", too_big)

    def test_require_valid_raises(self, keypair):
        with pytest.raises(InvalidSignature):
            keypair.public.require_valid(b"a", b"\x00" * 128)

    def test_modulus_bit_length(self, keypair):
        assert keypair.public.n.bit_length() == 1024

    def test_crt_consistency(self, keypair):
        """CRT signing must agree with the plain d-exponentiation."""
        message = b"crt-check"
        sig = int.from_bytes(keypair.sign(message), "big")
        from repro.sig.rsa import _emsa_pkcs1_v15
        em = int.from_bytes(
            _emsa_pkcs1_v15(message, keypair.public.modulus_bytes), "big")
        assert pow(sig, keypair.public.e, keypair.public.n) == em

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            rsa_generate(256)

    def test_reproducible_keygen(self):
        a = rsa_generate(512, rng=random.Random(3))
        b = rsa_generate(512, rng=random.Random(3))
        assert a.public.n == b.public.n

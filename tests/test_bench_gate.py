"""Unit tests for scripts/bench_gate.py (tolerance logic + exit codes).

The gate's compare logic is exercised on synthetic baselines; the
end-to-end path (actually re-running benches) runs in CI via
``bench_gate.py --smoke`` and is deliberately not repeated here.
"""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_gate",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "scripts", "bench_gate.py"))
bench_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_gate)


class TestCheckMetric:
    def test_exact_pass_and_fail(self):
        rule = {"kind": "exact"}
        assert bench_gate.check_metric("m", rule, 131, 131) is None
        assert "expected 131" in bench_gate.check_metric("m", rule, 131, 140)

    def test_exact_is_type_strict_enough_for_counts(self):
        rule = {"kind": "exact"}
        assert bench_gate.check_metric("m", rule, 3, 3.0) is None  # == holds

    def test_missing_fresh_value_fails(self):
        message = bench_gate.check_metric("m", {"kind": "exact"}, 5, None)
        assert "missing" in message

    def test_min_ratio(self):
        rule = {"kind": "min_ratio", "ratio": 0.5}
        assert bench_gate.check_metric("speedup", rule, 4.0, 2.1) is None
        assert bench_gate.check_metric("speedup", rule, 4.0, 1.9) is not None

    def test_max_ratio(self):
        rule = {"kind": "max_ratio", "ratio": 1.5}
        assert bench_gate.check_metric("lat", rule, 1.0, 1.4) is None
        assert bench_gate.check_metric("lat", rule, 1.0, 1.6) is not None

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            bench_gate.check_metric("m", {"kind": "median"}, 1, 1)

    def test_min_value_is_baseline_independent(self):
        rule = {"kind": "min_value", "value": 6.0}
        assert bench_gate.check_metric("s", rule, None, 6.2) is None
        message = bench_gate.check_metric("s", rule, None, 5.8)
        assert "below required 6" in message

    def test_min_value_slack_widens_the_floor(self):
        rule = {"kind": "min_value", "value": 6.0, "slack": 0.05}
        assert bench_gate.check_metric("s", rule, None, 5.75) is None
        assert bench_gate.check_metric("s", rule, None, 5.6) is not None


class TestCompare:
    BASE = {"values": {"bytes_M_2": 132, "speedup": 4.0, "note": "x"}}
    GATES = {"bytes_M_2": {"kind": "exact"},
             "speedup": {"kind": "min_ratio", "ratio": 0.5}}

    def test_all_pass(self):
        fresh = {"values": {"bytes_M_2": 132, "speedup": 3.0}}
        result = bench_gate.compare("X", self.BASE, fresh, self.GATES)
        assert result["ok"]
        assert sorted(result["checked"]) == ["bytes_M_2", "speedup"]
        assert result["failures"] == []

    def test_regression_reported(self):
        fresh = {"values": {"bytes_M_2": 140, "speedup": 3.0}}
        result = bench_gate.compare("X", self.BASE, fresh, self.GATES)
        assert not result["ok"]
        assert len(result["failures"]) == 1
        assert "bytes_M_2" in result["failures"][0]

    def test_ungated_metrics_are_informational(self):
        fresh = {"values": {"bytes_M_2": 132, "speedup": 3.0, "note": "y"}}
        result = bench_gate.compare("X", self.BASE, fresh, self.GATES)
        assert result["ok"]
        assert result["informational"]["note"] == {"baseline": "x",
                                                   "fresh": "y"}

    def test_gate_without_baseline_is_an_error(self):
        gates = dict(self.GATES, phantom={"kind": "exact"})
        fresh = {"values": {"bytes_M_2": 132, "speedup": 3.0}}
        result = bench_gate.compare("X", self.BASE, fresh, gates)
        assert not result["ok"]
        assert any("absent from baseline" in f for f in result["failures"])

    def test_min_value_gate_needs_no_baseline(self):
        """Absolute floors check the fresh run even without a baseline."""
        gates = {"speedup": {"kind": "min_value", "value": 1.0}}
        result = bench_gate.compare("X", {"values": {}},
                                    {"values": {"speedup": 1.02}}, gates)
        assert result["ok"] and result["checked"] == ["speedup"]
        result = bench_gate.compare("X", {"values": {}},
                                    {"values": {"speedup": 0.8}}, gates)
        assert not result["ok"]

    def test_conditional_gate_follows_fresh_host(self):
        gates = {"speedup_parallel": {
            "kind": "min_value", "metric": "speedup", "value": 2.0,
            "when": {"metric": "host_cores", "at_least": 4}}}
        # 1-core fresh run: the rule is skipped, not silently passed.
        one_core = {"values": {"speedup": 1.0, "host_cores": 1}}
        result = bench_gate.compare("X", {"values": {}}, one_core, gates)
        assert result["ok"]
        assert result["skipped"] == ["speedup_parallel"]
        assert result["checked"] == []
        # 8-core fresh run below the floor: enforced and failing.
        big = {"values": {"speedup": 1.4, "host_cores": 8}}
        result = bench_gate.compare("X", {"values": {}}, big, gates)
        assert not result["ok"]
        assert result["checked"] == ["speedup_parallel"]
        assert any("speedup_parallel" in f for f in result["failures"])
        # 8-core fresh run above the floor: enforced and passing.
        big["values"]["speedup"] = 2.3
        assert bench_gate.compare("X", {"values": {}}, big, gates)["ok"]

    def test_metric_override_keeps_metric_out_of_informational(self):
        gates = {"speedup_parallel": {
            "kind": "min_value", "metric": "speedup", "value": 2.0,
            "when": {"metric": "host_cores", "at_least": 4}}}
        fresh = {"values": {"speedup": 1.0, "host_cores": 1}}
        result = bench_gate.compare("X", {"values": {}}, fresh, gates)
        assert "speedup" not in result["informational"]

    def test_default_gates_cover_committed_baselines(self):
        """Every gated metric exists in its committed BENCH file."""
        for slug, gates in bench_gate.GATES.items():
            path = os.path.join(bench_gate.REPO_ROOT, f"BENCH_{slug}.json")
            with open(path) as handle:
                values = json.load(handle)["values"]
            metrics = {rule.get("metric", name)
                       for name, rule in gates.items()}
            missing = sorted(metrics - set(values))
            assert not missing, f"{slug}: gates without baseline {missing}"


class TestMainExitCodes:
    def _write(self, directory, slug, values):
        path = os.path.join(directory, f"BENCH_{slug}.json")
        with open(path, "w") as handle:
            json.dump({"experiment": slug, "tables": [],
                       "values": values}, handle)

    def _baseline_values(self, slug):
        path = os.path.join(bench_gate.REPO_ROOT, f"BENCH_{slug}.json")
        with open(path) as handle:
            return json.load(handle)["values"]

    def test_smoke_pass_with_identical_fresh_values(self, tmp_path):
        for slug in ("E4", "revocation_scale", "crash_recovery",
                     "health_detection"):
            self._write(str(tmp_path), slug, self._baseline_values(slug))
        out = tmp_path / "gate.json"
        code = bench_gate.main(["--smoke", "--fresh-dir", str(tmp_path),
                                "--json", str(out)])
        assert code == 0
        summary = json.loads(out.read_text())
        assert summary["ok"] and summary["mode"] == "smoke"

    def test_smoke_fails_on_regressed_metric(self, tmp_path):
        values = dict(self._baseline_values("E4"))
        values["bytes_M_2"] = values["bytes_M_2"] + 8   # "grew the wire"
        self._write(str(tmp_path), "E4", values)
        for slug in ("revocation_scale", "crash_recovery",
                     "health_detection"):
            self._write(str(tmp_path), slug, self._baseline_values(slug))
        out = tmp_path / "gate.json"
        code = bench_gate.main(["--smoke", "--fresh-dir", str(tmp_path),
                                "--json", str(out)])
        assert code != 0
        summary = json.loads(out.read_text())
        assert not summary["ok"]
        failures = summary["results"][0]["failures"]
        assert any("bytes_M_2" in f for f in failures)

    def test_missing_fresh_file_fails(self, tmp_path):
        code = bench_gate.main(["--smoke", "--fresh-dir", str(tmp_path)])
        assert code != 0

    def test_full_mode_checks_all_experiments(self, tmp_path):
        slugs = ("E4", "E2", "handshake_loss", "obs_overhead",
                 "batch_core", "parallel_verify", "revocation_scale",
                 "crash_recovery", "health_detection")
        for slug in slugs:
            self._write(str(tmp_path), slug, self._baseline_values(slug))
        out = tmp_path / "gate.json"
        code = bench_gate.main(["--fresh-dir", str(tmp_path),
                                "--json", str(out)])
        assert code == 0
        summary = json.loads(out.read_text())
        assert [r["experiment"] for r in summary["results"]] == list(slugs)

    def test_batch_core_floor_is_absolute(self, tmp_path):
        """A re-recorded slower baseline cannot lower the 6x bar."""
        values = dict(self._baseline_values("batch_core"))
        values["batch_speedup_16"] = 4.2
        result = bench_gate.compare("batch_core", {"values": values},
                                    {"values": values})
        assert not result["ok"]
        assert any("batch_speedup_16" in f for f in result["failures"])

    def test_loss_sweep_completion_counts_gated_exactly(self, tmp_path):
        values = dict(self._baseline_values("handshake_loss"))
        values["completed_loss15_retry_on"] -= 1   # "lost a handshake"
        self._write(str(tmp_path), "handshake_loss", values)
        result = bench_gate.compare(
            "handshake_loss",
            {"values": self._baseline_values("handshake_loss")},
            {"values": values})
        assert not result["ok"]
        assert any("completed_loss15_retry_on" in f
                   for f in result["failures"])

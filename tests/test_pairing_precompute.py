"""Randomized cross-checks of the precomputation layer.

Every fast path introduced by the engine refactor -- interleaved-wNAF
multi-scalar multiplication, the unitary final exponentiation, fixed-base
exponentiation tables, and fixed-argument pairing tables -- is compared
here against the naive reference computation on random inputs.  The
``TestSmoke`` class at the bottom is the subset ``scripts/tier1.sh`` runs
as its quick cross-check.
"""

import random

import pytest

from repro.pairing.curve import Curve, Point
from repro.pairing.params import PRESETS
from repro.pairing.precompute import FixedBaseTable, PairingTable
from repro.pairing.tate import final_exponentiation, miller_loop, tate_pairing


@pytest.fixture(scope="module")
def curve():
    return Curve(PRESETS["TEST"])


@pytest.fixture(scope="module")
def module_rng():
    return random.Random(0xEC0DE)


def _random_point(curve, rng):
    point = curve.random_point(rng)
    assert curve.in_subgroup(point)
    return point


class TestMultiMul:
    def test_matches_sum_of_single_muls(self, curve, module_rng):
        for trial in range(20):
            size = module_rng.randrange(1, 5)
            pairs = [(_random_point(curve, module_rng),
                      module_rng.randrange(-2 * curve.r, 2 * curve.r))
                     for _ in range(size)]
            expected = Point.infinity(curve.p)
            for point, scalar in pairs:
                expected = curve.add(expected,
                                     curve.mul(point, scalar % curve.r))
            assert curve.multi_mul(pairs) == expected, trial

    def test_empty_and_zero_terms(self, curve, module_rng):
        point = _random_point(curve, module_rng)
        assert curve.multi_mul([]).is_infinity()
        assert curve.multi_mul([(point, 0)]).is_infinity()
        assert curve.multi_mul(
            [(Point.infinity(curve.p), 5)]).is_infinity()

    def test_raw_keeps_unreduced_scalars(self, curve, module_rng):
        # multi_mul_raw must NOT reduce mod r: multiples of r vanish.
        point = _random_point(curve, module_rng)
        assert curve.multi_mul_raw([(point, 7 * curve.r)]).is_infinity()
        assert curve.multi_mul_raw(
            [(point, curve.r + 3)]) == curve.mul(point, 3)

    def test_cancelling_terms(self, curve, module_rng):
        point = _random_point(curve, module_rng)
        k = module_rng.randrange(1, curve.r)
        assert curve.multi_mul([(point, k), (point, -k)]).is_infinity()


class TestFinalExponentiation:
    def test_matches_direct_power(self, curve, module_rng):
        exponent = (curve.p * curve.p - 1) // curve.r
        for _ in range(5):
            p1 = _random_point(curve, module_rng)
            p2 = _random_point(curve, module_rng)
            raw = miller_loop(curve, p1, p2)
            assert final_exponentiation(curve, raw) == raw ** exponent


class TestFixedBaseTable:
    def test_matches_curve_mul(self, curve, module_rng):
        base = _random_point(curve, module_rng)
        table = FixedBaseTable(curve, base)
        for _ in range(20):
            k = module_rng.randrange(0, 3 * curve.r)
            assert table.mul(k) == curve.mul(base, k % curve.r)

    def test_edge_scalars(self, curve, module_rng):
        base = _random_point(curve, module_rng)
        table = FixedBaseTable(curve, base)
        assert table.mul(0).is_infinity()
        assert table.mul(curve.r).is_infinity()
        assert table.mul(1) == base
        assert table.mul(curve.r - 1) == curve.neg(base)

    def test_infinity_base(self, curve):
        table = FixedBaseTable(curve, Point.infinity(curve.p))
        assert table.mul(12345).is_infinity()


class TestPairingTable:
    def test_matches_tate_pairing(self, curve, module_rng):
        for trial in range(8):
            p1 = _random_point(curve, module_rng)
            p2 = _random_point(curve, module_rng)
            table = PairingTable(curve, p1)
            assert table.pairing(p2) == tate_pairing(curve, p1, p2), trial

    def test_symmetric_swap(self, curve, module_rng):
        # e(P, Q) == e(Q, P): a table for P evaluates pairings written
        # with P on either side -- the identity the engine's revocation
        # scan relies on.
        for _ in range(4):
            p1 = _random_point(curve, module_rng)
            p2 = _random_point(curve, module_rng)
            table = PairingTable(curve, p1)
            assert table.pairing(p2) == tate_pairing(curve, p2, p1)

    def test_degenerate_points(self, curve, module_rng):
        point = _random_point(curve, module_rng)
        infinity = Point.infinity(curve.p)
        assert PairingTable(curve, point).pairing(infinity).is_one()
        assert PairingTable(curve, infinity).pairing(point).is_one()

    def test_bilinear_through_table(self, curve, module_rng):
        point = _random_point(curve, module_rng)
        other = _random_point(curve, module_rng)
        a = module_rng.randrange(2, curve.r)
        table = PairingTable(curve, point)
        assert (table.pairing(curve.mul(other, a))
                == table.pairing(other) ** a)


class TestSmoke:
    """~10s subset exercised by scripts/tier1.sh."""

    def test_table_and_multiexp_agree_with_naive(self, curve):
        rng = random.Random(42)
        p1 = _random_point(curve, rng)
        p2 = _random_point(curve, rng)
        table = PairingTable(curve, p1)
        assert table.pairing(p2) == tate_pairing(curve, p1, p2)
        assert table.pairing(p2) == tate_pairing(curve, p2, p1)
        fixed = FixedBaseTable(curve, p1)
        k = rng.randrange(1, curve.r)
        assert fixed.mul(k) == curve.mul(p1, k)
        pairs = [(p1, rng.randrange(1, curve.r)),
                 (p2, rng.randrange(1, curve.r))]
        expected = curve.add(curve.mul(*pairs[0]), curve.mul(*pairs[1]))
        assert curve.multi_mul(pairs) == expected

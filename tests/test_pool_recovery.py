"""VerifierPool under chaos: dead and hung workers, requeue, respawn.

The acceptance bar (ISSUE): a worker-kill mid-batch must end with the
pool automatically respawning its workers and the batch's results --
outcomes *and* replayed operation counts -- identical to serial
``groupsig.verify_batch``.  The regression tests pin the satellite
fix: a timed-out chunk is absorbed exactly once (no orphaned futures,
no double-counted ops in the serial fallback).
"""

import dataclasses
import random
import signal

import pytest

from repro import instrument, obs
from repro.core import groupsig
from repro.core.verifier_pool import VerifierPool
from repro.faults import FaultInjector, FaultPlan, PoolFault

CHAOS_SEEDS = [101, 202, 303]


@pytest.fixture(scope="module")
def url_tokens(member_keys):
    return (groupsig.RevocationToken(member_keys["b2"].a),
            groupsig.RevocationToken(member_keys["a2"].a))


@pytest.fixture(scope="module")
def chaos_batch(gpk, member_keys):
    """Twelve items: index 3 revoked (a2), index 6 tampered, rest ok."""
    rng = random.Random(4242)
    signers = ["a1", "b2", "a1", "a2", "b2", "a1",
               "a1", "b2", "a1", "b2", "a1", "b2"]
    batch = []
    for index, name in enumerate(signers):
        message = b"chaos message %d" % index
        signature = groupsig.sign(gpk, member_keys[name], message, rng=rng)
        if index == 6:
            signature = dataclasses.replace(signature,
                                            s_x=signature.s_x + 1)
        batch.append((message, signature))
    return batch


def outcome_key(result):
    if result is None:
        return ("ok",)
    return (type(result).__name__, str(result),
            getattr(result, "token_index", None))


def serial_reference(gpk, url_tokens, batch):
    with instrument.count_operations() as ops:
        results = groupsig.verify_batch(gpk, batch, url=url_tokens)
    return [outcome_key(r) for r in results], ops.snapshot()


class TestWorkerKill:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_killed_workers_respawn_results_identical(
            self, seed, gpk, url_tokens, chaos_batch):
        """SIGKILL every worker mid-lifecycle via the fault injector:
        the pool requeues, respawns, and the batch is bit-identical to
        serial -- the headline acceptance criterion."""
        expected, expected_ops = serial_reference(
            gpk, url_tokens, chaos_batch)
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=10.0) as pool:
            assert pool.is_parallel
            injector = FaultInjector(FaultPlan(
                seed=seed, pool=[PoolFault(kind="kill_worker",
                                           count=2)]))
            injector.arm_pool(pool)
            assert injector.counts["kill_worker"] == 2
            with instrument.count_operations() as ops:
                results = pool.verify_batch(chaos_batch)
            assert [outcome_key(r) for r in results] == expected
            assert ops.snapshot() == expected_ops
            # Recovery actually ran: either the dead workers tripped a
            # chunk failure (requeue + respawn) or multiprocessing's
            # own reaper replaced them before we submitted; both end
            # with a live parallel pool.
            assert pool.is_parallel
            # And the pool still works afterwards.
            again = pool.verify_batch(chaos_batch)
            assert [outcome_key(r) for r in again] == expected

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_hung_worker_times_out_then_recovers(
            self, seed, gpk, url_tokens, chaos_batch):
        """A wedged worker (chaos hang) surfaces as a chunk timeout;
        the pool absorbs the chunk serially exactly once and respawns.

        One worker, so the hang deterministically blocks the queue --
        with spare workers a hang is just a lost core, which is the
        point of having spares."""
        expected, expected_ops = serial_reference(
            gpk, url_tokens, chaos_batch)
        with VerifierPool(gpk, url_tokens, processes=1, chunk_size=2,
                          task_timeout=1.0) as pool:
            injector = FaultInjector(FaultPlan(
                seed=seed, pool=[PoolFault(kind="hang_worker",
                                           hang_seconds=3600.0)]))
            injector.arm_pool(pool)
            assert injector.counts["hang_worker"] == 1
            with instrument.count_operations() as ops:
                results = pool.verify_batch(chaos_batch)
            assert [outcome_key(r) for r in results] == expected
            assert ops.snapshot() == expected_ops
            assert pool.serial_fallbacks >= 1
            assert pool.worker_restarts >= 1

    def test_restart_budget_bounds_respawns(self, gpk, url_tokens):
        pool = VerifierPool(gpk, url_tokens, processes=2,
                            max_worker_restarts=1)
        try:
            assert pool.respawn_workers()       # budget 1 -> ok
            assert pool.worker_restarts == 1
            assert not pool.respawn_workers()   # budget spent
            assert not pool.is_parallel         # permanently serial
        finally:
            pool.close()

    def test_serial_mode_has_no_workers_to_fault(self, gpk, url_tokens):
        with VerifierPool(gpk, url_tokens, processes=0) as pool:
            assert pool.worker_pids() == []
            assert not pool.inject_worker_hang(1.0)
            assert not pool.respawn_workers()


class TestTimeoutRegression:
    """Satellite fix: the per-chunk timeout path absorbs every chunk
    exactly once -- no orphaned futures, no double-counted ops."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_op_counts_pinned_after_timeout(self, seed, gpk, url_tokens,
                                            chaos_batch):
        """Replayed operation counts after a forced timeout equal the
        serial counts *exactly* -- if a timed-out chunk's late worker
        result were ever absorbed on top of its serial re-run, the
        pairing/exponentiation tallies would double for that chunk."""
        expected, expected_ops = serial_reference(
            gpk, url_tokens, chaos_batch)
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=0.0) as pool:
            # task_timeout=0 forces every collected chunk to "time
            # out" -- the hardest case: all chunks take the recovery
            # path, possibly several respawn cycles deep.
            with instrument.count_operations() as ops:
                results = pool.verify_batch(chaos_batch)
        assert [outcome_key(r) for r in results] == expected
        assert ops.snapshot() == expected_ops

    def test_recovery_counters_and_registry(self, gpk, url_tokens,
                                            chaos_batch):
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=0.0, max_worker_restarts=1) as pool, \
                obs.collecting() as registry:
            pool.verify_batch(chaos_batch)
            assert registry.counter_value("pool.chunk_failures_total") >= 1
            assert registry.counter_value("pool.worker_restarts") \
                == pool.worker_restarts
        assert pool.serial_fallbacks >= 1

    def test_dead_pool_mid_batch_still_identical(self, gpk, url_tokens,
                                                 chaos_batch):
        """Terminate the worker set behind the pool's back: submission
        fails, recovery drains serially, results stay identical."""
        expected, expected_ops = serial_reference(
            gpk, url_tokens, chaos_batch)
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=5.0,
                          max_worker_restarts=0) as pool:
            pool._pool.terminate()
            pool._pool.join()
            with instrument.count_operations() as ops:
                results = pool.verify_batch(chaos_batch)
        assert [outcome_key(r) for r in results] == expected
        assert ops.snapshot() == expected_ops


class TestRespawnBackoff:
    """Satellite: capped backoff between respawns of one submission.

    A crash-looping worker set (every chunk "times out" instantly)
    must walk through its ``max_worker_restarts`` budget -- first
    respawn immediate, later ones delayed on a doubling, capped
    schedule -- instead of spinning through spawn/kill cycles, and
    still deliver serial-identical results.
    """

    def test_crash_loop_exhausts_budget_with_backoff(
            self, gpk, url_tokens, chaos_batch):
        expected, expected_ops = serial_reference(
            gpk, url_tokens, chaos_batch)
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=0.0, max_worker_restarts=2,
                          respawn_backoff=0.01,
                          max_respawn_backoff=0.04) as pool, \
                obs.collecting() as registry:
            with instrument.count_operations() as ops:
                results = pool.verify_batch(chaos_batch)
            assert registry.counter_value(
                "pool.respawn_backoffs_total") == 1
        assert [outcome_key(r) for r in results] == expected
        assert ops.snapshot() == expected_ops
        # Budget exhausted exactly, never exceeded, and the delays
        # followed the schedule: respawn 1 free, respawn 2 backed off.
        assert pool.worker_restarts == 2
        assert not pool.is_parallel
        assert pool.respawn_delays == [0.0, 0.01]

    def test_backoff_schedule_doubles_and_caps(self, gpk, url_tokens):
        pool = VerifierPool(gpk, url_tokens, processes=0,
                            respawn_backoff=0.05,
                            max_respawn_backoff=0.2)
        try:
            delays = [pool._next_respawn_delay() for _ in range(5)]
            assert delays == [0.0, 0.05, 0.1, 0.2, 0.2]
            # verify_batch resets the schedule per submission, so a
            # healthy batch is never taxed for an earlier sick one.
            pool._batch_respawns = 0
            assert pool._next_respawn_delay() == 0.0
        finally:
            pool.close()

    def test_zero_backoff_disables_delays(self, gpk, url_tokens,
                                          chaos_batch):
        with VerifierPool(gpk, url_tokens, processes=2, chunk_size=2,
                          task_timeout=0.0, max_worker_restarts=1,
                          respawn_backoff=0.0) as pool:
            pool.verify_batch(chaos_batch)
        assert all(d == 0.0 for d in pool.respawn_delays)

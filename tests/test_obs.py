"""Unit tests for the observability layer (repro.obs).

Covers the registry primitives (counters, gauges, fixed-bucket
histograms, timers, spans), snapshot merging across threads, the
ambient install/collecting discipline, and both exporters.  The
integration half -- metrics flowing out of the instrumented crypto and
protocol paths -- lives in test_obs_integration.py.
"""

import json
import math
import threading

import pytest

from repro import obs
from repro.obs.registry import Histogram


class ManualTicker:
    """Deterministic clock: every call advances by ``step``."""

    def __init__(self, start=0.0, step=1.0):
        self.value = start
        self.step = step

    def __call__(self):
        current = self.value
        self.value += self.step
        return current


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        # bisect_left: a value equal to a bound lands IN that bound's
        # bucket; the first strictly greater value spills to the next.
        h.observe(1.0)
        h.observe(1.0000001)
        h.observe(2.0)
        h.observe(4.0)
        h.observe(4.0000001)   # overflow bucket
        assert h.counts == [1, 2, 1, 1]
        assert h.count == 5

    def test_underflow_lands_in_first_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(-5.0)
        h.observe(0.0)
        assert h.counts == [2, 0, 0]

    def test_sidecars(self):
        h = Histogram(bounds=(1.0,))
        for v in (0.5, 3.0, 1.5):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.0)
        assert snap["min"] == 0.5 and snap["max"] == 3.0

    def test_empty_snapshot_has_null_min_max(self):
        snap = Histogram(bounds=(1.0,)).snapshot()
        assert snap["min"] is None and snap["max"] is None
        assert snap["count"] == 0

    def test_bounds_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_merge_bucketwise(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5 and a.max == 9.0

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_default_buckets_cover_sub_ms_to_ten_seconds(self):
        bounds = obs.DEFAULT_LATENCY_BUCKETS
        assert bounds[0] <= 0.0001 and bounds[-1] >= 10.0
        assert list(bounds) == sorted(set(bounds))


class TestRegistry:
    def test_counters_accumulate(self):
        reg = obs.MetricsRegistry()
        reg.counter("x")
        reg.counter("x", 4)
        assert reg.counter_value("x") == 5
        assert reg.counter_value("absent") == 0

    def test_gauges_last_write_wins(self):
        reg = obs.MetricsRegistry()
        reg.gauge("load", 1.0)
        reg.gauge("load", 7.0)
        assert reg.gauge_value("load") == 7.0
        assert reg.gauge_value("absent") is None

    def test_timer_uses_injected_clock(self):
        reg = obs.MetricsRegistry(clock=ManualTicker(step=2.5))
        with reg.timer("op_seconds"):
            pass
        snap = reg.histogram_snapshot("op_seconds")
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(2.5)

    def test_clock_accepts_dot_now_objects(self):
        class FakeClock:
            def now(self):
                return 42.0
        reg = obs.MetricsRegistry(clock=FakeClock())
        assert reg.clock() == 42.0

    def test_clock_rejects_junk(self):
        with pytest.raises(TypeError):
            obs.MetricsRegistry(clock=object())

    def test_cross_thread_updates_are_complete(self):
        reg = obs.MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("hits")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == 4000
        assert reg.histogram_snapshot("lat")["count"] == 4000

    def test_merge_snapshots(self):
        a = obs.MetricsRegistry(clock=ManualTicker())
        b = obs.MetricsRegistry(clock=ManualTicker())
        a.counter("n", 2)
        b.counter("n", 3)
        a.observe("lat", 0.5)
        b.observe("lat", 1.5)
        b.gauge("level", 9.0)
        with b.span("child"):
            pass
        merged = obs.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.counter_value("n") == 5
        assert merged.gauge_value("level") == 9.0
        assert merged.histogram_snapshot("lat")["count"] == 2
        assert [s.name for s in merged.spans()] == ["child"]


class TestSpans:
    def test_parent_linkage_and_attrs(self):
        reg = obs.MetricsRegistry(clock=ManualTicker())
        with reg.span("outer", preset="TEST"):
            with reg.span("inner", n=1):
                pass
        inner, outer = reg.spans()   # inner closes first
        assert inner.name == "inner" and inner.parent == "outer"
        assert outer.parent is None
        assert dict(inner.attrs) == {"n": "1"}
        assert dict(outer.attrs) == {"preset": "TEST"}

    def test_span_durations_from_clock(self):
        reg = obs.MetricsRegistry(clock=ManualTicker(step=1.0))
        with reg.span("timed"):
            pass
        (record,) = reg.spans()
        assert record.duration == pytest.approx(1.0)

    def test_bounded_log_counts_drops(self):
        reg = obs.MetricsRegistry(max_spans=2)
        for i in range(5):
            with reg.span(f"s{i}"):
                pass
        snap = reg.snapshot()["spans"]
        assert len(snap["records"]) == 2
        assert snap["dropped"] == 3


class TestAmbient:
    def test_disabled_by_default(self):
        assert obs.active() is None
        # All module-level helpers must be harmless no-ops.
        obs.counter("ghost")
        obs.gauge("ghost", 1.0)
        obs.observe("ghost", 1.0)
        with obs.span("ghost"):
            pass
        with obs.timer("ghost"):
            pass
        assert obs.active() is None

    def test_collecting_installs_and_restores(self):
        with obs.collecting() as reg:
            assert obs.active() is reg
            obs.counter("seen")
        assert obs.active() is None
        assert reg.counter_value("seen") == 1

    def test_collecting_nests(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                obs.counter("k")
                assert obs.active() is inner
            assert obs.active() is outer
        assert inner.counter_value("k") == 1
        assert outer.counter_value("k") == 0

    def test_install_returns_previous(self):
        reg = obs.MetricsRegistry()
        assert obs.install(reg) is None
        try:
            assert obs.active() is reg
        finally:
            assert obs.install(None) is reg
        assert obs.active() is None


class TestExporters:
    def _snapshot(self):
        reg = obs.MetricsRegistry(clock=ManualTicker())
        reg.counter("groupsig.sign_total", 3)
        reg.gauge("pool.serial_fallbacks", 1)
        reg.observe("groupsig.sign_seconds", 0.002,
                    buckets=(0.001, 0.01))
        reg.observe("groupsig.sign_seconds", 5.0)
        with reg.span("handshake", n=0):
            pass
        return reg.snapshot()

    def test_json_round_trips(self):
        data = json.loads(obs.to_json(self._snapshot()))
        assert data["counters"]["groupsig.sign_total"] == 3
        assert data["gauges"]["pool.serial_fallbacks"] == 1.0
        hist = data["histograms"]["groupsig.sign_seconds"]
        assert hist["counts"] == [0, 1, 1]
        assert data["spans"]["records"][0]["name"] == "handshake"

    def test_json_strips_non_finite(self):
        reg = obs.MetricsRegistry()
        reg.gauge("bad", math.nan)
        reg.gauge("worse", math.inf)
        data = json.loads(obs.to_json(reg.snapshot()))
        assert data["gauges"]["bad"] is None
        assert data["gauges"]["worse"] is None

    def test_prometheus_shape(self):
        text = obs.to_prometheus(self._snapshot())
        lines = text.splitlines()
        assert "repro_groupsig_sign_total 3" in text
        assert "repro_pool_serial_fallbacks 1.0" in text
        # Cumulative buckets: le="0.01" holds both earlier samples? No:
        # 0.002 <= 0.01, 5.0 overflows; cumulative 0.01 bucket is 1,
        # +Inf is the total count 2.
        assert any('le="0.01"' in l and l.endswith(" 1") for l in lines)
        assert any('le="+Inf"' in l and l.endswith(" 2") for l in lines)
        assert "repro_groupsig_sign_seconds_count 2" in text
        # Span aggregation.
        assert 'repro_span_total{name="handshake"} 1' in text

    def test_prometheus_sanitizes_names(self):
        reg = obs.MetricsRegistry()
        reg.counter("weird-name.with spaces", 1)
        text = obs.to_prometheus(reg.snapshot())
        assert "repro_weird_name_with_spaces 1" in text

    def test_unknown_report_format_rejected(self):
        from repro.obs.report import render_snapshot
        with pytest.raises(ValueError):
            render_snapshot({"counters": {}}, fmt="xml")

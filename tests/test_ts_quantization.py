"""Regression tests: wire millisecond quantization vs pending state.

``Writer.f64`` rounds timestamps to milliseconds, so a message's
timestamp changes (by < 1ms) when it crosses the wire.  Handshake state
that is later compared against wire-decoded timestamps must store the
quantized value: ``PeerAuthEngine.complete`` checks ``0 <= ts2 - ts1``,
and a raw local ``ts1`` with sub-millisecond residue can flip that
difference negative for a perfectly honest peer.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.messages import AccessRequest, Beacon, PeerHello, PeerResponse
from repro.core.wire import quantize_ts
from repro.sig.curves import SECP160R1

#: A clock reading with sub-millisecond residue that rounds *down* on
#: the wire: quantize_ts(100.0004) == 100.0 < 100.0004.
BOUNDARY = 100.0004


class TestPeerHandshakeBoundary:
    def test_user_user_handshake_across_the_wire(self, fresh_deployment):
        """The full M~.1 - M~.3 exchange, every message re-decoded from
        bytes, at a sub-millisecond clock reading.  Before the fix the
        initiator stored raw ts1 = 100.0004 and received wire ts2 =
        100.000, so ts2 - ts1 = -0.0004 tripped the window check."""
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        group = deployment.group
        beacon = deployment.routers["MR-1"].make_beacon()
        engine_i = deployment.users["alice"].peer_engine()
        engine_r = deployment.users["bob"].peer_engine()

        hello, pending_i = engine_i.initiate(beacon.g)
        hello_wire = PeerHello.decode(group, hello.encode())
        response, pending_r = engine_r.respond(hello_wire, beacon.url)
        response_wire = PeerResponse.decode(group, response.encode())
        confirm, session_i = engine_i.complete(pending_i, response_wire,
                                               beacon.url)
        session_r = engine_r.finalize(pending_r, confirm)
        assert session_i.session_id == session_r.session_id

    def test_pending_state_matches_wire(self, fresh_deployment):
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        beacon = deployment.routers["MR-1"].make_beacon()
        engine_i = deployment.users["alice"].peer_engine()
        hello, pending = engine_i.initiate(beacon.g)
        decoded = PeerHello.decode(deployment.group, hello.encode())
        assert pending.ts1 == decoded.ts1 == hello.ts1
        assert pending.ts1 == quantize_ts(BOUNDARY)

    def test_responder_pending_matches_wire(self, fresh_deployment):
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        beacon = deployment.routers["MR-1"].make_beacon()
        engine_i = deployment.users["alice"].peer_engine()
        engine_r = deployment.users["bob"].peer_engine()
        hello, _ = engine_i.initiate(beacon.g)
        response, pending_r = engine_r.respond(hello, beacon.url)
        decoded = PeerResponse.decode(deployment.group, response.encode())
        assert pending_r.ts2 == decoded.ts2 == response.ts2


class TestRouterHandshakeBoundary:
    def test_user_router_handshake_across_the_wire(self, fresh_deployment):
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        group = deployment.group
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]

        beacon = router.make_beacon()
        beacon_wire = Beacon.decode(group, SECP160R1, beacon.encode())
        request, pending = user.connect_to_router(beacon_wire)
        request_wire = AccessRequest.decode(group, request.encode())
        confirm, router_session = router.process_request(request_wire)
        user_session = user.complete_router_handshake(pending, confirm)
        assert user_session.session_id == router_session.session_id

    def test_beacon_ts1_is_wire_exact(self, fresh_deployment):
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        beacon = deployment.routers["MR-1"].make_beacon()
        decoded = Beacon.decode(deployment.group, SECP160R1,
                                beacon.encode())
        assert beacon.ts1 == decoded.ts1 == quantize_ts(BOUNDARY)

    def test_access_request_ts2_is_wire_exact(self, fresh_deployment):
        deployment = fresh_deployment(clock=ManualClock(BOUNDARY))
        router = deployment.routers["MR-1"]
        request, _ = deployment.users["alice"].connect_to_router(
            router.make_beacon())
        decoded = AccessRequest.decode(deployment.group, request.encode())
        assert request.ts2 == decoded.ts2 == quantize_ts(BOUNDARY)


class TestQuantizeHelper:
    @pytest.mark.parametrize("raw,expected", [
        (100.0004, 100.0),
        (100.0006, 100.001),
        (0.0, 0.0),
        (1_000_000.0, 1_000_000.0),
    ])
    def test_rounding(self, raw, expected):
        assert quantize_ts(raw) == expected

    def test_idempotent(self):
        assert quantize_ts(quantize_ts(123.4567)) == quantize_ts(123.4567)

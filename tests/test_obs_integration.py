"""Integration tests: metrics flowing out of the instrumented paths.

Verifies that the crypto engine, verifier pool, and protocol engines
actually report into an installed registry; that snapshots merge
across threads and real OS processes; and -- the acceptance bound for
this layer -- that the *disabled* path costs the sign+verify hot loop
under 3%.
"""

import dataclasses
import json
import multiprocessing
import random
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.core import groupsig
from repro.core.verifier_pool import VerifierPool
from repro.errors import InvalidSignature, RevokedKeyError
from repro.wmn.metrics import HandshakeStats, counters_to_registry


@pytest.fixture(autouse=True)
def _no_ambient_leak():
    """Every test starts and ends with collection disabled."""
    assert obs.active() is None
    yield
    obs.uninstall()


class TestGroupsigMetrics:
    def test_sign_and_accept_counters(self, gpk, member_keys):
        rng = random.Random(7)
        with obs.collecting() as reg:
            sig = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng)
            groupsig.verify(gpk, b"m", sig)
        assert reg.counter_value("groupsig.sign_total") == 1
        assert reg.counter_value("groupsig.verify_accept_total") == 1
        assert reg.histogram_snapshot("groupsig.sign_seconds")["count"] == 1
        assert reg.histogram_snapshot("groupsig.verify_seconds")["count"] == 1
        assert reg.histogram_snapshot("groupsig.spk_seconds")["count"] == 1

    def test_reject_paths_are_classified(self, gpk, member_keys):
        rng = random.Random(8)
        sig = groupsig.sign(gpk, member_keys["a2"], b"m", rng=rng)
        tampered = dataclasses.replace(sig, s_x=sig.s_x + 1)
        url = (groupsig.RevocationToken(member_keys["a2"].a),)
        with obs.collecting() as reg:
            with pytest.raises(InvalidSignature):
                groupsig.verify(gpk, b"m", tampered)
            with pytest.raises(RevokedKeyError):
                groupsig.verify(gpk, b"m", sig, url=url)
        assert reg.counter_value("groupsig.verify_reject_invalid_total") == 1
        assert reg.counter_value("groupsig.verify_reject_revoked_total") == 1
        # The revocation scan examined exactly one token (the hit).
        assert reg.counter_value("groupsig.scan_total") == 1
        assert reg.counter_value("groupsig.scan_tokens_total") == 1

    def test_engine_cache_hit_miss_counters(self, group):
        rng = random.Random(9)
        gpk, master = groupsig.keygen_master(group, rng)
        key = groupsig.issue_member_key(group, master, 1, (0, 0), rng)
        with obs.collecting() as reg:
            sig = groupsig.sign(gpk, key, b"m", rng=rng)
            groupsig.verify(gpk, b"m", sig)
            groupsig.verify(gpk, b"m", sig)
        assert reg.counter_value("engine.base_pairing_miss_total") == 1
        assert reg.counter_value("engine.base_pairing_hit_total") >= 1
        assert reg.counter_value("engine.table_build_total") >= 1


class TestPoolMetrics:
    def _batch(self, gpk, member_keys, n=5):
        rng = random.Random(31)
        return [(b"pm %d" % i,
                 groupsig.sign(gpk, member_keys["a1"], b"pm %d" % i,
                               rng=rng)) for i in range(n)]

    def test_serial_mode_chunk_metrics(self, gpk, member_keys):
        batch = self._batch(gpk, member_keys, n=5)
        with VerifierPool(gpk, processes=0, chunk_size=2) as pool:
            with obs.collecting() as reg:
                results = pool.verify_batch(batch)
        assert all(r is None for r in results)
        assert reg.counter_value("pool.batches_total") == 1
        assert reg.counter_value("pool.batch_items_total") == 5
        assert reg.counter_value("pool.chunks_serial_total") == 3
        assert reg.histogram_snapshot("pool.chunk_seconds")["count"] == 3
        assert reg.gauge_value("pool.serial_fallbacks") == 0

    def test_parallel_mode_chunk_metrics(self, gpk, member_keys):
        batch = self._batch(gpk, member_keys, n=4)
        with VerifierPool(gpk, processes=2, chunk_size=2) as pool:
            if not pool.is_parallel:
                pytest.skip("no multiprocessing on this host")
            with obs.collecting() as reg:
                results = pool.verify_batch(batch)
        assert all(r is None for r in results)
        assert reg.counter_value("pool.chunks_parallel_total") == 2
        assert reg.counter_value("pool.chunk_failures_total") == 0
        assert reg.histogram_snapshot("pool.batch_seconds")["count"] == 1

    def test_dead_pool_records_fallbacks(self, gpk, member_keys):
        # The pool self-heals: the first submit against the dead pool
        # falls back serially and triggers a respawn, after which the
        # remaining chunk runs on the fresh workers.
        batch = self._batch(gpk, member_keys, n=4)
        pool = VerifierPool(gpk, processes=2, chunk_size=2)
        if not pool.is_parallel:
            pytest.skip("no multiprocessing on this host")
        pool._pool.terminate()   # simulate worker death mid-run
        pool._pool.join()
        try:
            with obs.collecting() as reg:
                results = pool.verify_batch(batch)
        finally:
            pool.close()
        assert all(r is None for r in results)
        assert reg.counter_value("pool.chunks_fallback_total") == 1
        assert (reg.counter_value("pool.chunk_failures_total")
                + reg.counter_value("pool.submit_failures_total")) >= 1
        assert reg.counter_value("pool.worker_restarts") == 1
        assert reg.counter_value("pool.chunks_parallel_total") == 1
        assert reg.gauge_value("pool.serial_fallbacks") == 1


class TestHandshakeMetrics:
    def test_router_and_user_stage_metrics(self, fresh_deployment):
        deployment = fresh_deployment()
        with obs.collecting() as reg:
            deployment.connect("alice", "MR-1")
        assert reg.counter_value("router.requests_total") == 1
        assert reg.counter_value("router.accepted_total") == 1
        assert reg.counter_value("user.handshakes_completed_total") == 1
        for name in ("router.precheck_seconds", "router.verify_seconds",
                     "router.accept_seconds", "router.handshake_seconds",
                     "user.beacon_validate_seconds", "user.complete_seconds"):
            assert reg.histogram_snapshot(name)["count"] == 1, name

    def test_batch_path_metrics(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        requests = []
        for _ in range(3):
            beacon = router.make_beacon()
            request, _pending = (deployment.users["alice"]
                                 .connect_to_router(beacon))
            requests.append(request)
        with obs.collecting() as reg:
            outcomes = router.process_request_batch(requests)
        assert len(outcomes) == 3
        assert reg.counter_value("router.batch_requests_total") == 3
        assert reg.histogram_snapshot("router.batch_seconds")["count"] == 1

    def test_rejects_bump_labelled_counters(self, fresh_deployment):
        from repro.errors import ReplayError
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        beacon = router.make_beacon()
        request, _ = deployment.users["alice"].connect_to_router(beacon)
        stale = dataclasses.replace(request, ts2=request.ts2 - 1e6)
        with obs.collecting() as reg:
            with pytest.raises(ReplayError):
                router.process_request(stale)   # ts2 outside the window
        assert reg.counter_value("router.rejected_replay_total") == 1
        assert reg.counter_value("router.requests_total") == 1
        # Registry counters mirror the engine's own stats dict.
        assert router.stats["rejected_replay"] == 1


class TestWmnMetrics:
    def test_handshake_stats_publish(self):
        stats = HandshakeStats()
        stats.extend([0.1, 0.2, 0.3])
        reg = obs.MetricsRegistry()
        stats.publish(reg)
        snap = reg.histogram_snapshot("wmn.auth_delay_seconds")
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.6)

    def test_publish_without_registry_is_noop(self):
        HandshakeStats(samples=[1.0]).publish()   # no ambient installed

    def test_counters_to_registry_gauges(self):
        reg = obs.MetricsRegistry()
        counters_to_registry({"connected": 4, "data_sent": 9},
                             "wmn.user", reg)
        assert reg.gauge_value("wmn.user.connected") == 4.0
        # Re-publishing overwrites (gauge semantics), never doubles.
        counters_to_registry({"connected": 5}, "wmn.user", reg)
        assert reg.gauge_value("wmn.user.connected") == 5.0


class TestCrossProcessMerge:
    def test_fork_worker_snapshots_merge(self, gpk, member_keys):
        """Snapshots built in real child processes merge into one view."""
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        sig = groupsig.sign(gpk, member_keys["a1"], b"xp",
                            rng=random.Random(17))
        queue = context.Queue()

        def worker():
            with obs.collecting() as reg:
                groupsig.verify(gpk, b"xp", sig)
            queue.put(reg.snapshot())

        procs = [context.Process(target=worker) for _ in range(2)]
        for p in procs:
            p.start()
        snaps = [queue.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
        merged = obs.merge_snapshots(snaps)
        assert merged.counter_value("groupsig.verify_accept_total") == 2
        hist = merged.histogram_snapshot("groupsig.verify_seconds")
        assert hist["count"] == 2

    def test_subprocess_json_snapshot_merges(self, tmp_path):
        """A snapshot serialized by a separate interpreter merges back."""
        script = (
            "import json, sys\n"
            "from repro import obs\n"
            "with obs.collecting() as reg:\n"
            "    reg.counter('xp.jobs_total', 3)\n"
            "    reg.observe('xp.seconds', 0.01)\n"
            "print(json.dumps(reg.snapshot()))\n")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, check=True)
        merged = obs.merge_snapshots([json.loads(out.stdout)])
        assert merged.counter_value("xp.jobs_total") == 3


class _CallCountingRegistry(obs.MetricsRegistry):
    """Counts every update call: one call ~= one instrumented site hit."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def counter(self, name, amount=1):
        self.calls += 1
        super().counter(name, amount)

    def gauge(self, name, value):
        self.calls += 1
        super().gauge(name, value)

    def observe(self, name, value, buckets=None):
        self.calls += 1
        super().observe(name, value, buckets=buckets)

    def span(self, name, **attrs):
        self.calls += 1
        return super().span(name, **attrs)


class TestDisabledOverhead:
    def test_disabled_path_under_three_percent(self, gpk, member_keys):
        """Acceptance bound: hooks cost < 3% of sign+verify when off.

        A raw A/B wall-clock comparison of a few-ms op drowns in noise,
        so measure the factors instead: how many hook sites one
        sign+verify crosses (counted via an installed registry, with a
        3x safety factor for active()-only sites) and what one disabled
        hook costs (a timed obs.active() loop).  The instrument->span
        bridge added a second kind of disabled site -- every
        ``instrument.note`` now also loads ``_SPAN_SINK`` and checks it
        for ``None`` -- so the bound separately counts op-note sites
        and prices a full disabled ``note()`` call.  The products
        summed bound the disabled-path overhead with the bridge
        compiled in but collection off.
        """
        from repro import instrument

        rng = random.Random(23)
        key = member_keys["a1"]

        # Factor 1a: obs hook sites per op.
        counting = _CallCountingRegistry()
        with obs.collecting(counting):
            sig = groupsig.sign(gpk, key, b"oh", rng=rng)
            groupsig.verify(gpk, b"oh", sig)
        hooks_per_op = counting.calls * 3   # safety factor

        # Factor 1b: instrument.note sites per op (each one now also
        # runs the span-sink branch).
        with instrument.count_operations() as ops:
            sig = groupsig.sign(gpk, key, b"oh", rng=rng)
            groupsig.verify(gpk, b"oh", sig)
        notes_per_op = sum(ops.snapshot().values())

        # Factor 2a: one disabled obs hook (obs.active() + None check).
        assert obs.active() is None
        probe_rounds = 200_000
        start = time.perf_counter()
        for _ in range(probe_rounds):
            if obs.active() is not None:   # pragma: no cover
                raise AssertionError
        t_hook = (time.perf_counter() - start) / probe_rounds

        # Factor 2b: one fully-disabled note() -- thread-local counter
        # miss plus the _SPAN_SINK None check.
        assert instrument.current_counter() is None
        start = time.perf_counter()
        for _ in range(probe_rounds):
            instrument.note("exp")
        t_note = (time.perf_counter() - start) / probe_rounds

        # The op itself, uninstrumented, best of several runs.
        op_rounds = 5
        best = min(
            _timed_sign_verify(gpk, key, rng) for _ in range(op_rounds))

        overhead = hooks_per_op * t_hook + notes_per_op * t_note
        assert overhead < 0.03 * best, (
            f"disabled-path overhead {overhead * 1e6:.1f}us "
            f"({hooks_per_op} weighted hooks x {t_hook * 1e9:.0f}ns + "
            f"{notes_per_op} op notes x {t_note * 1e9:.0f}ns) "
            f"exceeds 3% of sign+verify ({best * 1e3:.2f}ms)")


def _timed_sign_verify(gpk, key, rng):
    start = time.perf_counter()
    sig = groupsig.sign(gpk, key, b"oh", rng=rng)
    groupsig.verify(gpk, b"oh", sig)
    return time.perf_counter() - start

"""Integration tests for simulator nodes over scenarios."""

import math

import pytest

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def small_scenario(**overrides):
    defaults = dict(
        preset="TEST", seed=3,
        topology=TopologyConfig(area_side=600.0, router_grid=1,
                                user_count=4, seed=3,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=5.0)
    defaults.update(overrides)
    return Scenario(ScenarioConfig(**defaults))


class TestScenarioConnectivity:
    def test_all_users_connect(self):
        scenario = small_scenario()
        scenario.run(40.0)
        assert scenario.connected_fraction() == 1.0

    def test_handshake_stats_populated(self):
        scenario = small_scenario()
        scenario.run(40.0)
        stats = scenario.handshake_stats()
        assert stats.count == 4
        assert stats.summary()["mean"] > 0

    def test_auth_delay_includes_crypto_costs(self):
        """The cost model's sign+check time lower-bounds auth delay."""
        scenario = small_scenario()
        scenario.run(40.0)
        cost = scenario.config.cost_model
        floor = cost.group_sign() + cost.beacon_check()
        for delay in scenario.handshake_stats().samples:
            assert delay >= floor * 0.99

    def test_router_metrics_consistent(self):
        scenario = small_scenario()
        scenario.run(40.0)
        metrics = scenario.router_metrics()
        assert metrics["handshakes_completed"] == 4
        assert metrics["handshakes_rejected"] == 0
        assert metrics["beacons_sent"] >= 7

    def test_data_traffic_flows(self):
        scenario = small_scenario(data_interval=5.0)
        scenario.run(60.0)
        metrics = scenario.router_metrics()
        assert metrics["data_delivered"] > 0
        assert metrics["data_rejected"] == 0
        assert (metrics["data_delivered"]
                == scenario.user_metrics()["data_sent"])


class TestTimeoutAndReconnect:
    def test_connect_timeout_returns_to_idle(self):
        """If M.3 never arrives the user gives up and retries."""
        scenario = small_scenario()
        # Sabotage: the router drops every request (queue_limit 0).
        router = next(iter(scenario.sim_routers.values()))
        router.queue_limit = 0
        for user in scenario.sim_users.values():
            user.connect_timeout = 10.0
        scenario.run(60.0)
        assert scenario.connected_fraction() == 0.0
        user_metrics = scenario.user_metrics()
        assert user_metrics["connect_timeouts"] >= 4
        assert user_metrics["connect_attempts"] > 4   # retried

    def test_periodic_reconnect(self):
        scenario = small_scenario()
        scenario.run(30.0)
        user = next(iter(scenario.sim_users.values()))
        assert user.state == "connected"
        user.disconnect()
        assert user.state == "idle"
        scenario.run(30.0)
        assert user.state == "connected"   # reconnected on next beacon


class TestQueueBehaviour:
    def test_queue_drops_counted(self):
        scenario = small_scenario()
        router = next(iter(scenario.sim_routers.values()))
        router.queue_limit = 1
        # Flood the queue faster than the CPU drains it.
        from repro.wmn.radio import Frame
        for user in scenario.sim_users.values():
            user.auto_connect = False
        for i in range(10):
            router.deliver(Frame("M.2", b"junk", src=f"x{i}",
                                 dst=router.node_id))
        assert router.metrics["requests_dropped_queue"] >= 8

    def test_malformed_request_cheaply_rejected(self):
        scenario = small_scenario()
        router = next(iter(scenario.sim_routers.values()))
        from repro.wmn.radio import Frame
        router.deliver(Frame("M.2", b"garbage-bytes", src="x",
                             dst=router.node_id))
        scenario.run(1.0)
        assert router.metrics["handshakes_rejected"] == 1


class TestOutOfRange:
    def test_far_user_never_connects_without_boost(self):
        scenario = small_scenario(
            topology=TopologyConfig(area_side=600.0, router_grid=1,
                                    user_count=2, seed=3,
                                    access_range=50.0))
        # Place one user far beyond even boosted range.
        far_user = list(scenario.sim_users.values())[0]
        far_user.position = (10_000.0, 10_000.0)
        far_user.boost_range = 10.0
        scenario.run(30.0)
        assert far_user.state != "connected"

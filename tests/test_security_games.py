"""Executable versions of the scheme's security-game arguments.

These are not reductions -- they are the operational checks a verifier
of the implementation can run: traceability (every coalition signature
opens to a coalition member), non-frameability (no signature ever
matches an innocent member's token), and key-binding (mix-and-match of
stolen key components yields nothing valid).
"""

import random

import pytest

from repro.core import groupsig
from repro.errors import InvalidSignature


@pytest.fixture(scope="module")
def arena(group):
    rng = random.Random(90210)
    gpk, master = groupsig.keygen_master(group, rng)
    keys = [groupsig.issue_member_key(group, master, 50 + i // 3,
                                      (i // 3, i % 3), rng)
            for i in range(6)]
    grt = [(groupsig.RevocationToken(key.a), position)
           for position, key in enumerate(keys)]
    return gpk, keys, grt


class TestTraceability:
    def test_every_signature_opens_to_its_signer(self, arena, rng):
        """Exhaustive over the issued keys: the audit never misses and
        never mis-attributes."""
        gpk, keys, grt = arena
        for position, key in enumerate(keys):
            message = b"trace-%d" % position
            signature = groupsig.sign(gpk, key, message, rng=rng)
            opened = groupsig.open_signature(gpk, message, signature, grt)
            assert opened == position

    def test_coalition_signatures_stay_inside_coalition(self, arena, rng):
        """A coalition holding keys {0, 2, 4} can only produce
        signatures opening to {0, 2, 4}."""
        gpk, keys, grt = arena
        coalition = [0, 2, 4]
        for member in coalition:
            signature = groupsig.sign(gpk, keys[member], b"coalition",
                                      rng=rng)
            opened = groupsig.open_signature(gpk, b"coalition",
                                             signature, grt)
            assert opened in coalition


class TestNonFrameability:
    def test_no_cross_matching_ever(self, arena, rng):
        """Full matrix: sig by key i matches token j iff i == j."""
        gpk, keys, _grt = arena
        signatures = [groupsig.sign(gpk, key, b"matrix", rng=rng)
                      for key in keys]
        for i, signature in enumerate(signatures):
            for j, key in enumerate(keys):
                token = groupsig.RevocationToken(key.a)
                matched = groupsig.signature_matches_token(
                    gpk, b"matrix", signature, token)
                assert matched == (i == j)

    def test_revoking_one_never_blocks_another(self, arena, rng):
        gpk, keys, _grt = arena
        url = [groupsig.RevocationToken(keys[0].a)]
        for key in keys[1:]:
            signature = groupsig.sign(gpk, key, b"innocent", rng=rng)
            groupsig.verify(gpk, b"innocent", signature, url=url)


class TestKeyBinding:
    """Stolen key *components* are useless without the matching set."""

    def test_foreign_a_with_own_exponents_fails(self, arena, rng):
        gpk, keys, _grt = arena
        frankenstein = groupsig.GroupPrivateKey(
            a=keys[1].a, grp=keys[0].grp, x=keys[0].x, index=(9, 9))
        signature = groupsig.sign(gpk, frankenstein, b"franken", rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"franken", signature)

    def test_own_a_with_foreign_x_fails(self, arena, rng):
        gpk, keys, _grt = arena
        frankenstein = groupsig.GroupPrivateKey(
            a=keys[0].a, grp=keys[0].grp, x=keys[1].x, index=(9, 9))
        signature = groupsig.sign(gpk, frankenstein, b"franken", rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"franken", signature)

    def test_wrong_group_component_fails(self, arena, rng):
        """Members of group A cannot masquerade as group B by swapping
        grp components -- the A value binds the whole sum."""
        gpk, keys, _grt = arena
        cross_group = groupsig.GroupPrivateKey(
            a=keys[0].a, grp=keys[3].grp, x=keys[0].x, index=(9, 9))
        signature = groupsig.sign(gpk, cross_group, b"franken", rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"franken", signature)

    def test_shifted_exponent_sum_fails(self, arena, rng):
        gpk, keys, _grt = arena
        shifted = groupsig.GroupPrivateKey(
            a=keys[0].a, grp=keys[0].grp, x=keys[0].x + 1, index=(9, 9))
        signature = groupsig.sign(gpk, shifted, b"franken", rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"franken", signature)


class TestRevokedStillAccountable:
    def test_revoked_key_signatures_still_open(self, arena, rng):
        """Revocation removes access, not accountability: a revoked
        key's (rejected) signatures still open to that key."""
        gpk, keys, grt = arena
        signature = groupsig.sign(gpk, keys[0], b"post-revocation",
                                  rng=rng)
        with pytest.raises(groupsig.RevokedKeyError):
            groupsig.verify(gpk, b"post-revocation", signature,
                            url=[groupsig.RevocationToken(keys[0].a)])
        opened = groupsig.open_signature(gpk, b"post-revocation",
                                         signature, grt)
        assert opened == 0

"""Tests for random-waypoint mobility."""

import random

from repro.wmn.mobility import RandomWaypoint
from repro.wmn.simclock import EventLoop


def make_walker(seed=1, speed=(1.0, 1.0), pause=0.0, area=100.0):
    loop = EventLoop()
    state = {"pos": (50.0, 50.0)}
    walker = RandomWaypoint(
        loop, area_side=area,
        get_position=lambda: state["pos"],
        set_position=lambda p: state.__setitem__("pos", p),
        speed_min=speed[0], speed_max=speed[1], pause=pause,
        tick=1.0, rng=random.Random(seed))
    return loop, state, walker


class TestRandomWaypoint:
    def test_position_changes_over_time(self):
        loop, state, walker = make_walker()
        start = state["pos"]
        walker.start()
        loop.run_until(30.0)
        assert state["pos"] != start

    def test_stays_inside_area(self):
        loop, state, walker = make_walker(seed=9, area=100.0)
        walker.start()
        positions = []
        for _ in range(200):
            loop.run_until(loop.now + 1.0)
            positions.append(state["pos"])
        for x, y in positions:
            assert -1e-9 <= x <= 100.0 and -1e-9 <= y <= 100.0

    def test_speed_bounds_respected(self):
        loop, state, walker = make_walker(speed=(2.0, 2.0), pause=0.0)
        walker.start()
        import math
        loop.run_until(1.0)
        previous = state["pos"]
        for _ in range(50):
            loop.run_until(loop.now + 1.0)
            step = math.dist(previous, state["pos"])
            previous = state["pos"]
            assert step <= 2.0 + 1e-6

    def test_distance_accumulates(self):
        loop, _state, walker = make_walker(pause=0.0)
        walker.start()
        loop.run_until(50.0)
        assert walker.distance_travelled > 10.0

    def test_pause_at_waypoints(self):
        """With an enormous pause, total travel is bounded by the first
        leg of the walk."""
        loop, _state, fast = make_walker(seed=3, pause=0.0)
        fast.start()
        loop.run_until(300.0)
        loop2, _state2, lazy = make_walker(seed=3, pause=1e9)
        lazy.start()
        loop2.run_until(300.0)
        assert lazy.distance_travelled <= fast.distance_travelled

    def test_deterministic(self):
        loop1, state1, w1 = make_walker(seed=7)
        w1.start()
        loop1.run_until(25.0)
        loop2, state2, w2 = make_walker(seed=7)
        w2.start()
        loop2.run_until(25.0)
        assert state1["pos"] == state2["pos"]

"""Shared fixtures.

Expensive artifacts (pairing groups, master keys, a fully enrolled
deployment) are session-scoped; tests must not mutate them.  Tests that
need mutation (revocation, list updates) build their own deployment via
the ``fresh_deployment`` factory.
"""

from __future__ import annotations

import random

import pytest

from repro.core import groupsig
from repro.core.deployment import Deployment
from repro.pairing import PairingGroup


@pytest.fixture(scope="session")
def group() -> PairingGroup:
    """The fast TEST-preset pairing group."""
    return PairingGroup("TEST")


@pytest.fixture(scope="session")
def scheme(group):
    """(gpk, master, {name: gsk}) with two user groups of two members."""
    rng = random.Random(20260706)
    gpk, master = groupsig.keygen_master(group, rng)
    grp_a = groupsig.random_group_id(group, rng)
    grp_b = groupsig.random_group_id(group, rng)
    keys = {
        "a1": groupsig.issue_member_key(group, master, grp_a, (1, 1), rng),
        "a2": groupsig.issue_member_key(group, master, grp_a, (1, 2), rng),
        "b1": groupsig.issue_member_key(group, master, grp_b, (2, 1), rng),
        "b2": groupsig.issue_member_key(group, master, grp_b, (2, 2), rng),
    }
    return gpk, master, keys


@pytest.fixture(scope="session")
def gpk(scheme):
    return scheme[0]


@pytest.fixture(scope="session")
def member_keys(scheme):
    return scheme[2]


@pytest.fixture(scope="session")
def deployment() -> Deployment:
    """A read-only fully-enrolled deployment (do not revoke in here)."""
    return Deployment.build(
        preset="TEST", seed=42,
        groups={"Company X": 4, "University Z": 4},
        users=[("alice", ["Company X", "University Z"]),
               ("bob", ["University Z"]),
               ("carol", ["Company X"])],
        routers=["MR-1", "MR-2"])


@pytest.fixture
def fresh_deployment():
    """Factory for deployments tests may freely mutate."""

    def build(**overrides) -> Deployment:
        defaults = dict(
            preset="TEST", seed=7,
            groups={"Company X": 4, "University Z": 4},
            users=[("alice", ["Company X"]), ("bob", ["University Z"])],
            routers=["MR-1"])
        defaults.update(overrides)
        return Deployment.build(**defaults)

    return build


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)

"""Exporter edge cases: label escaping, empty exports, JSONL rollups.

The Prometheus text exposition format requires backslash, double-quote,
and newline escaping inside label values; span names become the
``name`` label of the aggregated span series, so hostile or merely
unusual span names must not corrupt the exposition.  The rollup JSONL
format must round-trip exactly (the CI chaos job uploads it as an
artifact consumed by tooling).
"""

import math

from repro import obs
from repro.obs.export import _escape_label_value
from repro.obs.rollup import (
    TelemetryRollup,
    _quantile_from_buckets,
    read_jsonl,
    to_jsonl,
)


class TestLabelEscaping:
    def test_escape_rules(self):
        assert _escape_label_value('pla"in') == 'pla\\"in'
        assert _escape_label_value("back\\slash") == "back\\\\slash"
        assert _escape_label_value("new\nline") == "new\\nline"
        # Backslash escapes first, or the others double up.
        assert _escape_label_value('\\"') == '\\\\\\"'
        assert _escape_label_value("plain") == "plain"

    def test_span_name_with_quotes_and_newlines(self):
        reg = obs.MetricsRegistry()
        with reg.span('oddly "named"\nspan'):
            pass
        text = obs.to_prometheus(reg.snapshot())
        assert 'name="oddly \\"named\\"\\nspan"' in text
        # Every exposition line stays a single physical line.
        assert all(line.startswith(("#", "repro_"))
                   for line in text.strip().splitlines())

    def test_span_op_labels_escaped_and_summed(self):
        reg = obs.MetricsRegistry()
        with obs.collecting(reg):
            with reg.span("stage"):
                from repro import instrument
                instrument.note("pairing", 2)
            with reg.span("stage"):
                from repro import instrument
                instrument.note("pairing", 3)
        text = obs.to_prometheus(reg.snapshot())
        assert 'repro_span_ops_total{name="stage",op="pairing"} 5' in text
        assert 'repro_span_total{name="stage"} 2' in text


class TestEmptyExports:
    def test_empty_registry_prometheus(self):
        assert obs.to_prometheus(obs.MetricsRegistry().snapshot()) == ""

    def test_empty_snapshot_prometheus(self):
        assert obs.to_prometheus({}) == ""

    def test_empty_registry_json_round_trip(self):
        import json
        snapshot = obs.MetricsRegistry().snapshot()
        parsed = json.loads(obs.to_json(snapshot))
        assert parsed["counters"] == {}
        assert parsed["spans"] == {"records": [], "dropped": 0}


class TestRollupJsonl:
    def test_round_trip(self):
        clock = [0.0]
        reg = obs.MetricsRegistry(clock=lambda: clock[0])
        rollup = TelemetryRollup(reg)
        reg.counter("handshakes", 3)
        reg.observe("delay", 0.004)
        reg.gauge("connected", 0.5)
        clock[0] = 10.0
        rollup.roll(10.0)
        reg.counter("handshakes", 2)
        clock[0] = 20.0
        rollup.roll(20.0)
        windows = rollup.windows()
        assert read_jsonl(to_jsonl(windows)) == windows
        assert windows[0]["counters"] == {"handshakes": 3}
        assert windows[1]["counters"] == {"handshakes": 2}
        # Quiet metrics are omitted from later windows.
        assert "delay" not in windows[1]["histograms"]
        assert windows[0]["histograms"]["delay"]["count"] == 1

    def test_read_jsonl_ignores_blank_lines(self):
        assert read_jsonl("\n\n") == []
        assert read_jsonl('{"a": 1}\n\n{"b": 2}\n') == [{"a": 1}, {"b": 2}]

    def test_retention_bound_counts_drops(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg, max_windows=2)
        for t in range(4):
            reg.counter("c")
            rollup.roll(float(t))
        assert rollup.dropped == 2
        assert [w["index"] for w in rollup.windows()] == [2, 3]

    def test_quantile_from_buckets(self):
        bounds = [0.001, 0.01, 0.1]
        # 2 samples <= 1ms, 1 sample in the overflow bucket.
        counts = [2, 0, 0, 1]
        assert _quantile_from_buckets(bounds, counts, 0.5) == 0.001
        # Overflow samples report the last finite bound.
        assert _quantile_from_buckets(bounds, counts, 0.99) == 0.1
        assert _quantile_from_buckets(bounds, [0, 0, 0, 0], 0.5) is None

    def test_percentiles_are_finite_json(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg)
        reg.observe("lat", 1e9)   # overflow bucket
        window = rollup.roll(0.0)
        p99 = window["histograms"]["lat"]["p99"]
        assert p99 is not None and math.isfinite(p99)
        assert read_jsonl(to_jsonl([window])) == [window]

"""Audit and law-authority tracing (Section IV.D)."""

import pytest

from repro.core.audit import NetworkLog, audit_by_session
from repro.errors import AuditError


class TestNoAudit:
    def test_audit_reveals_group_only(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1",
                                             context="Company X")
        result = audit_by_session(deployment.operator,
                                  deployment.network_log,
                                  user_session.session_id)
        assert result.group_name == "Company X"
        # Nothing about alice herself in the result.
        rendered = result.describe()
        assert "alice" not in rendered
        assert deployment.users["alice"].identity.uid.hex() not in rendered

    def test_audit_respects_signing_context(self, fresh_deployment):
        """Signing under a different role attributes a different group."""
        deployment = fresh_deployment(
            users=[("alice", ["Company X", "University Z"])])
        s1, _ = deployment.connect("alice", "MR-1", context="Company X")
        s2, _ = deployment.connect("alice", "MR-1",
                                   context="University Z")
        r1 = audit_by_session(deployment.operator, deployment.network_log,
                              s1.session_id)
        r2 = audit_by_session(deployment.operator, deployment.network_log,
                              s2.session_id)
        assert r1.group_name == "Company X"
        assert r2.group_name == "University Z"

    def test_unknown_session_raises(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(AuditError):
            audit_by_session(deployment.operator, deployment.network_log,
                             b"\x00" * 16)

    def test_audit_of_every_logged_session(self, fresh_deployment):
        deployment = fresh_deployment()
        sessions = [deployment.connect("alice", "MR-1")[0]
                    for _ in range(3)]
        for session in sessions:
            result = audit_by_session(deployment.operator,
                                      deployment.network_log,
                                      session.session_id)
            assert result.group_name == "Company X"


class TestLawAuthorityTrace:
    def test_full_trace_reveals_identity(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("bob", "MR-1")
        result = deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            user_session.session_id)
        assert result.identity.name == "bob"
        assert result.audit.group_name == "University Z"
        assert result.receipt_backed

    def test_trace_recorded_in_case_file(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1")
        deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            user_session.session_id)
        assert len(deployment.law_authority.case_file) == 1

    def test_trace_needs_the_gm(self, fresh_deployment):
        """NO alone cannot produce an identity: without GM_i the trace
        fails -- the paper's joint-effort requirement."""
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1")
        with pytest.raises(AuditError):
            deployment.law_authority.trace_session(
                deployment.operator, deployment.network_log,
                {},   # no group managers cooperate
                user_session.session_id)

    def test_trace_describe_mentions_receipt(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1")
        result = deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            user_session.session_id)
        assert "receipt" in result.describe()


class TestNonFrameability:
    def test_audit_never_blames_non_signer(self, fresh_deployment):
        """Eq.3 matches exactly one token; other members' tokens never
        match, so no innocent member can be framed by the audit."""
        from repro.core import groupsig
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1",
                                             context="Company X")
        entry = deployment.network_log.find(user_session.session_id)
        gpk = deployment.operator.gpk
        alice_token = groupsig.RevocationToken(
            deployment.users["alice"].credentials["Company X"].a)
        bob_token = groupsig.RevocationToken(
            deployment.users["bob"].credentials["University Z"].a)
        assert groupsig.signature_matches_token(
            gpk, entry.signed_payload, entry.group_signature, alice_token)
        assert not groupsig.signature_matches_token(
            gpk, entry.signed_payload, entry.group_signature, bob_token)

    def test_gm_cannot_identify_unassigned_index(self, fresh_deployment):
        deployment = fresh_deployment()
        gm = deployment.gms["Company X"]
        with pytest.raises(AuditError):
            gm.identify((1, 999))


class TestNetworkLog:
    def test_ingest_and_find(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1")
        log = NetworkLog()
        log.ingest(deployment.routers["MR-1"].auth_log)
        assert len(log) == 1
        assert log.find(user_session.session_id).router_id == "MR-1"

    def test_reingest_idempotent(self, fresh_deployment):
        deployment = fresh_deployment()
        deployment.connect("alice", "MR-1")
        log = NetworkLog()
        entries = deployment.routers["MR-1"].auth_log
        log.ingest(entries)
        log.ingest(entries)
        assert len(log) == 1

"""Tests for the operation-count instrumentation."""

import threading

from repro import instrument


class TestCounter:
    def test_counts_accumulate(self):
        with instrument.count_operations() as ops:
            instrument.note("exp")
            instrument.note("exp", 2)
            instrument.note("pairing")
        assert ops.total("exp") == 3
        assert ops.total("pairing") == 1
        assert ops.total("never") == 0

    def test_paper_style_exponentiations(self):
        with instrument.count_operations() as ops:
            instrument.note("exp", 6)
            instrument.note("psi", 2)
        assert ops.exponentiations() == 8
        assert ops.pairings() == 0

    def test_noop_without_counter(self):
        # Must not raise or record anywhere.
        instrument.note("exp")
        assert instrument.current_counter() is None

    def test_nesting_isolates_inner(self):
        with instrument.count_operations() as outer:
            instrument.note("exp")
            with instrument.count_operations() as inner:
                instrument.note("exp", 5)
            instrument.note("exp")
        assert inner.total("exp") == 5
        assert outer.total("exp") == 2

    def test_snapshot_is_a_copy(self):
        with instrument.count_operations() as ops:
            instrument.note("exp")
            snap = ops.snapshot()
            instrument.note("exp")
        assert snap["exp"] == 1
        assert ops.total("exp") == 2

    def test_thread_isolation(self):
        seen = {}

        def worker():
            with instrument.count_operations() as ops:
                instrument.note("pairing", 7)
                seen["worker"] = ops.total("pairing")

        with instrument.count_operations() as main_ops:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            instrument.note("pairing")
        assert seen["worker"] == 7
        assert main_ops.total("pairing") == 1

    def test_counter_restored_after_exception(self):
        try:
            with instrument.count_operations():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert instrument.current_counter() is None

"""Unit tests for repro.mathx.primes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mathx import is_probable_prime, next_prime, random_prime, small_factors

KNOWN_PRIMES = [2, 3, 5, 7, 97, 104729, 2 ** 61 - 1,
                0xF06D3FEF701966A1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 100, 561, 41041,        # Carmichaels too
                    2 ** 61 - 3, 6601, 8911]


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_primes_accepted(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    def test_deterministic_with_rng(self):
        rng1 = random.Random(5)
        rng2 = random.Random(5)
        n = 0x9AA4B64091B1078E926BAEAFE79A27E68AB12C33
        assert (is_probable_prime(n, rng=rng1)
                == is_probable_prime(n, rng=rng2))

    @given(st.integers(min_value=4, max_value=10_000))
    @settings(max_examples=100)
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n ** 0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestRandomPrime:
    def test_bit_length(self):
        rng = random.Random(1)
        for bits in (8, 16, 64, 128):
            p = random_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_congruence_constraint(self):
        rng = random.Random(2)
        p = random_prime(64, rng=rng, congruence=(3, 4))
        assert p % 4 == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_prime(1)

    def test_reproducible(self):
        assert (random_prime(32, rng=random.Random(9))
                == random_prime(32, rng=random.Random(9)))


class TestNextPrime:
    def test_small_cases(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_result_exceeds_input(self):
        for n in (100, 1000, 99991):
            p = next_prime(n)
            assert p > n and is_probable_prime(p)


class TestSmallFactors:
    def test_factors_found(self):
        assert small_factors(2 * 2 * 3 * 7) == [2, 2, 3, 7]

    def test_prime_has_no_small_factors(self):
        assert small_factors(104729, bound=100) == []

    def test_multiplicity(self):
        assert small_factors(8) == [2, 2, 2]

"""Rollup contracts: quantile overflow, empty windows, retention,
and bit-identical telemetry JSONL replay under the chaos seeds.

``_quantile_from_buckets`` reports bucket-resolution estimates; the
pinned behaviour (also documented in the function docstring) is that
samples landing beyond the last finite bucket bound report *that last
bound* -- never ``inf``, ``None``, or an index error -- even when the
whole window landed in the overflow bucket.

``Scenario.telemetry_jsonl()`` is a CI artifact: it must round-trip
exactly through ``read_jsonl`` and replay bit-identically for a given
chaos seed, or the chaos job's replay-identity verdict means nothing.
"""

import math

import pytest

from repro import obs
from repro.obs.rollup import (
    TelemetryRollup,
    _quantile_from_buckets,
    read_jsonl,
    to_jsonl,
)

CHAOS_SEEDS = (101, 202, 303)


class TestQuantileOverflow:
    BOUNDS = [0.001, 0.01, 0.1]

    def test_all_samples_in_overflow_report_last_finite_bound(self):
        # Every sample beyond the last bound: all quantiles pin to the
        # last *finite* bound (0.1), not inf and not an index error.
        counts = [0, 0, 0, 7]
        for q in (0.5, 0.95, 0.99):
            assert _quantile_from_buckets(self.BOUNDS, counts, q) == 0.1

    def test_mixed_overflow_keeps_low_quantiles_exact(self):
        counts = [6, 0, 0, 4]
        assert _quantile_from_buckets(self.BOUNDS, counts, 0.5) == 0.001
        assert _quantile_from_buckets(self.BOUNDS, counts, 0.99) == 0.1

    def test_empty_counts_is_none(self):
        assert _quantile_from_buckets(self.BOUNDS, [0, 0, 0, 0],
                                      0.5) is None

    def test_overflow_window_round_trips_as_finite_json(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg)
        reg.observe("lat", 1e12)
        window = rollup.roll(0.0)
        for q in ("p50", "p95", "p99"):
            value = window["histograms"]["lat"][q]
            assert value is not None and math.isfinite(value)
        assert read_jsonl(to_jsonl([window])) == [window]


class TestWindowEdges:
    def test_empty_window_stays_small_and_round_trips(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg)
        window = rollup.roll(5.0)
        assert window["counters"] == {}
        assert window["histograms"] == {}
        assert window["index"] == 0 and window["t"] == 5.0
        assert read_jsonl(to_jsonl([window])) == [window]

    def test_dropped_counts_evictions_beyond_retention(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg, max_windows=3)
        for t in range(5):
            reg.counter("c")
            rollup.roll(float(t))
        assert rollup.dropped == 2
        assert [w["index"] for w in rollup.windows()] == [2, 3, 4]
        # Retained windows still carry per-window deltas, not totals.
        assert all(w["counters"] == {"c": 1} for w in rollup.windows())

    def test_next_index_tracks_upcoming_roll(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        rollup = TelemetryRollup(reg)
        assert rollup.next_index == 0
        rollup.roll(1.0)
        assert rollup.next_index == 1


class TestChaosTelemetryReplay:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_telemetry_jsonl_replays_bit_identically(self, seed):
        from repro.obs.report import collect_incident_metrics

        first, _ = collect_incident_metrics(seed=seed)
        second, _ = collect_incident_metrics(seed=seed)
        text = first.telemetry_jsonl()
        assert text == second.telemetry_jsonl()
        windows = read_jsonl(text)
        assert to_jsonl(windows) == text
        assert windows, "chaos scenario produced no telemetry windows"
        assert [w["index"] for w in windows] == list(range(len(windows)))

"""Tests for the PairingGroup facade (G1/G2/GT, psi, hashing, counting)."""

import random

import pytest

from repro import instrument
from repro.errors import EncodingError, ParameterError
from repro.pairing import PairingGroup
from repro.pairing.group import G1Element, G2Element


@pytest.fixture(scope="module")
def g():
    return PairingGroup("TEST")


class TestGenerators:
    def test_generators_not_identity(self, g):
        assert not g.g1.is_identity()
        assert not g.g2.is_identity()

    def test_g1_is_psi_of_g2(self, g):
        assert g.psi(g.g2, count=False) == g.g1

    def test_generators_deterministic(self):
        assert PairingGroup("TEST").g1 == PairingGroup("TEST").g1

    def test_pair_of_generators_nondegenerate(self, g):
        assert not g.pair(g.g1, g.g2).is_identity()


class TestElementAlgebra:
    def test_multiplicative_notation(self, g):
        a = g.g1 ** 3
        b = g.g1 ** 4
        assert a * b == g.g1 ** 7
        assert b / a == g.g1 ** 1

    def test_inverse(self, g):
        a = g.g1 ** 5
        assert (a * a.inverse()).is_identity()

    def test_exponent_reduced_mod_order(self, g):
        assert g.g1 ** (g.order + 3) == g.g1 ** 3

    def test_cross_group_operation_rejected(self, g):
        with pytest.raises(ParameterError):
            g.g1 * g.g2  # noqa: B018

    def test_gt_algebra(self, g):
        e = g.pair(g.g1, g.g2)
        assert (e ** 2) * e == e ** 3
        assert (e / e).is_identity()
        assert (e ** g.order).is_identity()

    def test_equality_distinguishes_types(self, g):
        assert G1Element(g.g1.point, g) != G2Element(g.g1.point, g)


class TestPairing:
    def test_bilinear_via_facade(self, g):
        rng = random.Random(8)
        a, b = g.random_scalar(rng), g.random_scalar(rng)
        assert (g.pair(g.g1 ** a, g.g2 ** b)
                == g.pair(g.g1, g.g2) ** (a * b))

    def test_psi_compatibility(self, g):
        """e(psi(Q), R) is symmetric in this Type-1 setting."""
        u = g.hash_to_g2(b"u")
        v = g.hash_to_g2(b"v")
        assert (g.pair(g.psi(u, count=False), v)
                == g.pair(g.psi(v, count=False), u))


class TestHashing:
    def test_hash_to_g1_deterministic(self, g):
        assert g.hash_to_g1(b"x") == g.hash_to_g1(b"x")

    def test_hash_to_g1_distinct(self, g):
        assert g.hash_to_g1(b"x") != g.hash_to_g1(b"y")

    def test_h0_returns_pair(self, g):
        u, v = g.hash_h0(b"ctx")
        assert u != v
        assert not u.is_identity() and not v.is_identity()

    def test_hash_injective_framing(self, g):
        """Length-prefixing prevents concatenation collisions."""
        assert g.hash_to_g1(b"ab", b"c") != g.hash_to_g1(b"a", b"bc")

    def test_hash_to_scalar_in_range(self, g):
        for i in range(10):
            s = g.hash_to_scalar(b"msg%d" % i)
            assert 1 <= s < g.order

    def test_hashed_points_in_subgroup(self, g):
        p = g.hash_to_g1(b"subgroup-check")
        assert g.curve.in_subgroup(p.point)


class TestMultiExp:
    def test_matches_manual(self, g):
        a = g.g1 ** 2
        b = g.g1 ** 3
        assert g.multi_exp([(a, 5), (b, 7)]) == (a ** 5) * (b ** 7)

    def test_counts_as_one_exp(self, g):
        base = g.g1 ** 2
        with instrument.count_operations() as ops:
            g.multi_exp([(g.g1, 3), (base, 4)])
        assert ops.total("exp") == 1

    def test_empty_rejected(self, g):
        with pytest.raises(ParameterError):
            g.multi_exp([])

    def test_mixed_groups_rejected(self, g):
        with pytest.raises(ParameterError):
            g.multi_exp([(g.g1, 1), (g.g2, 1)])


class TestEncoding:
    def test_g1_roundtrip(self, g):
        p = g.g1 ** 9
        assert g.decode_g1(p.encode()) == p

    def test_scalar_roundtrip(self, g):
        assert g.decode_scalar(g.encode_scalar(12345)) == 12345

    def test_scalar_width_enforced(self, g):
        with pytest.raises(EncodingError):
            g.decode_scalar(b"\x01")

    def test_gt_encoding_fixed_width(self, g):
        e = g.pair(g.g1, g.g2)
        assert len(e.encode()) == g.params.gt_bytes


class TestScalars:
    def test_random_scalar_range(self, g):
        rng = random.Random(3)
        for _ in range(20):
            s = g.random_scalar(rng)
            assert 1 <= s < g.order

    def test_random_scalar_zero_allowed(self, g):
        rng = random.Random(4)
        values = {g.random_scalar(rng, nonzero=False) for _ in range(200)}
        assert all(0 <= v < g.order for v in values)

"""Experiments E2/E3: measured operation counts vs the paper's claims."""

import pytest

from repro.analysis.opreport import (
    expected_fast_verify_cost,
    expected_sign_cost,
    expected_verify_cost,
    measure_fast_verify_cost,
    measure_sign_cost,
    measure_verify_cost,
    url_scaling_table,
)
from repro.core.groupsig import RevocationToken


class TestSignCost:
    def test_measured_matches_paper(self, gpk, member_keys, rng):
        measured = measure_sign_cost(gpk, member_keys["a1"], rng=rng)
        expected = expected_sign_cost()
        assert measured.exponentiations == expected.exponentiations == 8
        assert measured.pairings == expected.pairings == 2
        assert measured.wall_seconds > 0


class TestVerifyCost:
    @pytest.mark.parametrize("url_size", [0, 2])
    def test_measured_matches_paper(self, gpk, member_keys, rng,
                                    url_size):
        decoys = [RevocationToken(member_keys[n].a)
                  for n in ("a2", "b1")][:url_size]
        measured = measure_verify_cost(gpk, member_keys["a1"],
                                       url=decoys, rng=rng)
        expected = expected_verify_cost(url_size)
        assert measured.exponentiations == expected.exponentiations == 6
        assert measured.pairings == expected.pairings

    def test_fast_variant_matches_paper(self, gpk, member_keys, rng):
        url = [RevocationToken(member_keys["a2"].a),
               RevocationToken(member_keys["b1"].a)]
        measured = measure_fast_verify_cost(gpk, member_keys["a1"], url,
                                            rng=rng)
        expected = expected_fast_verify_cost()
        assert measured.exponentiations == expected.exponentiations == 6
        assert measured.pairings == expected.pairings == 5


class TestUrlScaling:
    def test_table_rows(self, gpk, member_keys, rng):
        decoys = [RevocationToken(member_keys[n].a)
                  for n in ("a2", "b1", "b2")]
        rows = url_scaling_table(gpk, member_keys["a1"], decoys,
                                 url_sizes=[0, 1, 3], rng=rng)
        assert [row["url_size"] for row in rows] == [0, 1, 3]
        for row in rows:
            assert row["pairings_measured"] == row["pairings_expected"]
            assert (row["exponentiations_measured"]
                    == row["exponentiations_expected"])

    def test_linear_growth(self, gpk, member_keys, rng):
        decoys = [RevocationToken(member_keys[n].a)
                  for n in ("a2", "b1", "b2")]
        rows = url_scaling_table(gpk, member_keys["a1"], decoys,
                                 url_sizes=[0, 1, 2, 3], rng=rng)
        pairings = [row["pairings_measured"] for row in rows]
        deltas = [b - a for a, b in zip(pairings, pairings[1:])]
        assert all(delta == 2 for delta in deltas)

    def test_insufficient_decoys_rejected(self, gpk, member_keys, rng):
        with pytest.raises(ValueError):
            url_scaling_table(gpk, member_keys["a1"], [], url_sizes=[1],
                              rng=rng)

"""Property-based tests for the group signature (hypothesis)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import groupsig
from repro.errors import InvalidSignature


@pytest.fixture(scope="module")
def fast_scheme(group):
    rng = random.Random(31337)
    gpk, master = groupsig.keygen_master(group, rng)
    keys = [groupsig.issue_member_key(group, master, 100 + i // 2,
                                      (i // 2, i % 2), rng)
            for i in range(4)]
    return gpk, keys


class TestMessageProperties:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=8, deadline=None)
    def test_any_message_signs_and_verifies(self, fast_scheme, message):
        gpk, keys = fast_scheme
        rng = random.Random(message[:4] if message else b"\x00")
        sig = groupsig.sign(gpk, keys[0], message, rng=rng)
        groupsig.verify(gpk, message, sig)

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 63))
    @settings(max_examples=8, deadline=None)
    def test_bit_flip_in_message_rejected(self, fast_scheme, message,
                                          position):
        gpk, keys = fast_scheme
        sig = groupsig.sign(gpk, keys[0], message, rng=random.Random(1))
        flipped = bytearray(message)
        flipped[position % len(flipped)] ^= 1 << (position % 8)
        if bytes(flipped) == message:
            return
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, bytes(flipped), sig)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=6, deadline=None)
    def test_encode_decode_identity(self, fast_scheme, message):
        gpk, keys = fast_scheme
        sig = groupsig.sign(gpk, keys[1], message, rng=random.Random(2))
        assert (groupsig.GroupSignature.decode(gpk.group,
                                               sig.encode()).encode()
                == sig.encode())


class TestSignerIndistinguishability:
    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_all_signers_produce_valid_signatures(self, fast_scheme,
                                                  i, j):
        gpk, keys = fast_scheme
        rng = random.Random(i * 4 + j)
        message = b"indist"
        sig_i = groupsig.sign(gpk, keys[i], message, rng=rng)
        sig_j = groupsig.sign(gpk, keys[j], message, rng=rng)
        groupsig.verify(gpk, message, sig_i)
        groupsig.verify(gpk, message, sig_j)
        # Signatures never repeat across signers or randomness.
        assert sig_i.encode() != sig_j.encode()

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=4, deadline=None)
    def test_only_matching_token_opens(self, fast_scheme, signer):
        gpk, keys = fast_scheme
        message = b"open-prop"
        sig = groupsig.sign(gpk, keys[signer], message,
                            rng=random.Random(signer))
        matches = [index for index, key in enumerate(keys)
                   if groupsig.signature_matches_token(
                       gpk, message, sig, groupsig.RevocationToken(key.a))]
        assert matches == [signer]


class TestScalarMalleability:
    @given(st.integers(min_value=1, max_value=2 ** 62),
           st.sampled_from(["r", "c", "s_alpha", "s_x", "s_delta"]))
    @settings(max_examples=10, deadline=None)
    def test_scalar_shifts_rejected(self, fast_scheme, delta, field):
        gpk, keys = fast_scheme
        order = gpk.group.order
        sig = groupsig.sign(gpk, keys[2], b"mall", rng=random.Random(3))
        shifted = (getattr(sig, field) + delta) % order
        if shifted == getattr(sig, field):
            return
        tampered = groupsig.GroupSignature(
            **{**sig.__dict__, field: shifted})
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, b"mall", tampered)

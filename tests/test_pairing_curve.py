"""Unit + property tests for the supersingular curve group."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError, NotOnCurveError
from repro.pairing.curve import Curve, Point
from repro.pairing.params import get_params

PARAMS = get_params("TEST")
CURVE = Curve(PARAMS)
RNG = random.Random(99)


def random_points(n):
    return [CURVE.random_point(random.Random(1000 + i)) for i in range(n)]


POINTS = random_points(4)
scalars = st.integers(min_value=0, max_value=PARAMS.r - 1)


class TestGroupLaw:
    def test_identity(self):
        inf = Point.infinity(PARAMS.p)
        p = POINTS[0]
        assert CURVE.add(p, inf) == p
        assert CURVE.add(inf, p) == p
        assert CURVE.add(inf, inf) == inf

    def test_inverse(self):
        p = POINTS[0]
        assert CURVE.add(p, CURVE.neg(p)).is_infinity()

    def test_commutative(self):
        a, b = POINTS[0], POINTS[1]
        assert CURVE.add(a, b) == CURVE.add(b, a)

    def test_associative(self):
        a, b, c = POINTS[:3]
        assert CURVE.add(CURVE.add(a, b), c) == CURVE.add(a, CURVE.add(b, c))

    def test_double_matches_add(self):
        p = POINTS[0]
        assert CURVE.double(p) == CURVE.add(p, p)

    def test_points_on_curve(self):
        for p in POINTS:
            assert CURVE.is_on_curve(p)

    def test_subgroup_order(self):
        for p in POINTS:
            assert CURVE.mul(p, PARAMS.r - 1) == CURVE.neg(p)
            assert CURVE._mul_raw(p, PARAMS.r).is_infinity()

    def test_require_on_curve_rejects(self):
        bogus = Point(1, 1, PARAMS.p)
        if not CURVE.is_on_curve(bogus):
            with pytest.raises(NotOnCurveError):
                CURVE.require_on_curve(bogus)

    @given(scalars, scalars)
    @settings(max_examples=25)
    def test_scalar_distributive(self, a, b):
        p = POINTS[0]
        lhs = CURVE.mul(p, (a + b) % PARAMS.r)
        rhs = CURVE.add(CURVE.mul(p, a), CURVE.mul(p, b))
        assert lhs == rhs

    @given(scalars)
    @settings(max_examples=25)
    def test_mul_reduces_mod_r(self, a):
        p = POINTS[1]
        assert CURVE.mul(p, a) == CURVE.mul(p, a + PARAMS.r)


class TestMultiMul:
    def test_matches_separate_muls(self):
        a, b = POINTS[0], POINTS[1]
        combo = CURVE.multi_mul([(a, 3), (b, 5)])
        assert combo == CURVE.add(CURVE.mul(a, 3), CURVE.mul(b, 5))

    def test_empty_is_infinity(self):
        assert CURVE.multi_mul([]).is_infinity()


class TestEncoding:
    def test_roundtrip(self):
        for p in POINTS:
            assert CURVE.decode(CURVE.encode(p)) == p

    def test_infinity_roundtrip(self):
        inf = Point.infinity(PARAMS.p)
        assert CURVE.decode(CURVE.encode(inf)).is_infinity()

    def test_size(self):
        assert len(CURVE.encode(POINTS[0])) == PARAMS.point_bytes

    def test_bad_tag_rejected(self):
        blob = bytearray(CURVE.encode(POINTS[0]))
        blob[0] = 9
        with pytest.raises(EncodingError):
            CURVE.decode(bytes(blob))

    def test_bad_length_rejected(self):
        with pytest.raises(EncodingError):
            CURVE.decode(b"\x02\x01")

    def test_nonzero_infinity_payload_rejected(self):
        blob = b"\x00" + b"\x01" * PARAMS.field_bytes
        with pytest.raises(EncodingError):
            CURVE.decode(blob)

    def test_off_curve_x_rejected(self):
        # Find an x with no point, encode it, expect rejection.
        p = PARAMS.p
        for x in range(2, 200):
            rhs = (x ** 3 + x) % p
            if pow(rhs, (p - 1) // 2, p) != 1:
                blob = b"\x02" + x.to_bytes(PARAMS.field_bytes, "big")
                with pytest.raises(EncodingError) as excinfo:
                    CURVE.decode(blob)
                del excinfo
                return
        pytest.skip("no non-residue x found in range")

    def test_parity_bit_selects_y(self):
        p = POINTS[0]
        even = CURVE.lift_x(p.x, 0)
        odd = CURVE.lift_x(p.x, 1)
        assert even.y % 2 == 0 and odd.y % 2 == 1
        assert even == p or odd == p


class TestCofactorClearing:
    def test_cleared_points_in_subgroup(self):
        rng = random.Random(5)
        for _ in range(3):
            point = CURVE.random_point(rng)
            assert CURVE.in_subgroup(point)

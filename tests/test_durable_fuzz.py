"""Fuzzing the journal decoder: recovery is prefix-exact or refused.

The property under test (satellite of the durability ISSUE): for ANY
corruption of a journal -- truncation, bit flips, spliced records --
``DurableRouterStore.load`` either raises :class:`EncodingError` (the
head snapshot itself is gone) or recovers exactly one of the states
the store actually passed through, never a silently wrong list
version and never an uncontrolled exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.durable import (
    DurableRouterStore,
    DurableState,
    MemoryStorage,
)
from repro.errors import EncodingError, ReproError


def build_journal(num_records: int = 6):
    """A journal of ``num_records`` list updates plus the history of
    every state the store passed through (snapshot first)."""
    store = DurableRouterStore(MemoryStorage(), "MR-1", sync_every=1,
                               compact_every=0)
    store.initialize(DurableState(
        store_id="MR-1", epoch=1, gpk_blob=b"gpk",
        crl_blob=b"crl-v0", url_blob=b"url-v0",
        lists_fetched_at=100.0))
    history = [store.state]
    for version in range(1, num_records + 1):
        store.record_lists(b"crl-v%d" % version, b"url-v%d" % version,
                           100.0 + version)
        history.append(store.state)
    return store.storage.read(), history


JOURNAL, HISTORY = build_journal()
HISTORY_KEYS = [(s.crl_blob, s.url_blob, s.lists_fetched_at)
                for s in HISTORY]


def load_blob(blob: bytes):
    storage = MemoryStorage()
    storage.append(blob)
    storage.sync()
    return DurableRouterStore(storage, "MR-1").load()


def assert_prefix_state(info) -> int:
    """The recovered state must be one the store actually held."""
    key = (info.state.crl_blob, info.state.url_blob,
           info.state.lists_fetched_at)
    assert key in HISTORY_KEYS
    return HISTORY_KEYS.index(key)


class TestGarbage:
    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=80)
    def test_random_bytes_never_crash(self, blob):
        try:
            load_blob(blob)
        except EncodingError:
            pass   # the only acceptable failure mode

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=40)
    def test_garbage_after_journal_is_dropped(self, garbage):
        info = load_blob(JOURNAL + garbage)
        assert assert_prefix_state(info) == len(HISTORY) - 1
        assert info.tail_dropped == len(garbage) or garbage == b""


class TestTruncation:
    @given(st.integers(min_value=0, max_value=len(JOURNAL)))
    @settings(max_examples=120)
    def test_any_truncation_recovers_a_prefix(self, cut):
        try:
            info = load_blob(JOURNAL[:cut])
        except EncodingError:
            return   # snapshot itself incomplete: nothing to recover
        assert_prefix_state(info)
        # A truncated record never half-applies: replay count matches
        # the recovered state's position in history exactly.
        assert info.records_replayed == assert_prefix_state(info)

    @given(st.integers(min_value=0, max_value=len(JOURNAL) - 1))
    @settings(max_examples=60)
    def test_recovered_store_accepts_new_records(self, cut):
        storage = MemoryStorage()
        storage.append(JOURNAL[:cut])
        storage.sync()
        store = DurableRouterStore(storage, "MR-1")
        try:
            store.load()
        except EncodingError:
            return
        store.record_lists(b"crl-post", b"url-post", 999.0)
        again = DurableRouterStore(storage, "MR-1").load()
        assert again.state.crl_blob == b"crl-post"


class TestBitFlips:
    @given(st.integers(min_value=0, max_value=len(JOURNAL) - 1),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=150)
    def test_any_single_flip_recovers_a_prefix(self, position, value):
        mutated = bytearray(JOURNAL)
        mutated[position] ^= value
        try:
            info = load_blob(bytes(mutated))
        except EncodingError:
            return   # flip landed in the head snapshot
        assert_prefix_state(info)

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=len(JOURNAL) - 1),
        st.integers(min_value=1, max_value=255)),
        min_size=1, max_size=8))
    @settings(max_examples=80)
    def test_multi_flip_never_wrong_version(self, flips):
        mutated = bytearray(JOURNAL)
        for position, value in flips:
            mutated[position] ^= value
        if bytes(mutated) == JOURNAL:   # flips cancelled out
            return
        try:
            info = load_blob(bytes(mutated))
        except ReproError:
            return
        assert_prefix_state(info)


class TestSplices:
    @given(st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=60)
    def test_foreign_record_never_replays(self, foreign_version, at):
        """Append a valid record from ANOTHER router's journal: the
        store-id-keyed CRC refuses it wherever it lands."""
        other = DurableRouterStore(MemoryStorage(), "MR-2")
        other.initialize(DurableState(store_id="MR-2"))
        head = len(other.storage.read())
        other.record_lists(b"evil-crl%d" % foreign_version,
                           b"evil-url", 666.0)
        foreign = other.storage.read()[head:]
        # Splice after the ``at``-th record boundary of our journal.
        boundaries = record_boundaries()
        cut = boundaries[min(at, len(boundaries) - 1)]
        info = load_blob(JOURNAL[:cut] + foreign + JOURNAL[cut:])
        index = assert_prefix_state(info)
        assert index == min(at, len(boundaries) - 1)
        assert b"evil" not in info.state.crl_blob

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_own_old_record_never_replays_out_of_order(self, take, at):
        """Re-appending one of this journal's own records (right CRC,
        stale sequence) stops the replay at the splice point."""
        boundaries = record_boundaries()
        take = min(take, len(boundaries) - 1)
        at = min(at, len(boundaries) - 1)
        record = JOURNAL[boundaries[take - 1]:boundaries[take]]
        cut = boundaries[at]
        blob = JOURNAL[:cut] + record + JOURNAL[cut:]
        info = load_blob(blob)
        index = assert_prefix_state(info)
        # The spliced record replays only when it is exactly the one
        # expected at that point (take == at + 1) -- and then the
        # *original* copy right behind it carries a stale sequence, so
        # replay still stops one step past the splice.  Either way the
        # journal's true suffix never re-applies out of order.
        assert index == (at + 1 if take == at + 1 else at)


def record_boundaries():
    """Byte offsets after each whole record of JOURNAL (snapshot
    first), derived by walking the frames like the loader does."""
    import struct
    offsets = []
    offset = 0
    while offset < len(JOURNAL):
        length, = struct.unpack_from(">I", JOURNAL, offset)
        offset += 8 + length
        offsets.append(offset)
    return offsets

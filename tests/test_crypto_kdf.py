"""Tests for HKDF and session key derivation."""

import pytest

from repro.crypto.kdf import derive_session_keys, hkdf


class TestHkdf:
    def test_rfc5869_case_1(self):
        """RFC 5869 Appendix A.1 test vector."""
        okm = hkdf(ikm=b"\x0b" * 22, length=42,
                   salt=bytes.fromhex("000102030405060708090a0b0c"),
                   info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"))
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865")

    def test_rfc5869_case_3_empty_salt_info(self):
        okm = hkdf(ikm=b"\x0b" * 22, length=42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8")

    def test_length_control(self):
        for length in (1, 16, 31, 64, 100):
            assert len(hkdf(b"ikm", length)) == length

    def test_deterministic(self):
        assert hkdf(b"k", 32, b"s", b"i") == hkdf(b"k", 32, b"s", b"i")

    def test_info_separates(self):
        assert hkdf(b"k", 32, info=b"a") != hkdf(b"k", 32, info=b"b")

    def test_salt_separates(self):
        assert hkdf(b"k", 32, salt=b"a") != hkdf(b"k", 32, salt=b"b")

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"k", 255 * 32 + 1)


class TestSessionKeys:
    def test_all_keys_present_and_distinct(self):
        keys = derive_session_keys(b"shared-element", b"session-id")
        assert set(keys) == {"enc_i2r", "enc_r2i", "mac_i2r", "mac_r2i",
                             "aead"}
        values = list(keys.values())
        assert len(set(values)) == len(values)

    def test_key_sizes(self):
        keys = derive_session_keys(b"shared", b"sid")
        assert len(keys["enc_i2r"]) == 16
        assert len(keys["mac_i2r"]) == 32
        assert len(keys["aead"]) == 32

    def test_session_id_salts_derivation(self):
        a = derive_session_keys(b"shared", b"sid-1")
        b = derive_session_keys(b"shared", b"sid-2")
        assert a["aead"] != b["aead"]

    def test_both_sides_agree(self):
        assert (derive_session_keys(b"K", b"S")
                == derive_session_keys(b"K", b"S"))

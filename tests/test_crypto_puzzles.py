"""Tests for the Juels-Brainard client puzzles."""

import pytest

from repro.crypto.puzzles import (
    Puzzle,
    PuzzleSolution,
    expected_attempts,
    solve_puzzle,
    verify_solution,
)
from repro.errors import PuzzleError


class TestSolveVerify:
    def test_roundtrip(self):
        puzzle = Puzzle.fresh(8)
        solution = solve_puzzle(puzzle, b"binding")
        assert verify_solution(puzzle, b"binding", solution)

    def test_zero_difficulty_trivial(self):
        puzzle = Puzzle.fresh(0)
        solution = solve_puzzle(puzzle, b"x")
        assert solution.counter == 0
        assert verify_solution(puzzle, b"x", solution)

    def test_solution_bound_to_binding(self):
        puzzle = Puzzle.fresh(12)
        solution = solve_puzzle(puzzle, b"request-A")
        # With overwhelming probability the same counter fails for a
        # different binding at 12 bits.
        assert not verify_solution(puzzle, b"request-B", solution)

    def test_solution_bound_to_puzzle(self):
        p1 = Puzzle.fresh(12)
        p2 = Puzzle.fresh(12)
        solution = solve_puzzle(p1, b"bind")
        assert not verify_solution(p2, b"bind", solution)

    def test_attempt_cap_honored(self):
        puzzle = Puzzle.fresh(30)
        with pytest.raises(PuzzleError):
            solve_puzzle(puzzle, b"bind", max_attempts=4)

    def test_work_scales_with_difficulty(self):
        """Average counters grow ~2x per extra bit (loose check)."""
        easy = [solve_puzzle(Puzzle.fresh(4), bytes([i])).counter
                for i in range(20)]
        hard = [solve_puzzle(Puzzle.fresh(10), bytes([i])).counter
                for i in range(20)]
        assert sum(hard) > sum(easy)

    def test_expected_attempts(self):
        assert expected_attempts(10) == 1024


class TestEncoding:
    def test_puzzle_roundtrip(self):
        puzzle = Puzzle.fresh(9)
        decoded = Puzzle.decode(puzzle.encode())
        assert decoded == puzzle

    def test_solution_roundtrip(self):
        solution = PuzzleSolution(123456)
        assert PuzzleSolution.decode(solution.encode()) == solution

    def test_truncated_puzzle_rejected(self):
        with pytest.raises(PuzzleError):
            Puzzle.decode(b"\x08")

    def test_bad_solution_width_rejected(self):
        with pytest.raises(PuzzleError):
            PuzzleSolution.decode(b"\x00" * 7)

    def test_unreasonable_difficulty_rejected(self):
        with pytest.raises(PuzzleError):
            Puzzle.fresh(64)
        with pytest.raises(PuzzleError):
            Puzzle.fresh(-1)

"""The user-router AKA protocol (Section IV.B): happy path + attacks."""

import pytest

from repro.core.messages import AccessRequest, Beacon
from repro.errors import (
    AuthenticationError,
    CertificateError,
    InvalidSignature,
    ProtocolError,
    PuzzleError,
    ReplayError,
    RevokedKeyError,
)


class TestHappyPath:
    def test_mutual_auth_and_key_agreement(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, router_session = deployment.connect("alice", "MR-1")
        assert user_session.session_id == router_session.session_id
        packet = user_session.send(b"up")
        assert router_session.receive(packet) == b"up"
        reply = router_session.send(b"down")
        assert user_session.receive(reply) == b"down"

    def test_three_messages_exactly(self, fresh_deployment):
        """The paper's minimal-rounds claim: one beacon, one request,
        one confirm."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()                      # M.1
        request, pending = user.connect_to_router(beacon)  # M.2
        confirm, _ = router.process_request(request)       # M.3
        session = user.complete_router_handshake(pending, confirm)
        assert session is not None

    def test_session_id_from_fresh_dh_values(self, fresh_deployment):
        """Sessions are identified by (g^r_R, g^r_j) pairs, all fresh."""
        deployment = fresh_deployment()
        ids = {deployment.connect("alice", "MR-1")[0].session_id
               for _ in range(3)}
        assert len(ids) == 3

    def test_router_logs_authentications(self, fresh_deployment):
        deployment = fresh_deployment()
        deployment.connect("alice", "MR-1")
        log = deployment.routers["MR-1"].auth_log
        assert len(log) == 1
        assert log[0].router_id == "MR-1"

    def test_router_never_learns_uid(self, fresh_deployment):
        """uid_j is never transmitted during protocol execution."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _pending = user.connect_to_router(beacon)
        wire_bytes = request.encode()
        assert user.identity.uid not in wire_bytes
        assert user.identity.name.encode() not in wire_bytes


class TestBeaconValidation:
    def test_stale_beacon_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon = deployment.routers["MR-1"].make_beacon()
        deployment.clock.advance(120.0)   # > ts window
        with pytest.raises(ReplayError):
            deployment.users["alice"].connect_to_router(beacon)

    def test_revoked_router_rejected_after_crl_update(self,
                                                      fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        deployment.operator.revoke_router("MR-1")
        router.refresh_lists()   # now serving a CRL listing itself
        beacon = router.make_beacon()
        with pytest.raises(CertificateError):
            deployment.users["alice"].connect_to_router(beacon)

    def test_forged_beacon_signature_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon = deployment.routers["MR-1"].make_beacon()
        forged = Beacon(beacon.router_id, beacon.g, beacon.g_r_router,
                        beacon.ts1, b"\x01" * 42, beacon.certificate,
                        beacon.crl, beacon.url, beacon.puzzle)
        with pytest.raises(AuthenticationError):
            deployment.users["alice"].connect_to_router(forged)

    def test_certificate_id_mismatch_rejected(self, fresh_deployment):
        """A phisher replaying another router's cert under its own id."""
        deployment = fresh_deployment(routers=["MR-1", "MR-2"])
        beacon1 = deployment.routers["MR-1"].make_beacon()
        beacon2 = deployment.routers["MR-2"].make_beacon()
        frankenstein = Beacon("MR-2", beacon2.g, beacon2.g_r_router,
                              beacon2.ts1, beacon2.signature,
                              beacon1.certificate,   # wrong cert
                              beacon2.crl, beacon2.url)
        with pytest.raises(CertificateError):
            deployment.users["alice"].connect_to_router(frankenstein)

    def test_expired_certificate_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon = deployment.routers["MR-1"].make_beacon()
        deployment.clock.advance(40 * 86400.0)
        fresh_beacon = deployment.routers["MR-1"].make_beacon()
        with pytest.raises(CertificateError):
            deployment.users["alice"].connect_to_router(fresh_beacon)


class TestRequestValidation:
    def test_replayed_request_rejected(self, fresh_deployment):
        """A captured (M.2) replayed later: the g^r_R echo has expired
        or the ts2 is stale."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        router.process_request(request)   # original succeeds
        deployment.clock.advance(400.0)
        with pytest.raises(ReplayError):
            router.process_request(request)

    def test_request_for_unknown_beacon_rejected(self, fresh_deployment):
        deployment = fresh_deployment(routers=["MR-1", "MR-2"])
        user = deployment.users["alice"]
        beacon1 = deployment.routers["MR-1"].make_beacon()
        request, _ = user.connect_to_router(beacon1)
        with pytest.raises(ReplayError):
            deployment.routers["MR-2"].process_request(request)

    def test_forged_group_signature_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        sig = request.group_signature
        from repro.core.groupsig import GroupSignature
        forged = AccessRequest(
            request.g_r_user, request.g_r_router, request.ts2,
            GroupSignature(sig.r, sig.t1, sig.t2, sig.c,
                           (sig.s_alpha + 1) % deployment.group.order,
                           sig.s_x, sig.s_delta))
        with pytest.raises(InvalidSignature):
            router.process_request(forged)

    def test_revoked_user_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        bob = deployment.users["bob"]
        index = bob.credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        router.refresh_lists()
        beacon = router.make_beacon()
        request, _ = bob.connect_to_router(beacon)
        with pytest.raises(RevokedKeyError):
            router.process_request(request)

    def test_rejection_stats_classified(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        deployment.clock.advance(400.0)
        with pytest.raises(ReplayError):
            router.process_request(request)
        assert router.stats["rejected_replay"] == 1
        assert router.stats["accepted"] == 0


class TestBatchProcessing:
    def test_mixed_batch_classified_like_sequential(self, fresh_deployment):
        """process_request_batch: accepts, forgeries, and revoked users
        land exactly where sequential processing puts them."""
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        alice = deployment.users["alice"]
        bob = deployment.users["bob"]
        index = bob.credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        router.refresh_lists()

        requests = []
        pendings = []
        for user in (alice, alice):
            beacon = router.make_beacon()
            request, pending = user.connect_to_router(beacon)
            requests.append(request)
            pendings.append(pending)
        beacon = router.make_beacon()
        forged_src, _ = alice.connect_to_router(beacon)
        sig = forged_src.group_signature
        from repro.core.groupsig import GroupSignature
        requests.append(AccessRequest(
            forged_src.g_r_user, forged_src.g_r_router, forged_src.ts2,
            GroupSignature(sig.r, sig.t1, sig.t2, sig.c,
                           (sig.s_alpha + 1) % deployment.group.order,
                           sig.s_x, sig.s_delta)))
        beacon = router.make_beacon()
        revoked_request, _ = bob.connect_to_router(beacon)
        requests.append(revoked_request)

        outcomes = router.process_request_batch(requests)
        assert len(outcomes) == 4
        for pending, outcome in zip(pendings, outcomes[:2]):
            confirm, router_session = outcome
            user_session = alice.complete_router_handshake(pending, confirm)
            assert user_session.session_id == router_session.session_id
        assert isinstance(outcomes[2], InvalidSignature)
        assert isinstance(outcomes[3], RevokedKeyError)
        assert router.stats["accepted"] == 2
        assert router.stats["rejected_signature"] == 1
        assert router.stats["rejected_revoked"] == 1
        assert router.stats["requests"] == 4

    def test_batch_precheck_failures_skip_verification(self,
                                                       fresh_deployment):
        deployment = fresh_deployment(routers=["MR-1", "MR-2"])
        alice = deployment.users["alice"]
        other_beacon = deployment.routers["MR-2"].make_beacon()
        stray, _ = alice.connect_to_router(other_beacon)
        router = deployment.routers["MR-1"]
        beacon = router.make_beacon()
        good, pending = alice.connect_to_router(beacon)
        outcomes = router.process_request_batch([stray, good])
        assert isinstance(outcomes[0], ReplayError)
        confirm, _session = outcomes[1]
        assert alice.complete_router_handshake(pending, confirm) is not None
        assert router.stats["rejected_replay"] == 1
        assert router.stats["accepted"] == 1

    def test_empty_batch(self, fresh_deployment):
        deployment = fresh_deployment()
        assert deployment.routers["MR-1"].process_request_batch([]) == []


class TestConfirmValidation:
    def test_tampered_confirm_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, pending = user.connect_to_router(beacon)
        confirm, _ = router.process_request(request)
        from repro.core.messages import AccessConfirm
        tampered = AccessConfirm(confirm.g_r_user, confirm.g_r_router,
                                 confirm.sealed[:-1]
                                 + bytes([confirm.sealed[-1] ^ 1]))
        with pytest.raises(Exception):
            user.complete_router_handshake(pending, tampered)

    def test_confirm_for_other_session_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        alice, bob = deployment.users["alice"], deployment.users["bob"]
        beacon = router.make_beacon()
        request_a, pending_a = alice.connect_to_router(beacon)
        request_b, pending_b = bob.connect_to_router(beacon)
        confirm_a, _ = router.process_request(request_a)
        confirm_b, _ = router.process_request(request_b)
        with pytest.raises(ProtocolError):
            alice.complete_router_handshake(pending_a, confirm_b)


class TestPuzzlePath:
    def test_puzzle_required_and_solved(self, fresh_deployment):
        from repro.core.protocols.dos import DosPolicy

        def factory():
            policy = DosPolicy(base_difficulty=6, max_difficulty=6,
                               adaptive=False)
            policy.forced = True
            return policy

        deployment = fresh_deployment(dos_policy_factory=factory)
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        assert beacon.puzzle is not None
        request, pending = user.connect_to_router(beacon)
        assert request.puzzle_solution is not None
        confirm, _ = router.process_request(request)
        user.complete_router_handshake(pending, confirm)

    def test_missing_solution_rejected_cheaply(self, fresh_deployment):
        from repro import instrument
        from repro.core.protocols.dos import DosPolicy

        def factory():
            policy = DosPolicy(base_difficulty=6, max_difficulty=6,
                               adaptive=False)
            policy.forced = True
            return policy

        deployment = fresh_deployment(dos_policy_factory=factory)
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        stripped = AccessRequest(request.g_r_user, request.g_r_router,
                                 request.ts2, request.group_signature,
                                 puzzle_solution=None)
        with instrument.count_operations() as ops:
            with pytest.raises(PuzzleError):
                router.process_request(stripped)
        assert ops.pairings() == 0   # rejected before any pairing

    def test_user_refuses_excessive_difficulty(self, fresh_deployment):
        from repro.core.protocols.dos import DosPolicy

        def factory():
            policy = DosPolicy(base_difficulty=30, max_difficulty=30,
                               adaptive=False)
            policy.forced = True
            return policy

        deployment = fresh_deployment(dos_policy_factory=factory)
        beacon = deployment.routers["MR-1"].make_beacon()
        with pytest.raises(PuzzleError):
            deployment.users["alice"].connect_to_router(beacon)

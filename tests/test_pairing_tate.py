"""Bilinearity and structure tests for the Tate pairing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.pairing.curve import Curve, Point
from repro.pairing.params import get_params
from repro.pairing.tate import tate_pairing

PARAMS = get_params("TEST")
CURVE = Curve(PARAMS)
P = CURVE.random_point(random.Random(11))
Q = CURVE.random_point(random.Random(22))
BASE = tate_pairing(CURVE, P, Q)

scalars = st.integers(min_value=1, max_value=PARAMS.r - 1)


class TestStructure:
    def test_non_degenerate(self):
        assert not BASE.is_one()

    def test_order_r(self):
        assert (BASE ** PARAMS.r).is_one()

    def test_symmetric(self):
        assert tate_pairing(CURVE, Q, P) == BASE

    def test_infinity_maps_to_one(self):
        inf = Point.infinity(PARAMS.p)
        assert tate_pairing(CURVE, inf, Q).is_one()
        assert tate_pairing(CURVE, P, inf).is_one()

    def test_wrong_field_rejected(self):
        foreign = Point(1, 1, 7)
        with pytest.raises(ParameterError):
            tate_pairing(CURVE, foreign, Q)

    def test_inverse_point(self):
        assert (tate_pairing(CURVE, CURVE.neg(P), Q)
                == BASE.inverse())

    def test_deterministic(self):
        assert tate_pairing(CURVE, P, Q) == tate_pairing(CURVE, P, Q)


class TestBilinearity:
    @given(scalars, scalars)
    @settings(max_examples=10, deadline=None)
    def test_full_bilinearity(self, a, b):
        lhs = tate_pairing(CURVE, CURVE.mul(P, a), CURVE.mul(Q, b))
        assert lhs == BASE ** (a * b % PARAMS.r)

    @given(scalars)
    @settings(max_examples=10, deadline=None)
    def test_left_linearity(self, a):
        assert tate_pairing(CURVE, CURVE.mul(P, a), Q) == BASE ** a

    @given(scalars)
    @settings(max_examples=10, deadline=None)
    def test_right_linearity(self, b):
        assert tate_pairing(CURVE, P, CURVE.mul(Q, b)) == BASE ** b

    def test_additive_in_first_argument(self):
        p2 = CURVE.random_point(random.Random(33))
        lhs = tate_pairing(CURVE, CURVE.add(P, p2), Q)
        rhs = tate_pairing(CURVE, P, Q) * tate_pairing(CURVE, p2, Q)
        assert lhs == rhs

    def test_additive_in_second_argument(self):
        q2 = CURVE.random_point(random.Random(44))
        lhs = tate_pairing(CURVE, P, CURVE.add(Q, q2))
        rhs = tate_pairing(CURVE, P, Q) * tate_pairing(CURVE, P, q2)
        assert lhs == rhs


class TestAcrossPresets:
    @pytest.mark.parametrize("preset", ["TEST", "SS256"])
    def test_bilinear_on_preset(self, preset):
        params = get_params(preset)
        curve = Curve(params)
        rng = random.Random(55)
        p = curve.random_point(rng)
        q = curve.random_point(rng)
        base = tate_pairing(curve, p, q)
        assert not base.is_one()
        a, b = 123457, 987653
        assert (tate_pairing(curve, curve.mul(p, a), curve.mul(q, b))
                == base ** (a * b % params.r))

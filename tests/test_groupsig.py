"""Tests for the PEACE group signature (sign/verify/revoke/open)."""

import random

import pytest

from repro.core import groupsig
from repro.errors import EncodingError, InvalidSignature, RevokedKeyError

MSG = b"g^rj || g^rR || ts2"


class TestSignVerify:
    def test_roundtrip(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        groupsig.verify(gpk, MSG, sig)   # no raise = valid

    def test_every_member_can_sign(self, gpk, member_keys, rng):
        for key in member_keys.values():
            sig = groupsig.sign(gpk, key, MSG, rng=rng)
            groupsig.verify(gpk, MSG, sig)

    def test_wrong_message_rejected(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, MSG + b"!", sig)

    def test_signatures_are_randomized(self, gpk, member_keys, rng):
        sig1 = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        sig2 = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        assert sig1.encode() != sig2.encode()

    def test_verify_under_different_master_fails(self, group, rng):
        gpk1, master1 = groupsig.keygen_master(group, random.Random(1))
        gpk2, _master2 = groupsig.keygen_master(group, random.Random(2))
        key = groupsig.issue_member_key(group, master1, 42, (1, 1), rng)
        sig = groupsig.sign(gpk1, key, MSG, rng=rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk2, MSG, sig)

    @pytest.mark.parametrize("field", ["r", "c", "s_alpha", "s_x",
                                       "s_delta"])
    def test_tampered_scalar_rejected(self, gpk, member_keys, rng, field):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        tampered = groupsig.GroupSignature(
            **{**sig.__dict__, field: (getattr(sig, field) + 1)
               % gpk.group.order})
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, MSG, tampered)

    @pytest.mark.parametrize("field", ["t1", "t2"])
    def test_tampered_point_rejected(self, gpk, member_keys, rng, field):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        tampered = groupsig.GroupSignature(
            **{**sig.__dict__, field: getattr(sig, field) ** 2})
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, MSG, tampered)

    def test_degenerate_t1_rejected(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        identity = sig.t1 / sig.t1
        bad = groupsig.GroupSignature(sig.r, identity, sig.t2, sig.c,
                                      sig.s_alpha, sig.s_x, sig.s_delta)
        with pytest.raises(InvalidSignature):
            groupsig.verify(gpk, MSG, bad)


class TestKeyGeneration:
    def test_member_key_satisfies_sdh_relation(self, group, scheme):
        """e(A, w * g2^(grp+x)) == e(g1, g2) -- the paper's key equation."""
        gpk, _master, keys = scheme
        for key in keys.values():
            lhs = group.pair(key.a,
                             gpk.w * (gpk.g2 ** key.exponent_sum))
            assert lhs == group.pair(gpk.g1, gpk.g2)

    def test_distinct_members_distinct_keys(self, member_keys):
        encodings = {key.a.encode() for key in member_keys.values()}
        assert len(encodings) == len(member_keys)

    def test_same_group_shares_grp_component(self, member_keys):
        assert member_keys["a1"].grp == member_keys["a2"].grp
        assert member_keys["a1"].grp != member_keys["b1"].grp

    def test_exponent_sum(self, member_keys):
        key = member_keys["a1"]
        assert key.exponent_sum == key.grp + key.x

    def test_keygen_deterministic_under_seeded_rng(self, group):
        a = groupsig.keygen_master(group, random.Random(9))
        b = groupsig.keygen_master(group, random.Random(9))
        assert a[0].w == b[0].w and a[1].gamma == b[1].gamma


class TestRevocation:
    def test_revoked_key_detected(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        url = [groupsig.RevocationToken(member_keys["a1"].a)]
        with pytest.raises(RevokedKeyError):
            groupsig.verify(gpk, MSG, sig, url=url)

    def test_unrevoked_key_passes(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        url = [groupsig.RevocationToken(member_keys["a2"].a),
               groupsig.RevocationToken(member_keys["b1"].a)]
        groupsig.verify(gpk, MSG, sig, url=url)

    def test_revocation_check_skippable(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        url = [groupsig.RevocationToken(member_keys["a1"].a)]
        groupsig.verify(gpk, MSG, sig, url=url, check_revocation=False)

    def test_signature_matches_token_specificity(self, gpk, member_keys,
                                                 rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        assert groupsig.signature_matches_token(
            gpk, MSG, sig, groupsig.RevocationToken(member_keys["a1"].a))
        for other in ("a2", "b1", "b2"):
            assert not groupsig.signature_matches_token(
                gpk, MSG, sig,
                groupsig.RevocationToken(member_keys[other].a))


class TestOpen:
    def test_open_identifies_signer_group(self, gpk, member_keys, rng):
        grt = [(groupsig.RevocationToken(key.a), name)
               for name, key in member_keys.items()]
        sig = groupsig.sign(gpk, member_keys["b2"], MSG, rng=rng)
        assert groupsig.open_signature(gpk, MSG, sig, grt) == "b2"

    def test_open_unknown_signer_returns_none(self, group, gpk,
                                              member_keys, rng):
        """A key NO never issued opens to nothing."""
        # Forge grt missing the actual signer.
        grt = [(groupsig.RevocationToken(member_keys["a2"].a), "a2")]
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        assert groupsig.open_signature(gpk, MSG, sig, grt) is None


class TestEncoding:
    def test_roundtrip(self, group, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        decoded = groupsig.GroupSignature.decode(group, sig.encode())
        groupsig.verify(gpk, MSG, decoded)
        assert decoded.encode() == sig.encode()

    def test_size_formula(self, group, gpk, member_keys, rng):
        """2 G1 elements + 5 Z_r scalars, exactly (paper V.C)."""
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng)
        expected = (2 * group.params.point_bytes
                    + 5 * group.params.scalar_bytes)
        assert len(sig.encode()) == expected
        assert groupsig.GroupSignature.encoded_size(group) == expected

    def test_bad_length_rejected(self, group):
        with pytest.raises(EncodingError):
            groupsig.GroupSignature.decode(group, b"\x00" * 10)

    def test_gpk_roundtrip(self, group, gpk):
        decoded = groupsig.GroupPublicKey.decode(group, gpk.encode())
        assert decoded.w == gpk.w

    def test_token_roundtrip(self, group, member_keys):
        token = groupsig.RevocationToken(member_keys["a1"].a)
        assert groupsig.RevocationToken.decode(
            group, token.encode()).a == token.a


class TestBlindShares:
    def test_share_roundtrip(self, group, member_keys):
        key = member_keys["a1"]
        share = groupsig.blind_share(key.a, key.x)
        assert groupsig.unblind_share(group, share, key.x) == key.a

    def test_share_hides_a(self, group, member_keys):
        """The blinded share differs from the raw A encoding."""
        key = member_keys["a1"]
        assert groupsig.blind_share(key.a, key.x) != key.a.encode()

    def test_wrong_x_fails_or_garbles(self, group, member_keys):
        key = member_keys["a1"]
        share = groupsig.blind_share(key.a, key.x)
        try:
            recovered = groupsig.unblind_share(group, share, key.x + 1)
        except EncodingError:
            return   # decode failure is the common outcome
        assert recovered != key.a

"""Adversary node behaviour and the claims of Section V.A."""

import random

import pytest

from repro.wmn.adversary import (
    DosFlooder,
    Eavesdropper,
    OutsiderInjector,
    ReplayAttacker,
    RoguePhisher,
    forge_access_request,
)
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def arena(seed=13, user_count=2, **overrides):
    defaults = dict(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=400.0, router_grid=1,
                                user_count=user_count, seed=seed,
                                access_range=400.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=5.0)
    defaults.update(overrides)
    return Scenario(ScenarioConfig(**defaults))


class TestEavesdropper:
    def test_hears_all_traffic(self):
        scenario = arena()
        eve = Eavesdropper("eve", (50.0, 50.0), scenario.loop,
                           scenario.radio)
        scenario.run(30.0)
        kinds = {frame.kind for _t, frame in eve.captured}
        assert {"M.1", "M.2", "M.3"} <= kinds

    def test_session_identifiers_all_fresh(self):
        """Every observed session identifier is unique: nothing for the
        adversary to link (Section V.B)."""
        scenario = arena(user_count=3)
        eve = Eavesdropper("eve", (50.0, 50.0), scenario.loop,
                           scenario.radio)
        scenario.run(60.0)
        assert eve.identifier_reuse(scenario.deployment.group) == 0
        assert len(eve.observed_session_identifiers(
            scenario.deployment.group)) >= 3

    def test_no_uid_on_the_air(self):
        scenario = arena()
        eve = Eavesdropper("eve", (50.0, 50.0), scenario.loop,
                           scenario.radio)
        scenario.run(30.0)
        air = b"".join(frame.payload for _t, frame in eve.captured)
        for user in scenario.deployment.users.values():
            assert user.identity.uid not in air


class TestOutsiderInjector:
    def test_forgeries_all_rejected(self):
        scenario = arena(user_count=0)
        attacker = OutsiderInjector("mallory", (10.0, 10.0),
                                    scenario.loop, scenario.radio,
                                    scenario.deployment.group)
        scenario.run(40.0)
        router = next(iter(scenario.sim_routers.values()))
        assert attacker.injected > 0
        assert router.metrics["handshakes_completed"] == 0
        assert router.metrics["handshakes_rejected"] == attacker.injected

    def test_forged_request_is_well_formed(self, fresh_deployment):
        """The forgery decodes fine and fails only at Eq.2."""
        from repro.core.messages import AccessRequest
        from repro.errors import InvalidSignature
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        beacon = router.make_beacon()
        forged = forge_access_request(deployment.group, beacon,
                                      deployment.clock.now(),
                                      random.Random(1))
        decoded = AccessRequest.decode(deployment.group, forged.encode())
        with pytest.raises(InvalidSignature):
            router.process_request(decoded)


class TestReplayAttacker:
    def test_replays_rejected(self):
        scenario = arena(user_count=2)
        attacker = ReplayAttacker("replay", (20.0, 20.0), scenario.loop,
                                  scenario.radio, replay_delay=45.0)
        scenario.run(120.0)
        router = next(iter(scenario.sim_routers.values()))
        assert attacker.replayed > 0
        # Exactly the legitimate handshakes succeeded; replays failed.
        assert router.metrics["handshakes_completed"] == 2
        assert router.metrics["handshakes_rejected"] >= attacker.replayed


class TestRoguePhisher:
    def test_no_user_answers_a_rogue(self):
        scenario = arena(user_count=3)
        rogue = RoguePhisher("MR-rogue", (60.0, 60.0), scenario.loop,
                             scenario.radio, scenario.deployment.group)
        scenario.run(60.0)
        assert rogue.victims == set()

    def test_users_still_join_the_real_router(self):
        scenario = arena(user_count=3)
        RoguePhisher("MR-rogue", (60.0, 60.0), scenario.loop,
                     scenario.radio, scenario.deployment.group)
        scenario.run(60.0)
        assert scenario.connected_fraction() == 1.0


class TestDosFlooder:
    def test_flooder_throttled_by_puzzles(self):
        from repro.core.protocols.dos import DosPolicy

        def policy():
            return DosPolicy(rate_threshold=3.0, window=10.0,
                             base_difficulty=14, max_difficulty=14,
                             adaptive=False)

        scenario = arena(user_count=0, dos_policy_factory=policy)
        router_id = next(iter(scenario.sim_routers))
        flooder = DosFlooder("flood", (30.0, 30.0), scenario.loop,
                             scenario.radio, scenario.deployment.group,
                             router_id, rate=20.0, hash_rate=50_000.0)
        scenario.run(60.0)
        # 2^14 / 50k = 0.33s per solve > 0.05s per request: the flood
        # rate collapses once puzzles activate.
        assert flooder.puzzle_limited > flooder.sent / 2

"""Failure injection: the WMN under packet loss.

The protocols must degrade gracefully on a lossy radio: handshakes
that lose a message time out and retry on a later beacon; sessions
reject nothing incorrectly; no node crashes.
"""

import pytest

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def lossy_scenario(loss, seed=77, users=4):
    return Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=400.0, router_grid=1,
                                user_count=users, seed=seed,
                                access_range=400.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        data_interval=8.0,
        loss_probability=loss))


class TestLossResilience:
    def test_moderate_loss_still_connects(self):
        scenario = lossy_scenario(loss=0.15)
        for user in scenario.sim_users.values():
            user.connect_timeout = 12.0
        scenario.run(240.0)
        assert scenario.connected_fraction() == 1.0

    def test_heavy_loss_partial_progress_no_crash(self):
        scenario = lossy_scenario(loss=0.5)
        for user in scenario.sim_users.values():
            user.connect_timeout = 10.0
        scenario.run(300.0)
        # No correctness guarantee at 50% loss -- only liveness of the
        # simulation and monotone retry behaviour.
        metrics = scenario.user_metrics()
        assert metrics["connect_attempts"] >= metrics["connected"]
        assert scenario.router_metrics()["handshakes_rejected"] >= 0

    def test_lost_confirm_triggers_timeout_and_retry(self):
        scenario = lossy_scenario(loss=0.35, seed=78, users=2)
        for user in scenario.sim_users.values():
            user.connect_timeout = 10.0
        scenario.run(300.0)
        metrics = scenario.user_metrics()
        if metrics.get("connect_timeouts", 0) == 0:
            pytest.skip("randomness produced no lost handshakes")
        # Every timeout was followed by a fresh attempt.
        assert (metrics["connect_attempts"]
                > metrics.get("connect_timeouts", 0))

    def test_data_loss_does_not_poison_sessions(self):
        """Lost DAT frames must not desynchronize the MAC layer: later
        packets still verify (sequence numbers only need monotonicity)."""
        scenario = lossy_scenario(loss=0.3, seed=79, users=3)
        scenario.run(400.0)
        metrics = scenario.router_metrics()
        assert metrics["data_delivered"] > 0
        assert metrics["data_rejected"] == 0

    def test_zero_loss_baseline(self):
        scenario = lossy_scenario(loss=0.0)
        scenario.run(60.0)
        assert scenario.connected_fraction() == 1.0
        assert scenario.radio.frames_dropped == 0

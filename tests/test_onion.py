"""The anonymous-communication upper layer (paper's closing pointer)."""

import pytest

from repro.errors import ProtocolError, SessionError
from repro.wmn.onion import (
    OnionCircuit,
    OnionRelay,
    build_circuit,
    derive_layer_key,
    open_exit_record,
    route_through,
)


@pytest.fixture
def circuit_world(fresh_deployment):
    """Three relays keyed from real PEACE peer sessions.

    alice establishes a peer session with each relay user; the layer
    keys derive from those sessions' exported material, so circuit
    anonymity rests on PEACE's authenticated-yet-anonymous handshakes.
    """
    deployment = fresh_deployment(
        users=[("alice", ["Company X"]),
               ("r1", ["Company X"]), ("r2", ["Company X"]),
               ("r3", ["University Z"])])
    sessions = {}
    for relay_name in ("r1", "r2", "r3"):
        initiator_session, _responder = deployment.peer_connect(
            "alice", relay_name, "MR-1")
        sessions[relay_name] = initiator_session.export_key_material(
            b"onion")
    relays = {name: OnionRelay(name) for name in ("r1", "r2", "r3")}
    circuit = build_circuit(sessions, ["r1", "r2", "r3"], relays,
                            circuit_id=b"CIRCUIT1")
    return deployment, circuit, relays


class TestCircuit:
    def test_roundtrip_through_three_hops(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        seen = {}

        def deliver(destination, payload):
            seen["dst"] = destination
            seen["payload"] = payload
            return b"pong:" + payload

        reply, trail = route_through(circuit, relays, "internet-host",
                                     b"ping", deliver)
        assert seen == {"dst": "internet-host", "payload": b"ping"}
        assert reply == b"pong:ping"
        assert trail == ["r1", "r2", "r3"]

    def test_each_relay_peeled_once(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        route_through(circuit, relays, "host", b"m",
                      lambda d, p: b"ok")
        assert all(relay.peeled == 1 for relay in relays.values())

    def test_intermediate_layers_hide_destination(self, circuit_world):
        """No non-exit relay's view contains the destination or the
        payload -- the onion property."""
        _deployment, circuit, relays = circuit_world
        blob = circuit.wrap("secret-host", b"secret-payload")
        # r1's peel output is what r1 sees in the clear.
        next_hop, after_r1 = relays["r1"].peel(b"CIRCUIT1", blob)
        assert next_hop == "r2"
        assert b"secret-host" not in after_r1.split(b"r2")[0]
        # The remaining blob is still sealed for r2: r1 cannot read on.
        with pytest.raises((SessionError, ProtocolError)):
            relays["r1"].peel(b"CIRCUIT1", after_r1)

    def test_entry_relay_cannot_see_exit_record(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        blob = circuit.wrap("dst", b"payload")
        _next, remainder = relays["r1"].peel(b"CIRCUIT1", blob)
        with pytest.raises(Exception):
            open_exit_record(remainder)

    def test_tampered_onion_rejected(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        blob = bytearray(circuit.wrap("dst", b"payload"))
        blob[-1] ^= 1
        with pytest.raises(SessionError):
            relays["r1"].peel(b"CIRCUIT1", bytes(blob))

    def test_unknown_circuit_rejected(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        blob = circuit.wrap("dst", b"payload")
        with pytest.raises(ProtocolError):
            relays["r1"].peel(b"OTHER-ID", blob)

    def test_reply_unwrap_requires_all_layers(self, circuit_world):
        _deployment, circuit, relays = circuit_world
        # A reply sealed by only the exit cannot be opened in full.
        partial = relays["r3"].seal_reply(b"CIRCUIT1", b"reply")
        with pytest.raises(SessionError):
            circuit.unwrap_reply(partial)


class TestConstruction:
    def test_empty_path_rejected(self):
        with pytest.raises(ProtocolError):
            OnionCircuit([])

    def test_missing_session_rejected(self):
        relays = {"r1": OnionRelay("r1")}
        with pytest.raises(ProtocolError):
            build_circuit({}, ["r1"], relays)

    def test_missing_relay_rejected(self):
        with pytest.raises(ProtocolError):
            build_circuit({"ghost": b"\x00" * 32}, ["ghost"], {})

    def test_layer_keys_differ_per_circuit(self):
        material = b"\x07" * 32
        assert (derive_layer_key(material, b"circuit-A")
                != derive_layer_key(material, b"circuit-B"))

    def test_single_hop_circuit(self, fresh_deployment):
        deployment = fresh_deployment()
        session, _ = deployment.peer_connect("alice", "bob", "MR-1")
        relays = {"bob": OnionRelay("bob")}
        circuit = build_circuit(
            {"bob": session.export_key_material(b"onion")},
            ["bob"], relays)
        reply, trail = route_through(circuit, relays, "host", b"hi",
                                     lambda d, p: p.upper())
        assert reply == b"HI"
        assert trail == ["bob"]

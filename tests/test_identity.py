"""Tests for the multi-faceted user identity model (Fig. 2)."""

from repro.core.identity import RoleAttribute, UserIdentity


def make_identity():
    return UserIdentity.build(
        name="pat",
        essential={"ssn": "123-45-6789", "passport": "X1234567"},
        roles=[RoleAttribute("engineer", "Company X"),
               RoleAttribute("student", "University Z"),
               RoleAttribute("tenant", "Apartment Y")])


class TestIdentity:
    def test_uid_is_stable(self):
        assert make_identity().uid == make_identity().uid

    def test_uid_depends_on_essentials(self):
        a = UserIdentity.build("pat", {"ssn": "1"}, [])
        b = UserIdentity.build("pat", {"ssn": "2"}, [])
        assert a.uid != b.uid

    def test_uid_depends_on_name(self):
        a = UserIdentity.build("pat", {"ssn": "1"}, [])
        b = UserIdentity.build("sam", {"ssn": "1"}, [])
        assert a.uid != b.uid

    def test_uid_independent_of_roles(self):
        """Roles are nonessential: they never perturb the uid."""
        a = UserIdentity.build("pat", {"ssn": "1"},
                               [RoleAttribute("engineer", "Company X")])
        b = UserIdentity.build("pat", {"ssn": "1"}, [])
        assert a.uid == b.uid

    def test_uid_insensitive_to_essential_ordering(self):
        a = UserIdentity.build("pat", {"a": "1", "b": "2"}, [])
        b = UserIdentity.build("pat", {"b": "2", "a": "1"}, [])
        assert a.uid == b.uid

    def test_has_role_at(self):
        identity = make_identity()
        assert identity.has_role_at("Company X")
        assert identity.has_role_at("University Z")
        assert not identity.has_role_at("Golf Club V")

    def test_nonessential_view_excludes_essentials(self):
        identity = make_identity()
        view = identity.nonessential_view()
        rendered = " ".join(sorted(r.describe() for r in view))
        assert "123-45-6789" not in rendered
        assert "engineer of Company X" in rendered

    def test_role_describe(self):
        role = RoleAttribute("member", "Golf Club V")
        assert role.describe() == "member of Golf Club V"

    def test_identity_hashable_and_frozen(self):
        identity = make_identity()
        assert identity in {identity}

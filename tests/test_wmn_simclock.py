"""Tests for the discrete-event loop and simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.wmn.simclock import EventLoop, SimClock


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(3.0, lambda: order.append("c"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(2.0, lambda: order.append("b"))
        loop.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        loop = EventLoop()
        order = []
        for name in "abc":
            loop.schedule(1.0, lambda n=name: order.append(n))
        loop.run_all()
        assert order == ["a", "b", "c"]

    def test_run_until_stops(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run_until(2.0)
        assert fired == [1]
        assert loop.now == 2.0
        loop.run_until(6.0)
        assert fired == [1, 5]

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []

        def outer():
            seen.append(loop.now)
            loop.schedule(1.0, lambda: seen.append(loop.now))

        loop.schedule(1.0, outer)
        loop.run_all()
        assert seen == [1.0, 2.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        loop = EventLoop(start=100.0)
        fired = []
        loop.schedule_at(105.0, lambda: fired.append(loop.now))
        loop.run_all()
        assert fired == [105.0]

    def test_schedule_every(self):
        loop = EventLoop()
        ticks = []
        loop.schedule_every(2.0, lambda: ticks.append(loop.now))
        loop.run_until(7.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_schedule_every_until(self):
        loop = EventLoop()
        ticks = []
        loop.schedule_every(1.0, lambda: ticks.append(loop.now),
                            until=3.5)
        loop.run_until(10.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_bad_period_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule_every(0.0, lambda: None)

    def test_event_explosion_guard(self):
        loop = EventLoop()

        def rescheduler():
            loop.schedule(0.0, rescheduler)

        loop.schedule(0.0, rescheduler)
        with pytest.raises(SimulationError):
            loop.run_until(1.0, max_events=100)


class TestSimClock:
    def test_tracks_loop_time(self):
        loop = EventLoop(start=50.0)
        clock = SimClock(loop)
        assert clock.now() == 50.0
        loop.schedule(5.0, lambda: None)
        loop.run_all()
        assert clock.now() == 55.0

    def test_entities_see_virtual_time(self):
        """A protocol engine wired to SimClock stamps virtual time."""
        from repro.core.deployment import Deployment
        loop = EventLoop(start=1_000_000.0)
        deployment = Deployment.build(preset="TEST", seed=3,
                                      clock=SimClock(loop))
        beacon = deployment.routers["MR-1"].make_beacon()
        assert beacon.ts1 == 1_000_000.0

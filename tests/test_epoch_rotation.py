"""Membership renewal via group-public-key update (Sections III.A, V.A).

The paper's membership maintenance: subscriptions may be
"terminated/renewed ... in a periodic manner", and revoked users may
"not have any group private key currently in use due to group public
key update".  These tests exercise the full rotation flow.
"""

import pytest

from repro.core import groupsig
from repro.core.audit import audit_by_session
from repro.errors import AuditError, InvalidSignature, ParameterError


class TestRotationBasics:
    def test_gpk_changes(self, fresh_deployment):
        deployment = fresh_deployment()
        old_w = deployment.operator.gpk.w
        deployment.rotate_epoch()
        assert deployment.operator.gpk.w != old_w
        assert deployment.operator.epoch == 1

    def test_reenrolled_users_connect(self, fresh_deployment):
        deployment = fresh_deployment()
        deployment.rotate_epoch()
        deployment.connect("alice", "MR-1")
        deployment.connect("bob", "MR-1")

    def test_old_credentials_dead_under_new_gpk(self, fresh_deployment):
        deployment = fresh_deployment()
        old_credential = deployment.users["alice"].credentials["Company X"]
        old_gpk = deployment.operator.gpk
        deployment.rotate_epoch()
        new_gpk = deployment.operator.gpk
        sig = groupsig.sign(old_gpk, old_credential, b"stale",
                            rng=deployment.rng)
        with pytest.raises(InvalidSignature):
            groupsig.verify(new_gpk, b"stale", sig)

    def test_new_credentials_differ(self, fresh_deployment):
        deployment = fresh_deployment()
        old = deployment.users["alice"].credentials["Company X"]
        deployment.rotate_epoch()
        new = deployment.users["alice"].credentials["Company X"]
        assert old.a != new.a
        assert old.x != new.x

    def test_multiple_rotations(self, fresh_deployment):
        deployment = fresh_deployment()
        for expected_epoch in (1, 2, 3):
            deployment.rotate_epoch()
            assert deployment.operator.epoch == expected_epoch
        deployment.connect("alice", "MR-1")


class TestRotationAsRevocation:
    def test_excluded_user_loses_access(self, fresh_deployment):
        """Revocation case (i): not re-issued at the rotation."""
        deployment = fresh_deployment()
        deployment.rotate_epoch(exclude=["bob"])
        deployment.connect("alice", "MR-1")
        with pytest.raises(ParameterError):
            deployment.connect("bob", "MR-1")   # no credential at all

    def test_url_cleared_by_rotation(self, fresh_deployment):
        """Old URL entries are moot once the whole epoch is dead."""
        deployment = fresh_deployment()
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        assert len(deployment.operator.issue_url().tokens) == 1
        deployment.rotate_epoch(exclude=["bob"])
        assert len(deployment.operator.issue_url().tokens) == 0

    def test_gm_pool_size_preserved(self, fresh_deployment):
        deployment = fresh_deployment(groups={"Company X": 5},
                                      users=[("alice", ["Company X"])])
        gm = deployment.gms["Company X"]
        assert gm.pool_size == 4          # 5 issued, 1 assigned
        deployment.rotate_epoch()
        assert gm.pool_size == 4          # reissued at the same size
        assert gm.epoch == 1


class TestHistoricalAudit:
    def test_old_sessions_still_auditable(self, fresh_deployment):
        deployment = fresh_deployment()
        old_session, _ = deployment.connect("alice", "MR-1",
                                            context="Company X")
        deployment.rotate_epoch()
        result = audit_by_session(deployment.operator,
                                  deployment.network_log,
                                  old_session.session_id)
        assert result.group_name == "Company X"
        assert result.epoch == 0

    def test_old_sessions_still_traceable(self, fresh_deployment):
        deployment = fresh_deployment()
        old_session, _ = deployment.connect("alice", "MR-1",
                                            context="Company X")
        deployment.rotate_epoch()
        trace = deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            old_session.session_id)
        assert trace.identity.name == "alice"

    def test_new_sessions_audit_in_new_epoch(self, fresh_deployment):
        deployment = fresh_deployment()
        deployment.rotate_epoch()
        session, _ = deployment.connect("alice", "MR-1")
        result = audit_by_session(deployment.operator,
                                  deployment.network_log,
                                  session.session_id)
        assert result.epoch == 1

    def test_historical_trace_is_receipt_backed(self, fresh_deployment):
        """Non-repudiation survives rotation: the member's epoch-0
        receipt still backs a trace of an epoch-0 session."""
        deployment = fresh_deployment()
        old_session, _ = deployment.connect("alice", "MR-1")
        deployment.rotate_epoch()
        trace = deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            old_session.session_id)
        assert trace.receipt_backed

    def test_cross_epoch_trace_of_excluded_user(self, fresh_deployment):
        """Even a user dropped at rotation stays accountable for their
        PRE-rotation sessions."""
        deployment = fresh_deployment()
        old_session, _ = deployment.connect("bob", "MR-1")
        deployment.rotate_epoch(exclude=["bob"])
        trace = deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, deployment.gms,
            old_session.session_id)
        assert trace.identity.name == "bob"

    def test_unknown_signature_fails_in_all_epochs(self, fresh_deployment,
                                                   group):
        import random
        deployment = fresh_deployment()
        deployment.rotate_epoch()
        foreign_gpk, foreign_master = groupsig.keygen_master(
            group, random.Random(12321))
        foreign_key = groupsig.issue_member_key(
            group, foreign_master, 7, (1, 1), random.Random(2))
        sig = groupsig.sign(foreign_gpk, foreign_key, b"alien",
                            rng=random.Random(3))
        with pytest.raises(AuditError):
            deployment.operator.audit_session(b"alien", sig)

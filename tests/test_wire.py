"""Tests for the Writer/Reader wire codec."""

import pytest

from repro.core.wire import Reader, Writer
from repro.errors import EncodingError


class TestWriterReader:
    def test_scalar_fields(self):
        blob = Writer().u8(7).u32(1000).u64(2 ** 40).done()
        reader = Reader(blob)
        assert reader.u8() == 7
        assert reader.u32() == 1000
        assert reader.u64() == 2 ** 40
        reader.expect_end()

    def test_var_fields(self):
        blob = Writer().var(b"abc").var(b"").done()
        reader = Reader(blob)
        assert reader.var() == b"abc"
        assert reader.var() == b""
        reader.expect_end()

    def test_strings_utf8(self):
        blob = Writer().string("héllo").done()
        assert Reader(blob).string() == "héllo"

    def test_timestamps_millisecond_precision(self):
        blob = Writer().f64(1234.5678).done()
        assert abs(Reader(blob).f64() - 1234.5678) < 0.001

    def test_truncation_detected(self):
        blob = Writer().u32(5).done()
        reader = Reader(blob)
        reader.u32()
        with pytest.raises(EncodingError):
            reader.u8()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00\x01")
        reader.u8()
        with pytest.raises(EncodingError):
            reader.expect_end()

    def test_var_length_beyond_buffer_rejected(self):
        blob = Writer().u32(100).raw(b"short").done()
        with pytest.raises(EncodingError):
            Reader(blob).var()

    def test_remaining(self):
        reader = Reader(b"\x00" * 10)
        reader.raw(3)
        assert reader.remaining() == 7

    def test_chaining(self):
        blob = Writer().u8(1).u8(2).u8(3).done()
        assert blob == b"\x01\x02\x03"

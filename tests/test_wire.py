"""Tests for the Writer/Reader wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import MAX_TIMESTAMP, Reader, Writer, quantize_ts
from repro.errors import EncodingError


class TestWriterReader:
    def test_scalar_fields(self):
        blob = Writer().u8(7).u32(1000).u64(2 ** 40).done()
        reader = Reader(blob)
        assert reader.u8() == 7
        assert reader.u32() == 1000
        assert reader.u64() == 2 ** 40
        reader.expect_end()

    def test_var_fields(self):
        blob = Writer().var(b"abc").var(b"").done()
        reader = Reader(blob)
        assert reader.var() == b"abc"
        assert reader.var() == b""
        reader.expect_end()

    def test_strings_utf8(self):
        blob = Writer().string("héllo").done()
        assert Reader(blob).string() == "héllo"

    def test_timestamps_millisecond_precision(self):
        blob = Writer().f64(1234.5678).done()
        assert abs(Reader(blob).f64() - 1234.5678) < 0.001

    def test_truncation_detected(self):
        blob = Writer().u32(5).done()
        reader = Reader(blob)
        reader.u32()
        with pytest.raises(EncodingError):
            reader.u8()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00\x01")
        reader.u8()
        with pytest.raises(EncodingError):
            reader.expect_end()

    def test_var_length_beyond_buffer_rejected(self):
        blob = Writer().u32(100).raw(b"short").done()
        with pytest.raises(EncodingError):
            Reader(blob).var()

    def test_remaining(self):
        reader = Reader(b"\x00" * 10)
        reader.raw(3)
        assert reader.remaining() == 7

    def test_chaining(self):
        blob = Writer().u8(1).u8(2).u8(3).done()
        assert blob == b"\x01\x02\x03"


class TestIntegerRanges:
    """Out-of-range values must raise EncodingError, never OverflowError."""

    @pytest.mark.parametrize("field,limit", [
        ("u8", 1 << 8), ("u32", 1 << 32), ("u64", 1 << 64)])
    def test_too_large_rejected(self, field, limit):
        with pytest.raises(EncodingError):
            getattr(Writer(), field)(limit)
        with pytest.raises(EncodingError):
            getattr(Writer(), field)(1 << 80)

    @pytest.mark.parametrize("field", ["u8", "u32", "u64"])
    def test_negative_rejected(self, field):
        with pytest.raises(EncodingError):
            getattr(Writer(), field)(-1)

    @pytest.mark.parametrize("field,limit", [
        ("u8", 1 << 8), ("u32", 1 << 32), ("u64", 1 << 64)])
    def test_boundary_values_roundtrip(self, field, limit):
        blob = getattr(Writer(), field)(0)
        blob = getattr(blob, field)(limit - 1).done()
        reader = Reader(blob)
        assert getattr(reader, field)() == 0
        assert getattr(reader, field)() == limit - 1
        reader.expect_end()

    def test_non_int_rejected(self):
        with pytest.raises(EncodingError):
            Writer().u32(1.5)


class TestTimestampEncoding:
    """f64 rejects negative/non-finite values instead of wrapping."""

    def test_negative_timestamp_rejected(self):
        with pytest.raises(EncodingError):
            Writer().f64(-1.5)

    def test_sub_millisecond_negative_rejected(self):
        with pytest.raises(EncodingError):
            Writer().f64(-0.0004)

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf")])
    def test_non_finite_rejected(self, value):
        with pytest.raises(EncodingError):
            Writer().f64(value)

    def test_beyond_wire_range_rejected(self):
        with pytest.raises(EncodingError):
            Writer().f64(MAX_TIMESTAMP * 2)

    def test_negative_zero_is_zero(self):
        assert Reader(Writer().f64(-0.0).done()).f64() == 0.0

    @given(st.floats(min_value=0.0, max_value=2 ** 40,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200)
    def test_roundtrip_is_quantization(self, value):
        """decode(encode(t)) == quantize_ts(t) for every legal t."""
        decoded = Reader(Writer().f64(value).done()).f64()
        assert decoded == quantize_ts(value)
        # Half-millisecond quantization error, plus float-grid slack
        # that grows with magnitude (ulp(value * 1000) / 1000).
        assert abs(decoded - value) <= 0.0005 + value * 1e-12
        # Idempotent: a decoded timestamp re-encodes to the same bytes.
        assert Reader(Writer().f64(decoded).done()).f64() == decoded

    @given(st.integers(min_value=0, max_value=1 << 50))
    @settings(max_examples=200)
    def test_millisecond_boundary_roundtrip(self, millis):
        """Any exactly-representable wire value re-encodes bit-identically."""
        blob = Writer().u64(millis).done()
        value = Reader(blob).f64()
        assert Writer().f64(value).done() == blob

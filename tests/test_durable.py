"""Durable router store: journal round trips and crash recovery.

The write-ahead store must recover exactly the state that was synced
-- never a silently wrong list version, never a record spliced in from
another router's journal -- and ``MeshRouter.restore`` must rebuild a
router whose credentials, lists, and degraded-mode clockwork are
indistinguishable from one that was merely partitioned.
"""

import os
import random

import pytest

from repro import instrument, obs
from repro.core.durable import (
    DurableRouterStore,
    DurableState,
    FileStorage,
    MemoryStorage,
)
from repro.core.revocation import RevocationTagCache
from repro.core.router import MeshRouter
from repro.errors import DegradedModeError, EncodingError
from repro.wmn.simclock import EventLoop, SimClock


def make_store(sync_every=1, store_id="MR-1", **kwargs):
    return DurableRouterStore(MemoryStorage(), store_id,
                              sync_every=sync_every, **kwargs)


def seeded_store(**kwargs):
    store = make_store(**kwargs)
    store.initialize(DurableState(
        store_id="MR-1", epoch=3, gpk_blob=b"gpk", crl_blob=b"crl0",
        url_blob=b"url0", lists_fetched_at=123.5))
    return store


class TestStorageBackends:
    def test_memory_fsync_semantics(self):
        storage = MemoryStorage()
        storage.append(b"abc")
        storage.sync()
        storage.append(b"def")
        assert storage.read() == b"abcdef"
        assert storage.lose_unsynced() == 3
        assert storage.read() == b"abc"
        assert storage.size == 3

    def test_file_fsync_semantics(self, tmp_path):
        storage = FileStorage(str(tmp_path / "r.journal"))
        storage.append(b"abc")
        storage.sync()
        storage.append(b"def")
        assert storage.read() == b"abcdef"
        assert storage.lose_unsynced() == 3
        assert storage.read() == b"abc"

    def test_file_replace_is_atomic_rename(self, tmp_path):
        path = str(tmp_path / "r.journal")
        storage = FileStorage(path)
        storage.append(b"old contents")
        storage.replace(b"new")
        assert storage.read() == b"new"
        assert not os.path.exists(path + ".tmp")
        # Replaced data counts as synced: nothing to lose.
        assert storage.lose_unsynced() == 0

    def test_file_survives_reopen(self, tmp_path):
        path = str(tmp_path / "r.journal")
        FileStorage(path).append(b"abc")
        assert FileStorage(path).read() == b"abc"


class TestJournalRoundTrip:
    def test_snapshot_round_trip(self):
        store = seeded_store()
        reopened = DurableRouterStore(store.storage, "MR-1")
        info = reopened.load()
        assert info.clean and info.records_replayed == 0
        assert info.state == store.state

    def test_records_replay_in_order(self):
        store = seeded_store()
        store.record_lists(b"crl1", b"url1", 200.0)
        store.record_channel(channel_up=False, cut_off=False)
        store.record_checkpoint(3, 4, ((b"tok", b"tag"),))
        store.record_epoch(4, b"gpk4", b"crl2", b"url2", 300.0)
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.records_replayed == 4
        state = info.state
        assert (state.epoch, state.crl_blob, state.url_blob) \
            == (4, b"crl2", b"url2")
        assert state.lists_fetched_at == 300.0
        assert not state.channel_up
        # The epoch record invalidates tags derived under epoch 3.
        assert state.tag_epoch == 4 and state.tag_entries == ()
        assert state == store.state

    def test_fetched_at_is_bit_exact(self):
        # Writer.f64 quantizes to ms; the journal must not (a restart
        # would otherwise disagree with the no-crash run on staleness).
        value = 1_000_123.000456789
        store = seeded_store()
        store.record_lists(b"c", b"u", value)
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.state.lists_fetched_at == value

    def test_initialize_rejects_foreign_state(self):
        store = make_store()
        with pytest.raises(EncodingError):
            store.initialize(DurableState(store_id="MR-2"))

    def test_record_before_initialize_rejected(self):
        with pytest.raises(EncodingError):
            make_store().record_channel(True, False)


class TestCorruptionRecovery:
    def test_torn_tail_recovers_last_good_state(self):
        store = seeded_store()
        store.record_lists(b"crl1", b"url1", 200.0)
        good = store.storage.read()
        store.record_lists(b"crl2", b"url2", 300.0)
        # Tear the final record: keep its header, cut the payload.
        torn = store.storage.read()[:len(good) + 6]
        store.storage.replace(torn)
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert not info.clean
        assert info.tail_dropped == 6
        assert info.state.crl_blob == b"crl1"
        # The garbage was physically truncated.
        assert store.storage.read() == good

    def test_bit_flip_stops_replay_at_flip(self):
        store = seeded_store()
        store.record_lists(b"crl1", b"url1", 200.0)
        good = store.storage.read()
        store.record_lists(b"crl2", b"url2", 300.0)
        blob = bytearray(store.storage.read())
        blob[len(good) + 10] ^= 0xFF
        store.storage.replace(bytes(blob))
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert not info.clean
        assert info.state.crl_blob == b"crl1"

    def test_cross_store_splice_rejected(self):
        """A perfectly valid record from MR-2's journal never replays
        into MR-1's: the CRC is keyed over the store id."""
        victim = seeded_store()
        baseline = victim.storage.read()
        other = make_store(store_id="MR-2")
        other.initialize(DurableState(store_id="MR-2"))
        head = len(other.storage.read())
        other.record_lists(b"evil-crl", b"evil-url", 999.0)
        spliced = other.storage.read()[head:]
        victim.storage.append(spliced)
        info = DurableRouterStore(victim.storage, "MR-1").load()
        assert info.state.crl_blob == b"crl0"
        assert not info.clean
        assert victim.storage.read() == baseline

    def test_same_store_replay_splice_rejected(self):
        """Re-appending one of this journal's own old records (right
        CRC, stale sequence number) stops the replay there."""
        store = seeded_store()
        head = len(store.storage.read())
        store.record_lists(b"crl1", b"url1", 200.0)
        first_record = store.storage.read()[head:]
        store.record_lists(b"crl2", b"url2", 300.0)
        store.storage.append(first_record)   # replayed frame
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.state.crl_blob == b"crl2"
        assert not info.clean

    def test_no_snapshot_raises(self):
        store = make_store()
        store.storage.append(b"\x00" * 64)
        with pytest.raises(EncodingError):
            store.load()

    def test_empty_storage_raises(self):
        with pytest.raises(EncodingError):
            make_store().load()


class TestFsyncLoss:
    def test_unsynced_tail_lost_recovers_older_lists(self):
        store = seeded_store(sync_every=100)
        store.record_lists(b"crl1", b"url1", 200.0)
        store.sync()
        store.record_lists(b"crl2", b"url2", 300.0)
        assert store.storage.lose_unsynced() > 0
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.clean   # the loss is invisible: a shorter journal
        assert info.state.crl_blob == b"crl1"

    def test_sync_every_batches_fsyncs(self):
        with obs.collecting() as registry:
            store = seeded_store(sync_every=3)
            for i in range(6):
                store.record_channel(True, False)
            assert registry.counter_value("durable.syncs_total") == 2
        assert store.storage.lose_unsynced() == 0


class TestCompaction:
    def test_auto_compaction_preserves_state(self):
        store = seeded_store(compact_every=4)
        for i in range(10):
            store.record_lists(b"crl%d" % i, b"url%d" % i, float(i))
        size_after = store.storage.size
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.state.crl_blob == b"crl9"
        assert info.state == store.state
        # Compaction bounded the journal: an identical store with
        # compaction disabled is strictly larger.
        unbounded = seeded_store(compact_every=0)
        for i in range(10):
            unbounded.record_lists(b"crl%d" % i, b"url%d" % i, float(i))
        assert size_after < unbounded.storage.size

    def test_manual_compact_then_append(self):
        store = seeded_store()
        store.record_lists(b"crl1", b"url1", 200.0)
        store.compact()
        store.record_channel(False, False)
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.state.crl_blob == b"crl1"
        assert not info.state.channel_up


class TestRouterRestore:
    def _clocked(self):
        loop = EventLoop(start=1_000_000.0)
        return loop, SimClock(loop)

    def test_restore_matches_original(self, fresh_deployment):
        loop, clock = self._clocked()
        deployment = fresh_deployment(clock=clock)
        router = deployment.routers["MR-1"]
        store = make_store()
        router.attach_durable(store)
        deployment.operator.revoke_user_key(
            deployment.users["bob"].credentials["University Z"].index)
        router.refresh_lists()
        restored = MeshRouter.restore(store, deployment.operator,
                                      clock=clock,
                                      rng=random.Random(9))
        assert restored.list_versions() == router.list_versions()
        assert restored.certificate.encode() \
            == router.certificate.encode()
        assert restored._lists_fetched_at == router._lists_fetched_at
        assert restored.recovery.clean

    def test_reprovision_consumes_no_operator_randomness(
            self, fresh_deployment):
        loop, clock = self._clocked()
        deployment = fresh_deployment(clock=clock)
        store = make_store()
        deployment.routers["MR-1"].attach_durable(store)
        before = deployment.operator.rng.getstate()
        MeshRouter.restore(store, deployment.operator, clock=clock)
        assert deployment.operator.rng.getstate() == before

    def test_degraded_restart_re_enters_refusal(self, fresh_deployment):
        """A router that reboots with old journaled lists and no
        operator channel must refuse service once the *journaled*
        fetch time ages past the grace window."""
        loop, clock = self._clocked()
        deployment = fresh_deployment(clock=clock)
        router = deployment.routers["MR-1"]
        store = make_store()
        router.attach_durable(store)
        router.set_operator_channel(False)
        loop.run_until(loop.now + 700.0)   # grace is 600s
        restored = MeshRouter.restore(store, deployment.operator,
                                      clock=clock)
        assert not restored._channel_up
        with pytest.raises(DegradedModeError):
            restored.make_beacon()

    def test_journaled_tags_restore_without_pairings(
            self, fresh_deployment):
        """Restart warm-up from the local journal: the restored
        router re-enables sharding with zero tag re-derivation."""
        loop, clock = self._clocked()
        deployment = fresh_deployment(clock=clock)
        router = deployment.routers["MR-1"]
        operator = deployment.operator
        operator.revoke_user_key(
            deployment.users["bob"].credentials["University Z"].index)
        router.refresh_lists()
        router.enable_sharded_revocation(
            num_shards=4, cache=RevocationTagCache())
        store = make_store()
        router.attach_durable(store)
        with instrument.count_operations() as ops:
            restored = MeshRouter.restore(
                store, operator, clock=clock,
                cache=RevocationTagCache())
        assert ops.total("pairing") == 0
        assert restored.tag_warm_fraction() == 1.0
        assert restored.revocation_state.num_shards == 4

    def test_restart_journal_keeps_appending(self, fresh_deployment):
        """Post-restore changes append to the recovered journal, so a
        second crash recovers the post-restart state."""
        loop, clock = self._clocked()
        deployment = fresh_deployment(clock=clock)
        router = deployment.routers["MR-1"]
        store = make_store()
        router.attach_durable(store)
        restored = MeshRouter.restore(store, deployment.operator,
                                      clock=clock)
        deployment.operator.revoke_user_key(
            deployment.users["alice"].credentials["Company X"].index)
        restored.refresh_lists()
        info = DurableRouterStore(store.storage, "MR-1").load()
        assert info.state.url_blob == restored._url.encode()

"""Unit + property tests for the F_p2 tower."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.pairing.fields import Fp2

P = 0xF06D3FEF70196720BA09F7338D7E8587

elements = st.builds(lambda a, b: Fp2(a, b, P),
                     st.integers(min_value=0, max_value=P - 1),
                     st.integers(min_value=0, max_value=P - 1))
nonzero = elements.filter(lambda x: not x.is_zero())


class TestBasics:
    def test_one_and_zero(self):
        assert Fp2.one(P).is_one()
        assert Fp2.zero(P).is_zero()
        assert not Fp2.one(P).is_zero()

    def test_i_squared_is_minus_one(self):
        i = Fp2(0, 1, P)
        assert i * i == Fp2(P - 1, 0, P)

    def test_reduction_on_construction(self):
        assert Fp2(P + 3, 2 * P + 5, P) == Fp2(3, 5, P)

    def test_mixed_modulus_rejected(self):
        with pytest.raises(ParameterError):
            Fp2(1, 1, P) * Fp2(1, 1, 7)

    def test_conjugate_is_frobenius(self):
        x = Fp2(123456, 789012, P)
        assert x.conjugate() == x ** P

    def test_norm_is_in_fp(self):
        x = Fp2(5, 7, P)
        assert x.norm() == (25 + 49) % P

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ParameterError):
            Fp2.zero(P).inverse()

    def test_pow_negative_exponent(self):
        x = Fp2(3, 4, P)
        assert x ** -2 == (x * x).inverse()

    def test_repr_and_hash(self):
        x = Fp2(1, 2, P)
        assert hash(x) == hash(Fp2(1, 2, P))
        assert x != Fp2(2, 1, P)


class TestFieldAxioms:
    @given(elements, elements, elements)
    @settings(max_examples=40)
    def test_mul_associative(self, x, y, z):
        assert (x * y) * z == x * (y * z)

    @given(elements, elements)
    @settings(max_examples=40)
    def test_mul_commutative(self, x, y):
        assert x * y == y * x

    @given(elements, elements, elements)
    @settings(max_examples=40)
    def test_distributive(self, x, y, z):
        assert x * (y + z) == x * y + x * z

    @given(nonzero)
    @settings(max_examples=40)
    def test_inverse(self, x):
        assert (x * x.inverse()).is_one()

    @given(elements)
    @settings(max_examples=40)
    def test_square_matches_mul(self, x):
        assert x.square() == x * x

    @given(elements)
    @settings(max_examples=40)
    def test_add_neg_is_zero(self, x):
        assert (x + (-x)).is_zero()

    @given(nonzero, st.integers(min_value=0, max_value=2 ** 32))
    @settings(max_examples=30)
    def test_pow_homomorphism(self, x, e):
        assert x ** (e + 1) == (x ** e) * x

    @given(nonzero)
    @settings(max_examples=20)
    def test_fermat_in_extension(self, x):
        """x^(p^2 - 1) = 1 for nonzero x (F_p2 multiplicative order)."""
        assert (x ** (P * P - 1)).is_one()

    @given(nonzero, nonzero)
    @settings(max_examples=30)
    def test_division(self, x, y):
        assert (x / y) * y == x

"""The full scheme on every shipped parameter set.

Most of the suite runs on TEST for speed; these tests confirm nothing
is accidentally TEST-specific -- including the 1024-bit preset.
"""

import random

import pytest

from repro.core import groupsig
from repro.pairing import PairingGroup


@pytest.mark.parametrize("preset", ["TEST", "SS256", "SS512"])
def test_sign_verify_roundtrip(preset):
    group = PairingGroup(preset)
    rng = random.Random(42)
    gpk, master = groupsig.keygen_master(group, rng)
    key = groupsig.issue_member_key(group, master, 77, (1, 1), rng)
    signature = groupsig.sign(gpk, key, b"cross-preset", rng=rng)
    groupsig.verify(gpk, b"cross-preset", signature)
    with pytest.raises(groupsig.InvalidSignature):
        groupsig.verify(gpk, b"tampered", signature)


@pytest.mark.parametrize("preset", ["TEST", "SS256", "SS512"])
def test_revocation_and_open(preset):
    group = PairingGroup(preset)
    rng = random.Random(43)
    gpk, master = groupsig.keygen_master(group, rng)
    key1 = groupsig.issue_member_key(group, master, 10, (1, 1), rng)
    key2 = groupsig.issue_member_key(group, master, 10, (1, 2), rng)
    signature = groupsig.sign(gpk, key1, b"m", rng=rng)
    with pytest.raises(groupsig.RevokedKeyError):
        groupsig.verify(gpk, b"m", signature,
                        url=[groupsig.RevocationToken(key1.a)])
    grt = [(groupsig.RevocationToken(key1.a), "one"),
           (groupsig.RevocationToken(key2.a), "two")]
    assert groupsig.open_signature(gpk, b"m", signature, grt) == "one"


def test_ss1024_smoke():
    """One full cycle on the 1024-bit preset (slowest path, run once)."""
    group = PairingGroup("SS1024")
    rng = random.Random(44)
    gpk, master = groupsig.keygen_master(group, rng)
    key = groupsig.issue_member_key(group, master, 5, (1, 1), rng)
    signature = groupsig.sign(gpk, key, b"big", rng=rng)
    groupsig.verify(gpk, b"big", signature)
    blob = signature.encode()
    assert len(blob) == groupsig.GroupSignature.encoded_size(group)
    groupsig.verify(gpk, b"big",
                    groupsig.GroupSignature.decode(group, blob))


@pytest.mark.parametrize("preset", ["TEST", "SS256"])
def test_deployment_on_preset(preset):
    from repro.core.deployment import Deployment
    deployment = Deployment.build(preset=preset, seed=5,
                                  groups={"Company X": 2},
                                  users=[("alice", ["Company X"])],
                                  routers=["MR-1"])
    user_session, router_session = deployment.connect("alice", "MR-1")
    assert router_session.receive(user_session.send(b"x")) == b"x"

"""Tests for encrypted credential wallets."""

import pytest

from repro.core import groupsig
from repro.core.wallet import open_wallet, seal_wallet
from repro.errors import EncodingError, SessionError

PASSWORD = b"correct horse battery staple"


@pytest.fixture(scope="module")
def wallet_blob(group, member_keys):
    credentials = {"Company X": member_keys["a1"],
                   "University Z": member_keys["b1"]}
    return seal_wallet(group, credentials, PASSWORD, iterations=100)


class TestRoundtrip:
    def test_open_recovers_credentials(self, group, member_keys,
                                       wallet_blob):
        recovered = open_wallet(group, wallet_blob, PASSWORD)
        assert set(recovered) == {"Company X", "University Z"}
        assert recovered["Company X"].a == member_keys["a1"].a
        assert recovered["Company X"].x == member_keys["a1"].x
        assert recovered["Company X"].index == member_keys["a1"].index

    def test_recovered_credentials_still_sign(self, group, gpk,
                                              wallet_blob, rng):
        recovered = open_wallet(group, wallet_blob, PASSWORD)
        signature = groupsig.sign(gpk, recovered["Company X"],
                                  b"from the wallet", rng=rng)
        groupsig.verify(gpk, b"from the wallet", signature)

    def test_empty_wallet(self, group):
        blob = seal_wallet(group, {}, PASSWORD, iterations=100)
        assert open_wallet(group, blob, PASSWORD) == {}

    def test_fresh_salts_give_distinct_blobs(self, group, member_keys):
        credentials = {"Company X": member_keys["a1"]}
        a = seal_wallet(group, credentials, PASSWORD, iterations=100)
        b = seal_wallet(group, credentials, PASSWORD, iterations=100)
        assert a != b


class TestRejection:
    def test_wrong_password(self, group, wallet_blob):
        with pytest.raises(SessionError):
            open_wallet(group, wallet_blob, b"wrong password")

    def test_empty_password_refused(self, group, member_keys):
        with pytest.raises(SessionError):
            seal_wallet(group, {"X": member_keys["a1"]}, b"")

    def test_tampered_ciphertext(self, group, wallet_blob):
        tampered = wallet_blob[:-1] + bytes([wallet_blob[-1] ^ 1])
        with pytest.raises(SessionError):
            open_wallet(group, tampered, PASSWORD)

    def test_tampered_header_iterations(self, group, wallet_blob):
        """Weakening the advertised work factor breaks the AAD."""
        tampered = bytearray(wallet_blob)
        tampered[8:12] = (1).to_bytes(4, "big")
        with pytest.raises((SessionError, EncodingError)):
            open_wallet(group, bytes(tampered), PASSWORD)

    def test_wrong_magic(self, group, wallet_blob):
        with pytest.raises(EncodingError):
            open_wallet(group, b"XXXXXXXX" + wallet_blob[8:], PASSWORD)

    def test_preset_mismatch(self, wallet_blob):
        from repro.pairing import PairingGroup
        other = PairingGroup("SS256")
        with pytest.raises(EncodingError):
            open_wallet(other, wallet_blob, PASSWORD)

    def test_truncated_blob(self, group, wallet_blob):
        with pytest.raises((EncodingError, SessionError)):
            open_wallet(group, wallet_blob[:20], PASSWORD)


class TestUserIntegration:
    def test_user_backup_and_restore(self, fresh_deployment):
        """Back up alice's wallet, wipe her credentials, restore,
        reconnect."""
        deployment = fresh_deployment()
        alice = deployment.users["alice"]
        blob = seal_wallet(deployment.group, alice.credentials,
                           PASSWORD, iterations=100)
        alice.credentials.clear()
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            deployment.connect("alice", "MR-1")
        alice.credentials.update(
            open_wallet(deployment.group, blob, PASSWORD))
        deployment.connect("alice", "MR-1")

"""Scheme setup (Section IV.A): NO, TTP, GM, user enrollment -- and the
knowledge-separation invariants the privacy model depends on."""

import pytest

from repro.core import groupsig
from repro.errors import AuthenticationError, InvalidSignature, ParameterError


class TestSetupFlow:
    def test_users_enrolled_and_credentialed(self, deployment):
        alice = deployment.users["alice"]
        assert set(alice.credentials) == {"Company X", "University Z"}
        bob = deployment.users["bob"]
        assert set(bob.credentials) == {"University Z"}

    def test_assembled_credentials_satisfy_sdh(self, deployment):
        """Users verify e(A, w*g2^(grp+x)) == e(g1,g2) before accepting;
        double-check from the outside."""
        group = deployment.group
        gpk = deployment.operator.gpk
        for user in deployment.users.values():
            for credential in user.credentials.values():
                lhs = group.pair(
                    credential.a,
                    gpk.w * (gpk.g2 ** credential.exponent_sum))
                assert lhs == group.pair(gpk.g1, gpk.g2)

    def test_same_group_members_share_grp(self, deployment):
        alice = deployment.users["alice"].credentials["University Z"]
        bob = deployment.users["bob"].credentials["University Z"]
        assert alice.grp == bob.grp
        assert alice.x != bob.x
        assert alice.index != bob.index

    def test_cross_group_grp_differs(self, deployment):
        alice = deployment.users["alice"]
        assert (alice.credentials["Company X"].grp
                != alice.credentials["University Z"].grp)

    def test_receipts_recorded(self, deployment):
        gm = deployment.gms["Company X"]
        index = deployment.users["alice"].credentials["Company X"].index
        assert gm.has_receipt(index)


class TestKnowledgeSeparation:
    """The late-binding property: who knows what after setup."""

    def test_gm_never_holds_a_values(self, fresh_deployment):
        deployment = fresh_deployment()
        gm = deployment.gms["Company X"]
        alice_a = deployment.users["alice"].credentials["Company X"].a
        # Walk every attribute the GM stores; A must appear nowhere.
        stored = [gm._pool, gm._assigned, gm._identities,
                  gm._member_receipts, gm._grp, gm._group_id]
        flattened = repr(stored)
        assert alice_a.encode().hex() not in flattened
        assert repr(alice_a.point.x) not in flattened

    def test_ttp_cannot_recover_a_or_x(self, fresh_deployment):
        deployment = fresh_deployment()
        credential = deployment.users["alice"].credentials["Company X"]
        share = deployment.ttp._shares[credential.index]
        # The share is A XOR x: equal to neither A's encoding nor x.
        assert share != credential.a.encode()
        assert int.from_bytes(share, "big") != credential.x

    def test_no_maps_token_to_group_not_uid(self, fresh_deployment):
        deployment = fresh_deployment()
        operator = deployment.operator
        alice_uid = deployment.users["alice"].identity.uid
        # NO's stores contain no uid anywhere.
        stored = repr([operator._grt, operator._groups,
                       operator._token_by_index])
        assert alice_uid.hex() not in stored

    def test_ttp_knows_delivery_uid(self, fresh_deployment):
        """TTP does learn who received which share (paper notes this);
        that alone cannot produce x or A."""
        deployment = fresh_deployment()
        credential = deployment.users["alice"].credentials["Company X"]
        uid = deployment.ttp.knows_uid_for(credential.index)
        assert uid == deployment.users["alice"].identity.uid


class TestMembershipMaintenance:
    def test_pool_exhaustion_and_refill(self, fresh_deployment):
        from repro.core.identity import RoleAttribute, UserIdentity
        from repro.core.user import NetworkUser
        deployment = fresh_deployment(groups={"Company X": 1},
                                      users=[("alice", ["Company X"])])
        gm = deployment.gms["Company X"]
        assert gm.pool_size == 0
        newcomer = NetworkUser(
            UserIdentity.build("dave", {"ssn": "7"},
                               [RoleAttribute("engineer", "Company X")]),
            deployment.operator.gpk, deployment.operator.public_key,
            clock=deployment.clock, rng=deployment.rng)
        with pytest.raises(ParameterError):
            newcomer.enroll_with(gm, deployment.ttp)
        # NO issues additional keys (membership addition).
        gm_bundle, ttp_bundle = deployment.operator.issue_additional_keys(
            "Company X", 2)
        gm.accept_bundle(gm_bundle, deployment.operator.public_key)
        deployment.ttp.store_bundle(ttp_bundle,
                                    deployment.operator.public_key)
        credential = newcomer.enroll_with(gm, deployment.ttp)
        groupsig.verify(deployment.operator.gpk,
                        b"t",
                        groupsig.sign(deployment.operator.gpk, credential,
                                      b"t", rng=deployment.rng))

    def test_duplicate_group_registration_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.operator.register_user_group("Company X", 4)

    def test_enrollment_requires_matching_role(self, fresh_deployment):
        """A user with no role at the entity cannot join its group."""
        from repro.core.identity import UserIdentity
        from repro.core.user import NetworkUser
        deployment = fresh_deployment()
        outsider = NetworkUser(
            UserIdentity.build("mallory", {"ssn": "0"}, []),
            deployment.operator.gpk, deployment.operator.public_key,
            clock=deployment.clock, rng=deployment.rng)
        with pytest.raises(ParameterError):
            outsider.enroll_with(deployment.gms["Company X"],
                                 deployment.ttp)


class TestBundleIntegrity:
    def test_tampered_gm_bundle_rejected(self, fresh_deployment):
        from repro.core.group_manager import GroupManager
        deployment = fresh_deployment()
        gm_bundle, _ttp_bundle = deployment.operator.register_user_group(
            "Fresh Org", 2)
        tampered = type(gm_bundle)(
            gm_bundle.group_id, gm_bundle.group_name, gm_bundle.grp + 1,
            gm_bundle.entries, gm_bundle.signature)
        gm = GroupManager("Fresh Org", rng=deployment.rng)
        with pytest.raises(InvalidSignature):
            gm.accept_bundle(tampered, deployment.operator.public_key)

    def test_bundle_addressing_enforced(self, fresh_deployment):
        from repro.core.group_manager import GroupManager
        deployment = fresh_deployment()
        gm_bundle, _ = deployment.operator.register_user_group(
            "Org A", 2)
        wrong_gm = GroupManager("Org B", rng=deployment.rng)
        with pytest.raises(ParameterError):
            wrong_gm.accept_bundle(gm_bundle,
                                   deployment.operator.public_key)

    def test_tampered_ttp_bundle_rejected(self, fresh_deployment):
        from repro.core.ttp import TrustedThirdParty
        deployment = fresh_deployment()
        _gm_bundle, ttp_bundle = deployment.operator.register_user_group(
            "Org C", 2)
        entries = list(ttp_bundle.entries)
        index, share = entries[0]
        entries[0] = (index, bytes([share[0] ^ 1]) + share[1:])
        tampered = type(ttp_bundle)(tuple(entries), ttp_bundle.signature)
        fresh_ttp = TrustedThirdParty(rng=deployment.rng)
        with pytest.raises(InvalidSignature):
            fresh_ttp.store_bundle(tampered,
                                   deployment.operator.public_key)

    def test_corrupt_share_rejected_by_user(self, fresh_deployment):
        """The user's SDH self-check catches a corrupted TTP share."""
        deployment = fresh_deployment(groups={"Company X": 4},
                                      users=[("alice", ["Company X"])])
        from repro.core.identity import RoleAttribute, UserIdentity
        from repro.core.user import NetworkUser
        victim = NetworkUser(
            UserIdentity.build("eve", {"ssn": "3"},
                               [RoleAttribute("engineer", "Company X")]),
            deployment.operator.gpk, deployment.operator.public_key,
            clock=deployment.clock, rng=deployment.rng)
        gm = deployment.gms["Company X"]
        enrollment_index = min(gm._pool)
        # Corrupt the stored share before delivery.
        original = deployment.ttp._shares[enrollment_index]
        corrupted = bytes([original[0], original[1] ^ 0xFF]) + original[2:]
        deployment.ttp._shares[enrollment_index] = corrupted
        with pytest.raises((AuthenticationError, Exception)):
            victim.enroll_with(gm, deployment.ttp)

"""Epidemic CRL/URL distribution (repro.wmn.gossip.ListGossip).

Anti-entropy must converge a stale overlay under loss, prefer deltas
over full lists, refuse tampered reconstructions, compose with the
fault injector (isolate/rejoin) and degraded mode, and never launder
fresh lists into a revoked (``_cut_off``) router.
"""

import random

import pytest

from repro.core.operator_entity import NetworkOperator
from repro.core.revocation import epoch_period
from repro.core.router import MeshRouter
from repro.errors import (
    CertificateError,
    DegradedModeError,
    SimulationError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, GossipFault
from repro.pairing import PairingGroup
from repro.wmn.gossip import ListGossip
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.simclock import EventLoop, SimClock
from repro.wmn.topology import TopologyConfig


def _overlay(router_count=8, seed=7, loss=0.0, revocations=2,
             fanout=2):
    """NO + ``router_count`` stale routers; only router 0 refreshed."""
    loop = EventLoop(start=1_000_000.0)
    clock = SimClock(loop)
    operator = NetworkOperator(PairingGroup("TEST"), clock=clock,
                               rng=random.Random(seed))
    routers = [MeshRouter(f"MR-{i}", operator, clock=clock,
                          rng=random.Random(seed + 1 + i))
               for i in range(router_count)]
    gm_bundle, _ = operator.register_user_group("Metro", 8)
    for index, _x in gm_bundle.entries[:revocations]:
        operator.revoke_user_key(index)
    routers[0].refresh_lists()
    gossip = ListGossip(loop, routers, round_period=30.0, fanout=fanout,
                        loss_probability=loss,
                        rng=random.Random(seed + 0x60551))
    return loop, clock, operator, routers, gossip


class TestConstruction:
    def test_parameter_validation(self):
        loop, _, _, routers, _ = _overlay(router_count=2)
        with pytest.raises(SimulationError):
            ListGossip(loop, routers, round_period=0.0)
        with pytest.raises(SimulationError):
            ListGossip(loop, routers, fanout=0)
        with pytest.raises(SimulationError):
            ListGossip(loop, routers, loss_probability=1.0)
        with pytest.raises(SimulationError):
            ListGossip(loop, routers + [routers[0]])

    def test_peer_topology_filters_unknown_ids(self):
        loop, _, _, routers, _ = _overlay(router_count=3)
        gossip = ListGossip(loop, routers,
                            peers={"MR-0": ["MR-1", "ghost"],
                                   "MR-1": ["MR-0"],
                                   "MR-2": []})
        assert gossip._peers["MR-0"] == ["MR-1"]
        assert gossip._peers["MR-2"] == []


class TestConvergence:
    def test_lossless_overlay_converges(self):
        _, _, operator, routers, gossip = _overlay(router_count=8)
        rounds = gossip.run_until_converged(max_rounds=16)
        target = (operator.issue_crl().version,
                  operator.issue_url().version)
        assert all(r.list_versions() == target for r in routers)
        assert rounds <= 16

    def test_converges_under_15pct_loss_within_bound(self):
        _, _, _, routers, gossip = _overlay(router_count=16, loss=0.15)
        rounds = gossip.run_until_converged(max_rounds=32)
        assert gossip.converged()
        assert rounds <= 32
        assert gossip.losses > 0

    def test_same_seed_replays_identically(self):
        results = []
        for _ in range(2):
            _, _, _, _, gossip = _overlay(router_count=12, seed=11,
                                          loss=0.15)
            rounds = gossip.run_until_converged(max_rounds=32)
            results.append((rounds, gossip.exchanges, gossip.losses,
                            gossip.deltas_applied, gossip.full_syncs))
        assert results[0] == results[1]

    def test_convergence_bound_raises(self):
        # 100% effective isolation: nothing can ever converge.
        _, _, _, routers, gossip = _overlay(router_count=4)
        for router in routers[1:]:
            gossip.isolate(router.router_id)
        gossip.rejoin(routers[1].router_id)
        gossip.loss_probability = 0.99
        with pytest.raises(SimulationError):
            gossip.run_until_converged(max_rounds=3)

    def test_scheduled_rounds_on_the_loop(self):
        loop, _, _, _, gossip = _overlay(router_count=6)
        gossip.start()
        loop.run_until(loop.now + 10 * 30.0)
        assert gossip.rounds >= 9
        assert gossip.converged()


class TestDeltaVsFull:
    def test_recent_peer_gets_delta(self):
        _, _, _, routers, gossip = _overlay(router_count=2)
        # Router 0 refreshed and remembers version 0 in its history.
        gossip.run_round()
        assert gossip.deltas_applied > 0
        assert gossip.full_syncs == 0

    def test_unknown_version_falls_back_to_full_list(self):
        loop = EventLoop(start=1_000_000.0)
        clock = SimClock(loop)
        operator = NetworkOperator(PairingGroup("TEST"), clock=clock,
                                   rng=random.Random(3))
        stale = MeshRouter("MR-stale", operator, clock=clock,
                           rng=random.Random(4))
        gm_bundle, _ = operator.register_user_group("Metro", 8)
        for index, _x in gm_bundle.entries[:2]:
            operator.revoke_user_key(index)
        # Fresh router built *after* the revocations: its bounded
        # history never contained version 0.
        fresh = MeshRouter("MR-fresh", operator, clock=clock,
                          rng=random.Random(5))
        assert fresh.url_delta_for(0) is None
        gossip = ListGossip(loop, [stale, fresh],
                            rng=random.Random(6))
        gossip.run_round()
        assert stale.list_versions() == fresh.list_versions()
        assert gossip.full_syncs > 0

    def test_cut_off_router_refuses_adoption(self):
        _, _, operator, routers, gossip = _overlay(router_count=3)
        revoked = routers[2]
        revoked.sever_operator_channel()
        gossip.run_until_converged(max_rounds=8)
        # The overlay converged -- without the revoked router, whose
        # lists stayed at version 0 (E7: no laundering via gossip).
        assert gossip.converged()
        assert revoked.list_versions() == (0, 0)
        assert not revoked.adopt_lists(crl=operator.issue_crl(),
                                       url=operator.issue_url())

    def test_adoption_is_version_monotonic_and_signed(self):
        _, _, operator, routers, gossip = _overlay(router_count=2)
        gossip.run_until_converged(max_rounds=8)
        follower = routers[1]
        current = follower.list_versions()
        # Re-offering what it already holds is a no-op...
        assert not follower.adopt_lists(crl=operator.issue_crl(),
                                        url=operator.issue_url())
        assert follower.list_versions() == current
        # ...and a forged (resigned-by-nobody) list is rejected.
        url = operator.issue_url()
        forged = type(url)(
            version=url.version + 1, issued_at=url.issued_at,
            update_period=url.update_period, tokens=url.tokens,
            signature=b"\x00" * len(url.signature))
        with pytest.raises(CertificateError):
            follower.adopt_lists(url=forged)
        assert follower.list_versions() == current


class TestFaultComposition:
    def test_isolate_and_rejoin_via_injector(self):
        _, _, _, routers, gossip = _overlay(router_count=6)
        plan = FaultPlan(seed=1, gossip=(
            GossipFault("isolate", router_id="MR-3"),))
        injector = FaultInjector(plan)
        injector.arm_gossip(gossip)
        assert gossip.isolated("MR-3")
        assert injector.counts["isolate"] == 1

        gossip.run_until_converged(max_rounds=8)
        assert gossip.converged()                       # reachable set
        assert not gossip.converged(include_isolated=True)
        assert routers[3].list_versions() == (0, 0)

        FaultInjector(FaultPlan(seed=2, gossip=(
            GossipFault("rejoin", router_id="MR-3"),))).arm_gossip(gossip)
        gossip.run_until_converged(max_rounds=8)
        assert gossip.converged(include_isolated=True)

    def test_scheduled_gossip_fault_fires_on_the_loop(self):
        loop, _, _, _, gossip = _overlay(router_count=4)
        plan = FaultPlan(seed=3, gossip=(
            GossipFault("isolate", at=50.0, router_id="MR-1"),))
        FaultInjector(plan).arm_gossip(gossip, loop=loop)
        assert not gossip.isolated("MR-1")
        loop.run_until(loop.now + 60.0)
        assert gossip.isolated("MR-1")

    def test_unknown_router_id_rejected(self):
        from repro.errors import FaultInjectionError
        _, _, _, _, gossip = _overlay(router_count=2)
        plan = FaultPlan(seed=4, gossip=(
            GossipFault("isolate", router_id="nope"),))
        with pytest.raises(FaultInjectionError):
            FaultInjector(plan).arm_gossip(gossip)

    def test_degraded_router_healed_within_grace(self):
        """A router cut from its backhaul ages toward refusal; gossip
        hands it authentically fresh lists and service continues."""
        loop, clock, operator, routers, gossip = _overlay(
            router_count=2, revocations=0)
        degraded = routers[1]
        degraded.set_operator_channel(False)
        assert degraded.degraded

        # Age past the grace window: the router fails closed.
        loop.run_until(loop.now + 650.0)
        with pytest.raises(DegradedModeError):
            degraded.make_beacon()

        # Fresh revocations published *now*; the connected router
        # fetches them, one anti-entropy exchange heals the degraded
        # one (adoption re-dates staleness to the lists' issue time).
        gm_bundle, _ = operator.register_user_group("Late", 4)
        operator.revoke_user_key(gm_bundle.entries[0][0])
        operator.provision_router("decoy")
        operator.revoke_router("decoy")
        routers[0].refresh_lists()
        gossip.run_until_converged(max_rounds=4)
        assert degraded.degraded            # channel is still down...
        degraded.make_beacon()              # ...but service resumed
        assert degraded.list_versions() == routers[0].list_versions()


class TestScenarioWiring:
    def test_gossip_and_sharded_revocation_knobs(self):
        scenario = Scenario(ScenarioConfig(
            preset="TEST", seed=5,
            topology=TopologyConfig(area_side=800.0, router_grid=2,
                                    user_count=4, seed=5),
            group_sizes=(("Company X", 8),),
            gossip_period=30.0, gossip_loss=0.1,
            sharded_revocation=True, revocation_shards=8))
        assert scenario.gossip is not None
        graph = scenario.topology.backbone
        for router_id, peers in scenario.gossip._peers.items():
            assert set(peers) <= set(graph.neighbors(router_id))
        period = epoch_period(scenario.deployment.operator.gpk.epoch)
        for sim in scenario.sim_routers.values():
            state = sim.router.revocation_state
            assert state is not None
            assert state.num_shards == 8
            assert sim.router.engine.auth_period == state.period == period
        for user in scenario.deployment.users.values():
            assert user.auth_period == period
        scenario.run(100.0)
        assert scenario.gossip.rounds >= 3

    def test_gossip_off_by_default(self):
        scenario = Scenario(ScenarioConfig(
            preset="TEST", seed=6,
            topology=TopologyConfig(area_side=800.0, router_grid=2,
                                    user_count=2, seed=6),
            group_sizes=(("Company X", 4),)))
        assert scenario.gossip is None
        for sim in scenario.sim_routers.values():
            assert sim.router.revocation_state is None

"""Tests for the AES-CTR + HMAC encrypt-then-MAC AEAD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import AeadKey, open_sealed, seal
from repro.errors import SessionError

KEY = b"\x42" * 32


class TestRoundtrip:
    def test_basic(self):
        k = AeadKey(KEY)
        assert k.open(k.seal(b"payload")) == b"payload"

    def test_with_aad(self):
        k = AeadKey(KEY)
        sealed = k.seal(b"payload", aad=b"header")
        assert k.open(sealed, aad=b"header") == b"payload"

    def test_empty_plaintext(self):
        k = AeadKey(KEY)
        assert k.open(k.seal(b"")) == b""

    def test_one_shot_helpers(self):
        assert open_sealed(KEY, seal(KEY, b"x", b"a"), b"a") == b"x"

    def test_nonces_are_fresh(self):
        k = AeadKey(KEY)
        assert k.seal(b"same") != k.seal(b"same")

    def test_explicit_nonce_is_deterministic(self):
        k = AeadKey(KEY)
        nonce = b"\x01" * 16
        assert k.seal(b"m", nonce=nonce) == k.seal(b"m", nonce=nonce)

    @given(st.binary(max_size=300), st.binary(max_size=50))
    @settings(max_examples=25)
    def test_property_roundtrip(self, plaintext, aad):
        k = AeadKey(KEY)
        assert k.open(k.seal(plaintext, aad=aad), aad=aad) == plaintext


class TestForgeryRejection:
    def test_tampered_ciphertext(self):
        k = AeadKey(KEY)
        sealed = bytearray(k.seal(b"secret"))
        sealed[20] ^= 1
        with pytest.raises(SessionError):
            k.open(bytes(sealed))

    def test_tampered_tag(self):
        k = AeadKey(KEY)
        sealed = bytearray(k.seal(b"secret"))
        sealed[-1] ^= 1
        with pytest.raises(SessionError):
            k.open(bytes(sealed))

    def test_tampered_nonce(self):
        k = AeadKey(KEY)
        sealed = bytearray(k.seal(b"secret"))
        sealed[0] ^= 1
        with pytest.raises(SessionError):
            k.open(bytes(sealed))

    def test_wrong_aad(self):
        k = AeadKey(KEY)
        with pytest.raises(SessionError):
            k.open(k.seal(b"m", aad=b"a"), aad=b"b")

    def test_wrong_key(self):
        sealed = AeadKey(KEY).seal(b"m")
        with pytest.raises(SessionError):
            AeadKey(b"\x43" * 32).open(sealed)

    def test_truncated_blob(self):
        k = AeadKey(KEY)
        with pytest.raises(SessionError):
            k.open(b"\x00" * 10)

    def test_aad_length_confusion_rejected(self):
        """aad=b'ab' + pt prefix must not collide with aad=b'a'."""
        k = AeadKey(KEY)
        sealed = k.seal(b"m", aad=b"ab")
        with pytest.raises(SessionError):
            k.open(sealed, aad=b"a")


class TestKeyValidation:
    def test_bad_key_size_rejected(self):
        with pytest.raises(SessionError):
            AeadKey(b"short")

    def test_bad_nonce_size_rejected(self):
        with pytest.raises(SessionError):
            AeadKey(KEY).seal(b"m", nonce=b"short")

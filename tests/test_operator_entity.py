"""Focused unit tests for the NetworkOperator entity."""

import pytest

from repro.core import groupsig
from repro.errors import AuditError, ParameterError


class TestRouterProvisioning:
    def test_provisioned_cert_validates(self, fresh_deployment):
        deployment = fresh_deployment()
        keypair, cert = deployment.operator.provision_router("MR-extra")
        cert.validate(deployment.operator.public_key,
                      deployment.clock.now())
        assert cert.router_id == "MR-extra"
        assert cert.public_key == keypair.public

    def test_validity_horizon(self, fresh_deployment):
        deployment = fresh_deployment()
        _kp, cert = deployment.operator.provision_router(
            "MR-short", validity=100.0)
        now = deployment.clock.now()
        cert.validate(deployment.operator.public_key, now + 99.0)
        from repro.errors import CertificateError
        with pytest.raises(CertificateError):
            cert.validate(deployment.operator.public_key, now + 101.0)

    def test_revoke_unknown_router_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.operator.revoke_router("MR-ghost")

    def test_crl_version_bumps_on_revocation(self, fresh_deployment):
        deployment = fresh_deployment()
        v0 = deployment.operator.issue_crl().version
        deployment.operator.provision_router("MR-victim")
        deployment.operator.revoke_router("MR-victim")
        crl = deployment.operator.issue_crl()
        assert crl.version == v0 + 1
        assert crl.is_revoked("MR-victim")


class TestKeyIssuance:
    def test_revoke_unknown_index_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.operator.revoke_user_key((99, 99))

    def test_grt_grows_with_issuance(self, fresh_deployment):
        deployment = fresh_deployment(groups={"Company X": 3},
                                      users=[("alice", ["Company X"])])
        operator = deployment.operator
        before = operator.grt_size
        operator.issue_additional_keys("Company X", 2)
        assert operator.grt_size == before + 2

    def test_additional_keys_unknown_group_rejected(self,
                                                    fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.operator.issue_additional_keys("Nonexistent", 1)

    def test_zero_member_batch_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.operator.register_user_group("Empty Org", 0)

    def test_group_name_lookup(self, fresh_deployment):
        deployment = fresh_deployment()
        assert deployment.operator.group_name(1) in ("Company X",
                                                     "University Z")


class TestListIssuance:
    def test_lists_carry_current_time(self, fresh_deployment):
        deployment = fresh_deployment()
        deployment.clock.advance(123.0)
        crl = deployment.operator.issue_crl()
        url = deployment.operator.issue_url()
        assert crl.issued_at == deployment.clock.now()
        assert url.issued_at == deployment.clock.now()

    def test_lists_signed_by_npk(self, fresh_deployment):
        deployment = fresh_deployment()
        crl = deployment.operator.issue_crl()
        url = deployment.operator.issue_url()
        crl.validate(deployment.operator.public_key,
                     deployment.clock.now())
        url.validate(deployment.operator.public_key,
                     deployment.clock.now())

    def test_url_reflects_revocations_in_order(self, fresh_deployment):
        deployment = fresh_deployment()
        index_a = deployment.users["alice"].credentials["Company X"].index
        index_b = deployment.users["bob"].credentials[
            "University Z"].index
        token_a = deployment.operator.revoke_user_key(index_a)
        token_b = deployment.operator.revoke_user_key(index_b)
        url = deployment.operator.issue_url()
        assert [t.a for t in url.tokens] == [token_a.a, token_b.a]


class TestAuditEdgeCases:
    def test_audit_fails_for_foreign_signature(self, fresh_deployment,
                                               group, rng):
        deployment = fresh_deployment()
        foreign_gpk, foreign_master = groupsig.keygen_master(group, rng)
        foreign_key = groupsig.issue_member_key(group, foreign_master,
                                                1, (1, 1), rng)
        signature = groupsig.sign(foreign_gpk, foreign_key, b"alien",
                                  rng=rng)
        with pytest.raises(AuditError):
            deployment.operator.audit_session(b"alien", signature)

    def test_audit_result_index_roundtrip(self, fresh_deployment):
        deployment = fresh_deployment()
        session, _ = deployment.connect("alice", "MR-1")
        result = deployment.operator.audit_session(
            deployment.routers["MR-1"].auth_log[-1].signed_payload,
            deployment.routers["MR-1"].auth_log[-1].group_signature)
        index = deployment.operator.audit_result_index(result)
        assert index == deployment.users["alice"].credentials[
            "Company X"].index

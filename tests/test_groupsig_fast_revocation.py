"""Tests for the period-based O(1) revocation-check variant (V.C)."""

import random

import pytest

from repro import instrument
from repro.core import groupsig

PERIOD = b"2026-07-06T00"
MSG = b"fast-revocation-message"


class TestPeriodMode:
    def test_sign_verify_with_period(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        groupsig.verify(gpk, MSG, sig, period=PERIOD)

    def test_wrong_period_rejected(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        with pytest.raises(groupsig.InvalidSignature):
            groupsig.verify(gpk, MSG, sig, period=b"other-period")

    def test_period_mode_incompatible_with_default(self, gpk, member_keys,
                                                   rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        with pytest.raises(groupsig.InvalidSignature):
            groupsig.verify(gpk, MSG, sig)   # no period


class TestRevocationTable:
    def test_detects_revoked_signer(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        table = groupsig.PeriodRevocationTable(
            gpk, [groupsig.RevocationToken(member_keys["a1"].a)], PERIOD)
        assert table.is_revoked(MSG, sig)

    def test_clears_unrevoked_signer(self, gpk, member_keys, rng):
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        table = groupsig.PeriodRevocationTable(
            gpk, [groupsig.RevocationToken(member_keys["a2"].a),
                  groupsig.RevocationToken(member_keys["b1"].a)], PERIOD)
        assert not table.is_revoked(MSG, sig)

    def test_check_cost_independent_of_url_size(self, gpk, member_keys,
                                                rng):
        """The whole point: 2 pairings regardless of |URL|."""
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        costs = []
        for url_names in (["a2"], ["a2", "b1", "b2"]):
            url = [groupsig.RevocationToken(member_keys[n].a)
                   for n in url_names]
            table = groupsig.PeriodRevocationTable(gpk, url, PERIOD)
            with instrument.count_operations() as ops:
                table.is_revoked(MSG, sig)
            costs.append(ops.pairings())
        assert costs[0] == costs[1] == 2

    def test_total_verify_cost_matches_paper(self, gpk, member_keys, rng):
        """6 exponentiations and 5 pairings (Section V.C)."""
        sig = groupsig.sign(gpk, member_keys["a1"], MSG, rng=rng,
                            period=PERIOD)
        table = groupsig.PeriodRevocationTable(
            gpk, [groupsig.RevocationToken(member_keys["a2"].a)], PERIOD)
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, MSG, sig, period=PERIOD)
            table.is_revoked(MSG, sig)
        assert ops.exponentiations() == 6
        assert ops.pairings() == 5


class TestLinkabilityTrade:
    def test_same_period_tags_link(self, gpk, member_keys, rng):
        """Within a period, one signer's tags repeat (the privacy cost)."""
        sig1 = groupsig.sign(gpk, member_keys["a1"], b"m1", rng=rng,
                             period=PERIOD)
        sig2 = groupsig.sign(gpk, member_keys["a1"], b"m2", rng=rng,
                             period=PERIOD)
        tag1 = groupsig.revocation_tag(gpk, b"m1", sig1, period=PERIOD)
        tag2 = groupsig.revocation_tag(gpk, b"m2", sig2, period=PERIOD)
        assert tag1 == tag2

    def test_different_signers_tags_differ(self, gpk, member_keys, rng):
        sig1 = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng,
                             period=PERIOD)
        sig2 = groupsig.sign(gpk, member_keys["a2"], b"m", rng=rng,
                             period=PERIOD)
        assert (groupsig.revocation_tag(gpk, b"m", sig1, period=PERIOD)
                != groupsig.revocation_tag(gpk, b"m", sig2, period=PERIOD))

    def test_across_periods_tags_unlink(self, gpk, member_keys, rng):
        """Fresh period, fresh generators: tags no longer match."""
        sig1 = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng,
                             period=b"epoch-1")
        sig2 = groupsig.sign(gpk, member_keys["a1"], b"m", rng=rng,
                             period=b"epoch-2")
        assert (groupsig.revocation_tag(gpk, b"m", sig1, period=b"epoch-1")
                != groupsig.revocation_tag(gpk, b"m", sig2,
                                           period=b"epoch-2"))

    def test_default_mode_tags_never_link(self, gpk, member_keys, rng):
        """Per-signature generators: even one signer's tags differ."""
        sig1 = groupsig.sign(gpk, member_keys["a1"], b"m1", rng=rng)
        sig2 = groupsig.sign(gpk, member_keys["a1"], b"m2", rng=rng)
        assert (groupsig.revocation_tag(gpk, b"m1", sig1)
                != groupsig.revocation_tag(gpk, b"m2", sig2))

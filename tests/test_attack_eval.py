"""Experiments E5-E7 as assertions: the paper's Section V.A claims."""

import pytest

from repro.analysis.attack_eval import (
    dos_campaign,
    injection_campaign,
    phishing_campaign,
)


@pytest.fixture(scope="module")
def injection_result():
    return injection_campaign(seed=11, user_count=3, duration=90.0)


class TestInjectionFiltering:
    """'such bogus data traffic will be all immediately filtered'"""

    def test_outsiders_filtered(self, injection_result):
        assert injection_result.outsider_injected > 0
        assert injection_result.outsider_accepted == 0

    def test_replays_filtered(self, injection_result):
        assert injection_result.replays_sent > 0
        assert injection_result.replays_accepted == 0

    def test_revoked_users_filtered(self, injection_result):
        assert injection_result.revoked_attempts > 0
        assert injection_result.revoked_accepted == 0

    def test_bogus_data_frames_filtered(self, injection_result):
        assert injection_result.bogus_data_frames > 0
        assert injection_result.bogus_data_accepted == 0

    def test_legitimate_users_unaffected(self, injection_result):
        assert (injection_result.legit_accepted
                == injection_result.legit_attempted > 0)


@pytest.fixture(scope="module")
def phishing_result():
    return phishing_campaign(crl_update_period=120.0, revoke_at=100.0,
                             duration=420.0, seed=23, user_count=3)


class TestPhishingWindow:
    """'cheated ... only for up to (inverse of the update frequency -
    (current time - last periodical update time)) time period'"""

    def test_phisher_collects_victims_before_revocation(self,
                                                        phishing_result):
        assert phishing_result.victims_before_revocation > 0

    def test_window_bounded_by_crl_period(self, phishing_result):
        assert (phishing_result.observed_window
                <= phishing_result.paper_bound)

    def test_phishing_eventually_stops(self, phishing_result):
        """No victims beyond the bound: the stale CRL gives it away."""
        if phishing_result.last_victim_at is not None:
            run_end = 1_000_000.0 + 420.0
            assert phishing_result.last_victim_at < run_end - 60.0

    def test_fresh_rogue_router_gets_nobody(self, phishing_result):
        """A never-provisioned rogue cannot phish even one user."""
        assert phishing_result.rogue_victims == 0


class TestDosDefense:
    """Client puzzles keep legitimate users served under flood."""

    def test_puzzles_cut_router_cpu(self):
        without = dos_campaign(flood_rate=30.0, puzzles=False,
                               duration=45.0, seed=31, user_count=2)
        with_puzzles = dos_campaign(flood_rate=30.0, puzzles=True,
                                    difficulty=14, duration=45.0,
                                    seed=31, user_count=2)
        assert (with_puzzles.router_cpu_busy
                < without.router_cpu_busy * 0.7)

    def test_attacker_rate_collapses_under_puzzles(self):
        result = dos_campaign(flood_rate=30.0, puzzles=True,
                              difficulty=14, duration=45.0, seed=32,
                              user_count=2)
        assert result.attacker_puzzle_limited > result.attacker_sent

    def test_legit_users_connect_despite_attack(self):
        result = dos_campaign(flood_rate=30.0, puzzles=True,
                              difficulty=10, duration=60.0, seed=33,
                              user_count=2)
        assert result.legit_success_rate == 1.0

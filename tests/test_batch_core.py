"""The batch verification core: soundness, bit-identity, and kernels.

Pins for the randomized multi-pairing batch core and its satellites:

* **Adversarial cancellation.**  Two tampered SDH member keys whose
  pairing error terms cancel in an *unrandomized* product equation are
  both caught by the randomized ``batch_pairing_check`` and localized
  by ``validate_member_keys_batch``'s bisection.
* **Bit-identity.**  ``batch_core.classify_item`` matches the serial
  reference classifier on chaos batches (seeds 101/202/303): outcome
  type, error message, ``token_index``, and replayed operation counts.
* **Accounting.**  ``pair_product`` bills one pairing per *evaluated*
  term; degenerate (identity) terms are free -- the regression pin for
  the earlier bill-len(terms) over-count.
* **Scan table cache.**  The Eq.3 ``u_table`` memoizes on the
  generator context, so repeat scans never pay the build twice.
* **Kernel identity.**  ``clear_cofactor_fast``, ``hash_h0_fast`` and
  the split-exponent ``unitary_tag_is_one`` agree bit for bit with
  their reference implementations, and ``_h_split``'s exactness
  condition ``h % gcd(2^s - t, p+1) == 0`` holds where the split is
  used.
* **Pool auto-sizing.**  ``VerifierPool(processes=None)`` engages
  auto-serial on 1-core hosts and sizes from the host elsewhere.
"""

import math
import random
from dataclasses import replace

import pytest

from repro import instrument
from repro.core import batch_core, groupsig
from repro.core import verifier_pool
from repro.errors import InvalidSignature, ParameterError, RevokedKeyError
from repro.pairing import PairingGroup
from repro.pairing import fastpath, hashing


@pytest.fixture(scope="module")
def ss512_curve():
    return PairingGroup("SS512").curve


def _tampered(signature, **fields):
    return replace(signature, **fields)


# ---------------------------------------------------------------------------
# pair_product / batch_pairing_check accounting
# ---------------------------------------------------------------------------

class TestPairProductAccounting:
    def test_bills_only_evaluated_terms(self, group, rng):
        a = group.random_g1(rng)
        b = group.g2 ** group.random_scalar(rng)
        identity = group.g1 ** 0
        expected = group.pair(a, b)
        expected = expected * expected
        with instrument.count_operations() as ops:
            product = group.pair_product([(a, b), (identity, b), (a, b)])
        assert ops.total("pairing") == 2
        assert product == expected

    def test_all_degenerate_terms_bill_nothing(self, group, rng):
        b = group.g2 ** group.random_scalar(rng)
        identity = group.g1 ** 0
        with instrument.count_operations() as ops:
            product = group.pair_product([(identity, b)])
        assert ops.total("pairing") == 0
        assert product.is_identity()

    def test_empty_product_raises(self, group):
        with pytest.raises(ParameterError):
            group.pair_product([])

    def test_batch_check_billing_convention(self, group, rng):
        a = group.random_g1(rng)
        b = group.g2 ** group.random_scalar(rng)
        identity = group.g1 ** 0
        expected = group.pair(a, b)
        checks = [([(a, b)], expected),
                  ([(a, b), (identity, b)], expected)]
        with instrument.count_operations() as ops:
            assert group.batch_pairing_check(checks, rng)
        # One pairing per evaluated term, one GT exp (delta) per check;
        # the shared Miller tail and single FE are wall-clock-only.
        assert ops.total("pairing") == 2
        assert ops.total("exp_gt") == 2


# ---------------------------------------------------------------------------
# Satellite 4: adversarial cancellation vs the randomized batch
# ---------------------------------------------------------------------------

class TestAdversarialCancellation:
    def _cancelling_pair(self, gpk, master, k1, k2):
        """Tamper two keys so their error terms cancel unrandomized.

        With ``s_i = gamma + grp_i + x_i`` the honest relations are
        ``e(A_i, g2^s_i) == e(g1, g2)``.  Shifting ``A_1`` by ``g1^e``
        and ``A_2`` by ``g1^f`` with ``e*s_1 + f*s_2 == 0 (mod r)``
        multiplies the two left sides by ``e(g1, g2)^(e*s_1)`` and its
        inverse: each equation is false, their plain product still
        holds.  Only an attacker who already knows ``gamma`` (here: the
        test, playing the network operator) can solve for ``f``, which
        is exactly the insider threat the randomized fold defends
        against.
        """
        order = gpk.group.order
        s1 = (master.gamma + k1.exponent_sum) % order
        s2 = (master.gamma + k2.exponent_sum) % order
        e = 123457
        f = -e * s1 * pow(s2, -1, order) % order
        bad1 = replace(k1, a=k1.a * gpk.g1 ** e)
        bad2 = replace(k2, a=k2.a * gpk.g1 ** f)
        return bad1, bad2

    def test_errors_cancel_without_randomization(self, scheme):
        gpk, master, keys = scheme
        group = gpk.group
        order = group.order
        bad1, bad2 = self._cancelling_pair(gpk, master, keys["a1"],
                                           keys["b2"])
        base = group.pair(group.g1, group.g2)
        sides = []
        for bad in (bad1, bad2):
            rhs = gpk.w * gpk.g2 ** (bad.exponent_sum % order)
            sides.append(group.pair(bad.a, rhs))
        # Individually false, jointly "true" under a naive delta=1 fold:
        # the construction this suite exists to catch.
        assert sides[0] != base and sides[1] != base
        assert sides[0] * sides[1] == base * base

    def test_randomized_batch_rejects_both(self, scheme):
        gpk, master, keys = scheme
        bad1, bad2 = self._cancelling_pair(gpk, master, keys["a1"],
                                           keys["b2"])
        results = groupsig.validate_member_keys_batch(
            gpk, [bad1, keys["a2"], bad2, keys["b1"]],
            rng=random.Random(404))
        assert results == [False, True, False, True]

    def test_randomized_fold_fails_directly(self, scheme):
        gpk, master, keys = scheme
        group = gpk.group
        order = group.order
        bad1, bad2 = self._cancelling_pair(gpk, master, keys["a1"],
                                           keys["b2"])
        base = gpk.engine.base_pairing()
        checks = []
        for bad in (bad1, bad2):
            rhs = gpk.w * gpk.g2 ** (bad.exponent_sum % order)
            checks.append(([(bad.a, rhs)], base))
        assert not group.batch_pairing_check(checks, random.Random(7))


# ---------------------------------------------------------------------------
# Bit-identity: classify_item vs the serial reference classifier
# ---------------------------------------------------------------------------

class TestBitIdentity:
    SEEDS = (101, 202, 303)

    def _chaos_batch(self, gpk, member_keys, seed):
        rng = random.Random(seed)
        names = sorted(member_keys)
        batch = []
        for index in range(10):
            name = rng.choice(names)
            message = b"chaos-%d-%d" % (seed, index)
            signature = groupsig.sign(gpk, member_keys[name], message,
                                      rng=rng)
            kind = rng.choice(("ok", "ok", "c", "s_x", "r"))
            if kind == "c":
                signature = _tampered(signature, c=(signature.c + 1)
                                      % gpk.group.order)
            elif kind == "s_x":
                signature = _tampered(signature, s_x=(signature.s_x + 1)
                                      % gpk.group.order)
            elif kind == "r":
                signature = _tampered(signature, r=(signature.r + 1)
                                      % gpk.group.order)
            batch.append((message, signature))
        return batch

    @pytest.mark.parametrize("seed", SEEDS)
    def test_classify_matches_serial_reference(self, gpk, member_keys,
                                               seed):
        url = [groupsig.RevocationToken(member_keys["a1"].a),
               groupsig.RevocationToken(member_keys["b1"].a)]
        outcomes = set()
        for message, signature in self._chaos_batch(gpk, member_keys,
                                                    seed):
            with instrument.count_operations() as fast_ops:
                fast = batch_core.classify_item(gpk, message, signature,
                                                url=url)
            with instrument.count_operations() as ref_ops:
                ref = groupsig._classify_one(gpk, message, signature, url,
                                             None, True, None, gpk.group)
            assert type(fast) is type(ref)
            assert str(fast) == str(ref)
            assert getattr(fast, "token_index", None) == \
                getattr(ref, "token_index", None)
            assert fast_ops.snapshot() == ref_ops.snapshot()
            outcomes.add(type(fast))
        # The chaos mix must actually exercise accept, reject and
        # revocation paths, or the identity above proves too little.
        assert outcomes == {type(None), InvalidSignature, RevokedKeyError}

    def test_period_mode_matches_serial_reference(self, gpk, member_keys):
        rng = random.Random(55)
        period = b"epoch-chaos"
        url = [groupsig.RevocationToken(member_keys["b1"].a)]
        for name in ("a1", "b1"):
            message = b"period chaos " + name.encode()
            signature = groupsig.sign(gpk, member_keys[name], message,
                                      rng=rng, period=period)
            with instrument.count_operations() as fast_ops:
                fast = batch_core.classify_item(gpk, message, signature,
                                                url=url, period=period)
            with instrument.count_operations() as ref_ops:
                ref = groupsig._classify_one(gpk, message, signature, url,
                                             period, True, None, gpk.group)
            assert type(fast) is type(ref)
            assert getattr(fast, "token_index", None) == \
                getattr(ref, "token_index", None)
            assert fast_ops.snapshot() == ref_ops.snapshot()

    def test_fallback_path_stays_exact(self, gpk, member_keys,
                                       monkeypatch):
        """A fast-path crash discards its tally and reruns serially."""
        rng = random.Random(66)
        message = b"fallback probe"
        signature = groupsig.sign(gpk, member_keys["a1"], message, rng=rng)

        def boom(*args, **kwargs):
            raise RuntimeError("kernel off its domain")

        monkeypatch.setattr(batch_core, "_classify_fast", boom)
        with instrument.count_operations() as ops:
            assert batch_core.classify_item(gpk, message, signature) is None
        with instrument.count_operations() as ref_ops:
            assert groupsig._classify_one(gpk, message, signature, (), None,
                                          True, None, gpk.group) is None
        assert ops.snapshot() == ref_ops.snapshot()


# ---------------------------------------------------------------------------
# Satellite 2: the Eq.3 u_table memoizes on the generator context
# ---------------------------------------------------------------------------

class TestScanTableCache:
    def test_u_table_built_once_per_context(self, gpk, member_keys):
        rng = random.Random(321)
        message = b"cache probe"
        signature = groupsig.sign(gpk, member_keys["a1"], message, rng=rng)
        # Two tokens: the tag rewrite (and with it the table) only
        # engages from the second token on.
        url = [groupsig.RevocationToken(member_keys["b1"].a),
               groupsig.RevocationToken(member_keys["b2"].a)]
        context = gpk.engine.generators(message, signature.r, None)
        assert context.u_table is None
        groupsig._scan_url(gpk, signature, url, context, gpk.engine)
        table = context.u_table
        assert table is not None
        groupsig._scan_url(gpk, signature, url, context, gpk.engine)
        assert context.u_table is table

    def test_cached_scan_counts_unchanged(self, gpk, member_keys):
        rng = random.Random(322)
        message = b"cache counts"
        signature = groupsig.sign(gpk, member_keys["a2"], message, rng=rng)
        url = [groupsig.RevocationToken(member_keys["b1"].a),
               groupsig.RevocationToken(member_keys["b2"].a)]
        context = gpk.engine.generators(message, signature.r, None)
        snapshots = []
        for _ in range(2):
            with instrument.count_operations() as ops:
                groupsig._scan_url(gpk, signature, url, context,
                                   gpk.engine)
            snapshots.append(ops.snapshot())
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["pairing"] == 2 * len(url)


# ---------------------------------------------------------------------------
# Kernel identity: fastpath vs reference, on both shipped presets
# ---------------------------------------------------------------------------

def _fp2_pow(a, b, exponent, p):
    """Reference square-and-multiply in F_p2 = F_p(i), i^2 = -1."""
    ra, rb = 1, 0
    while exponent:
        if exponent & 1:
            ra, rb = (ra * a - rb * b) % p, (ra * b + rb * a) % p
        a, b = (a * a - b * b) % p, 2 * a * b % p
        exponent >>= 1
    return ra, rb


def _random_unitary(curve, rng):
    """A uniform norm-1 element: w^(p-1) for random nonzero w."""
    p = curve.p
    while True:
        a, b = rng.randrange(p), rng.randrange(p)
        if a or b:
            break
    ninv = pow(a * a + b * b, p - 2, p)
    return (a * a - b * b) % p * ninv % p, -2 * a * b % p * ninv % p


class TestKernels:
    def _curves(self, group, ss512_curve):
        return (group.curve, ss512_curve)

    def test_h_split_exactness_condition(self, group, ss512_curve):
        for curve in self._curves(group, ss512_curve):
            split = fastpath._h_split(curve)
            if split is None:
                continue  # fallback path; nothing to verify
            s, tail = split
            t = int("1" + tail, 2) if tail else 0
            assert (1 << s) + t == curve.h
            d = (1 << s) - t
            # The soundness condition that makes the real-part compare
            # exact: every z with z^d == 1 already has z^h == 1.
            assert curve.h % math.gcd(d, curve.p + 1) == 0

    def test_ss512_uses_the_split(self, ss512_curve):
        assert fastpath._h_split(ss512_curve) is not None

    def test_unitary_tag_matches_full_power(self, group, ss512_curve):
        rng = random.Random(2718)
        for curve in self._curves(group, ss512_curve):
            for _ in range(40):
                z_a, z_b = _random_unitary(curve, rng)
                full = fastpath.unitary_pow_h(z_a, z_b, curve)
                assert fastpath.unitary_tag_is_one(z_a, z_b, curve) == \
                    (full == (1, 0))

    def test_unitary_tag_forced_hits(self, group, ss512_curve):
        rng = random.Random(31415)
        for curve in self._curves(group, ss512_curve):
            assert fastpath.unitary_tag_is_one(1, 0, curve)
            for _ in range(4):
                y = _random_unitary(curve, rng)
                # y^r has order dividing h = (p+1)/r: a forced tag hit.
                hit = _fp2_pow(y[0], y[1], curve.r, curve.p)
                assert fastpath.unitary_pow_h(*hit, curve) == (1, 0)
                assert fastpath.unitary_tag_is_one(*hit, curve)
                # y^h lands in the order-r subgroup: a miss unless 1.
                miss = fastpath.unitary_pow_h(y[0], y[1], curve)
                if miss != (1, 0):
                    assert not fastpath.unitary_tag_is_one(*miss, curve)

    def test_clear_cofactor_fast_matches_reference(self, group,
                                                   ss512_curve):
        rng = random.Random(9090)
        for curve in self._curves(group, ss512_curve):
            for _ in range(4):
                point = curve.random_point(rng)
                assert fastpath.clear_cofactor_fast(curve, point) == \
                    curve.clear_cofactor(point)

    def test_hash_h0_fast_matches_reference(self, group, ss512_curve):
        for curve in self._curves(group, ss512_curve):
            for index in range(4):
                data = b"h0 kernel identity %d" % index
                assert fastpath.hash_h0_fast(curve, data) == \
                    hashing.hash_h0(curve, data)


# ---------------------------------------------------------------------------
# Satellite 3: pool auto-sizing
# ---------------------------------------------------------------------------

class TestPoolAutoSizing:
    def test_one_core_engages_auto_serial(self, gpk, member_keys,
                                          monkeypatch):
        monkeypatch.setattr(verifier_pool, "available_cores", lambda: 1)
        rng = random.Random(9)
        message = b"auto-serial"
        signature = groupsig.sign(gpk, member_keys["a1"], message, rng=rng)
        with verifier_pool.VerifierPool(gpk, processes=None) as pool:
            assert pool.auto_serial
            assert pool.processes == 0
            assert pool.host_cores == 1
            assert not pool.is_parallel
            assert pool.verify_batch([(message, signature)]) == [None]

    def test_multi_core_sizes_from_host(self, gpk, monkeypatch):
        monkeypatch.setattr(verifier_pool, "available_cores", lambda: 2)
        with verifier_pool.VerifierPool(gpk, processes=None) as pool:
            assert not pool.auto_serial
            assert pool.processes == 2
            assert pool.host_cores == 2

    def test_explicit_processes_always_honored(self, gpk, monkeypatch):
        monkeypatch.setattr(verifier_pool, "available_cores", lambda: 1)
        with verifier_pool.VerifierPool(gpk, processes=2) as pool:
            assert not pool.auto_serial
            assert pool.processes == 2

"""Unit tests for repro.mathx.modular."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.mathx import (
    crt_pair,
    inv_mod,
    jacobi_symbol,
    legendre_symbol,
    sqrt_mod_p34,
)

P = 0xF06D3FEF70196720BA09F7338D7E8587  # 128-bit prime, 3 mod 4
Q = 104729                               # small prime, 1 mod 4


class TestInvMod:
    def test_basic_inverse(self):
        assert inv_mod(3, 7) == 5

    def test_inverse_roundtrip(self):
        for a in (2, 17, 12345, P - 2):
            assert a * inv_mod(a, P) % P == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            inv_mod(6, 9)

    def test_zero_raises(self):
        with pytest.raises(ParameterError):
            inv_mod(0, P)

    @given(st.integers(min_value=1, max_value=P - 1))
    @settings(max_examples=50)
    def test_property_inverse(self, a):
        assert a * inv_mod(a, P) % P == 1


class TestLegendre:
    def test_quadratic_residue(self):
        assert legendre_symbol(4, 7) == 1

    def test_non_residue(self):
        assert legendre_symbol(3, 7) == -1

    def test_zero(self):
        assert legendre_symbol(0, 7) == 0

    def test_squares_are_residues(self):
        for a in (2, 5, 99, 123456789):
            assert legendre_symbol(a * a % P, P) == 1


class TestJacobi:
    def test_matches_legendre_for_primes(self):
        for a in range(1, 20):
            assert jacobi_symbol(a, 7) == legendre_symbol(a, 7)

    def test_composite_modulus(self):
        # (2|15) = (2|3)(2|5) = (-1)(-1) = 1
        assert jacobi_symbol(2, 15) == 1

    def test_shared_factor_gives_zero(self):
        assert jacobi_symbol(6, 15) == 0

    def test_even_modulus_rejected(self):
        with pytest.raises(ParameterError):
            jacobi_symbol(3, 8)

    def test_multiplicative_in_numerator(self):
        n = 1001  # 7 * 11 * 13
        for a, b in ((2, 3), (5, 9), (10, 17)):
            assert (jacobi_symbol(a * b, n)
                    == jacobi_symbol(a, n) * jacobi_symbol(b, n))


class TestSqrtP34:
    def test_roundtrip(self):
        for a in (4, 9, 1234567):
            root = sqrt_mod_p34(a, P)
            assert root * root % P == a % P

    def test_non_residue_raises(self):
        # find a non-residue
        non_residue = next(a for a in range(2, 100)
                           if legendre_symbol(a, P) == -1)
        with pytest.raises(ParameterError):
            sqrt_mod_p34(non_residue, P)

    def test_requires_3_mod_4(self):
        with pytest.raises(ParameterError):
            sqrt_mod_p34(4, Q)

    @given(st.integers(min_value=1, max_value=P - 1))
    @settings(max_examples=50)
    def test_property_square_then_root(self, a):
        square = a * a % P
        root = sqrt_mod_p34(square, P)
        assert root in (a, P - a)


class TestCrt:
    def test_combination(self):
        value = crt_pair(2, 5, 3, 7)
        assert value % 5 == 2 and value % 7 == 3

    def test_range(self):
        assert 0 <= crt_pair(4, 5, 6, 7) < 35

    @given(st.integers(min_value=0, max_value=34))
    @settings(max_examples=35)
    def test_property_bijection(self, x):
        assert crt_pair(x % 5, 5, x % 7, 7) == x

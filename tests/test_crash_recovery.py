"""Crash/restart chaos and checkpoint warm-up security.

Tentpole acceptance (ISSUE): scenarios with kill/restart faults replay
bit-identically per seed; a restarted router recovers from its journal
(re-entering degraded mode when its recovered lists aged out); and the
signed shard-checkpoint warm-up admits only authentic checkpoints --
tampering, wrong signers, and revoked/cut-off routers all fail closed
into full tag re-derivation.
"""

import dataclasses
import random

import pytest

from repro import instrument, obs
from repro.core.operator_entity import NetworkOperator
from repro.core.protocols.user_router import RetryPolicy
from repro.core.revocation import RevocationTagCache
from repro.core.router import MeshRouter
from repro.errors import CertificateError, FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RouterFault,
    StorageFault,
)
from repro.pairing import PairingGroup
from repro.wmn.gossip import ListGossip
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.simclock import EventLoop, SimClock
from repro.wmn.topology import TopologyConfig

CHAOS_SEEDS = [101, 202, 303]

RETRY = RetryPolicy(initial_timeout=2.0, backoff_factor=2.0,
                    max_timeout=8.0, max_retries=4, jitter=0.1)


def crash_scenario(seed, **overrides):
    """A durable, sharded, gossiping 4-router city under 15% loss."""
    defaults = dict(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=6, seed=seed,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=0.15,
        retry_policy=RETRY,
        durable=True,
        sharded_revocation=True,
        gossip_period=20.0,
        gossip_checkpoints=True)
    defaults.update(overrides)
    scenario = Scenario(ScenarioConfig(**defaults))
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    return scenario


def crash_plan(seed, router_ids):
    """Kill/restart two routers on a stagger, with an fsync loss just
    before the first kill (the power-cut composition)."""
    first, second = router_ids[0], router_ids[-1]
    return FaultPlan(
        seed=seed,
        router=(RouterFault("kill", at=40.0, router_id=first),
                RouterFault("restart", at=90.0, router_id=first),
                RouterFault("kill", at=60.0, router_id=second),
                RouterFault("restart", at=130.0, router_id=second)),
        storage=(StorageFault("fsync_loss", at=39.0, router_id=first),))


class TestScenarioCrashChaos:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_kill_restart_replays_bit_identically(self, seed):
        """The headline acceptance criterion: the same (scenario seed,
        fault plan) replays to identical terminal state -- connection
        outcomes, per-router counters, list versions, fault tallies."""
        def run():
            scenario = crash_scenario(seed)
            ids = sorted(scenario.sim_routers)
            injector = FaultInjector(crash_plan(seed, ids))
            injector.arm_scenario(scenario)
            scenario.run(240.0)
            return {
                "connected": scenario.connected_fraction(),
                "router_metrics": scenario.router_metrics(),
                "user_metrics": scenario.user_metrics(),
                "versions": {rid: sim.router.list_versions()
                             for rid, sim in
                             scenario.sim_routers.items()},
                "recoveries": {
                    rid: sim.router.recovery.summary
                    for rid, sim in scenario.sim_routers.items()
                    if sim.router.recovery is not None},
                "injected": injector.snapshot(),
            }

        assert run() == run()

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_restart_recovers_from_journal(self, seed):
        scenario = crash_scenario(seed)
        ids = sorted(scenario.sim_routers)
        injector = FaultInjector(crash_plan(seed, ids))
        injector.arm_scenario(scenario)
        with obs.collecting() as registry:
            scenario.run(240.0)
            assert registry.counter_value("recovery.restores_total") == 2
            assert registry.counter_value("recovery.kills_total") == 2
        assert injector.counts["kill"] == 2
        assert injector.counts["restart"] == 2
        assert injector.counts["fsync_loss"] == 1
        for rid in (ids[0], ids[-1]):
            sim = scenario.sim_routers[rid]
            assert not sim.crashed
            assert sim.metrics["crashes"] == 1
            assert sim.metrics["restarts"] == 1
            assert sim.router.recovery is not None
            # The restarted router is a live gossip participant again.
            assert not scenario.gossip.isolated(rid)
            assert scenario.gossip.routers[rid] is sim.router

    def test_crash_faults_require_durable_scenario(self):
        scenario = crash_scenario(101, durable=False,
                                  gossip_checkpoints=False)
        rid = sorted(scenario.sim_routers)[0]
        injector = FaultInjector(FaultPlan(
            seed=1, router=(RouterFault("kill", at=5.0,
                                        router_id=rid),)))
        with pytest.raises(FaultInjectionError):
            injector.arm_scenario(scenario)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_partitioned_restart_reenters_degraded(self, seed):
        """Sever the backhaul, crash the router, restart it after its
        journaled lists aged past the grace window: it must come back
        *degraded* -- suppressed beacons, not resurrected freshness."""
        scenario = crash_scenario(seed, gossip_period=0.0,
                                  gossip_checkpoints=False)
        rid = sorted(scenario.sim_routers)[0]
        plan = FaultPlan(
            seed=seed,
            router=(RouterFault("sever_channel", at=10.0,
                                router_id=rid),
                    RouterFault("kill", at=20.0, router_id=rid),
                    RouterFault("restart", at=650.0, router_id=rid)))
        injector = FaultInjector(plan)
        injector.arm_scenario(scenario)
        scenario.run(700.0)
        sim = scenario.sim_routers[rid]
        assert not sim.crashed
        router = sim.router
        assert router.degraded
        # Staleness counts from the *journaled* fetch time, not the
        # restart time: the recovered lists are already out of grace.
        assert router.lists_age() > router.staleness_grace
        assert sim.metrics["beacons_suppressed"] >= 1

    def test_lose_unsynced_rolls_back_to_last_sync(self):
        """fsync-loss composition at the scenario surface: unsynced
        journal records die with the page cache, and the restart
        recovers the older (synced) state."""
        scenario = crash_scenario(101, durable_sync_every=100,
                                  gossip_period=0.0,
                                  gossip_checkpoints=False)
        rid = sorted(scenario.sim_routers)[0]
        store = scenario.durable_stores[rid]
        store.sync()
        synced_url = store.state.url_blob
        # An unsynced list update...
        sim = scenario.sim_routers[rid]
        scenario.deployment.operator.issue_url()   # keep NO in step
        sim.router.refresh_lists()
        assert scenario.lose_unsynced(rid) > 0
        scenario.kill_router(rid)
        scenario.restart_router(rid)
        assert scenario.sim_routers[rid].router._url.encode() \
            == synced_url


# ---------------------------------------------------------------------------
# Checkpoint warm-up security


def checkpoint_pair(seed=7, revocations=3, shards=4):
    """NO + a warm source router + a not-yet-sharded target, with
    ``revocations`` real URL entries."""
    loop = EventLoop(start=1_000_000.0)
    clock = SimClock(loop)
    operator = NetworkOperator(PairingGroup("TEST"), clock=clock,
                               rng=random.Random(seed))
    source = MeshRouter("MR-0", operator, clock=clock,
                        rng=random.Random(seed + 1))
    target = MeshRouter("MR-1", operator, clock=clock,
                        rng=random.Random(seed + 2))
    gm_bundle, _ = operator.register_user_group("Metro", 8)
    for index, _x in gm_bundle.entries[:revocations]:
        operator.revoke_user_key(index)
    source.refresh_lists()
    target.refresh_lists()
    source.enable_sharded_revocation(num_shards=shards,
                                     cache=RevocationTagCache())
    return loop, clock, operator, source, target


def tamper_tag(checkpoint):
    (token, tag), *rest = checkpoint.entries
    flipped = bytes([tag[0] ^ 1]) + tag[1:]
    return dataclasses.replace(checkpoint,
                               entries=((token, flipped), *rest))


class TestCheckpointSecurity:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_valid_checkpoint_warms_with_zero_pairings(self, seed):
        _loop, _clock, _op, source, target = checkpoint_pair(seed)
        checkpoint = source.make_tag_checkpoint()
        assert len(checkpoint.entries) == 3
        with instrument.count_operations() as ops:
            target.enable_sharded_revocation(
                num_shards=4, cache=RevocationTagCache(),
                warm_checkpoint=checkpoint)
        assert ops.total("pairing") == 0
        assert target.tag_warm_fraction() == 1.0
        # Tags are pure functions of (epoch, token): the warmed cache
        # agrees with the source's own derivations entry for entry.
        for token, tag in checkpoint.entries:
            assert target.revocation_state.cache.get(
                target.revocation_state.epoch, token) == tag

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tampered_tag_rejected_then_rederived(self, seed):
        _loop, _clock, _op, source, target = checkpoint_pair(seed)
        tampered = tamper_tag(source.make_tag_checkpoint())
        with obs.collecting() as registry, \
                instrument.count_operations() as ops:
            target.enable_sharded_revocation(
                num_shards=4, cache=RevocationTagCache(),
                warm_checkpoint=tampered)
            assert registry.counter_value(
                "gossip.checkpoint.rejected") == 1
        # Full re-derive fallback: every tag paid for honestly, and
        # the poisoned value never entered the cache.
        assert ops.total("pairing") == 3
        genuine = dict(source.make_tag_checkpoint().entries)
        state = target.revocation_state
        for token, tag in genuine.items():
            assert state.cache.get(state.epoch, token) == tag

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tampered_signature_raises(self, seed):
        _loop, _clock, _op, source, target = checkpoint_pair(seed)
        checkpoint = source.make_tag_checkpoint()
        forged = dataclasses.replace(
            checkpoint, signature=target.keypair.sign(
                checkpoint.signed_payload()))
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        with pytest.raises(CertificateError, match="bad signature"):
            target.adopt_tag_checkpoint(forged)

    def test_certificate_swap_rejected(self):
        _loop, _clock, _op, source, target = checkpoint_pair()
        checkpoint = source.make_tag_checkpoint()
        swapped = dataclasses.replace(
            checkpoint, certificate=target.certificate.encode())
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        with pytest.raises(CertificateError, match="names"):
            target.adopt_tag_checkpoint(swapped)

    def test_revoked_source_checkpoint_rejected(self):
        """A checkpoint from a router on the target's CRL fails the
        chain even though its signature is genuine."""
        _loop, _clock, operator, source, target = checkpoint_pair()
        checkpoint = source.make_tag_checkpoint()
        operator.revoke_router(source.router_id)
        target.refresh_lists()
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        with pytest.raises(CertificateError, match="revoked"):
            target.adopt_tag_checkpoint(checkpoint)

    def test_cut_off_router_neither_serves_nor_adopts(self):
        _loop, _clock, _op, source, target = checkpoint_pair()
        checkpoint = source.make_tag_checkpoint()
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        target.revocation_state.cache = RevocationTagCache()  # cold
        target.sever_operator_channel()
        assert target.adopt_tag_checkpoint(checkpoint) == 0
        source.sever_operator_channel()
        assert source.make_tag_checkpoint() is None

    def test_other_epoch_checkpoint_ignored_not_rejected(self):
        _loop, _clock, _op, source, target = checkpoint_pair()
        checkpoint = source.make_tag_checkpoint()
        stale = dataclasses.replace(checkpoint, epoch=checkpoint.epoch + 1)
        stale = dataclasses.replace(
            stale, signature=source.keypair.sign(stale.signed_payload()))
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        target.revocation_state.cache = RevocationTagCache()  # cold
        # Authentic but for another epoch: not an attack, just useless.
        assert target.adopt_tag_checkpoint(stale) == 0
        assert target.tag_warm_fraction() < 1.0


class TestCheckpointGossip:
    def _overlay(self, seed=7):
        loop, clock, operator, source, target = checkpoint_pair(seed)
        target.enable_sharded_revocation(num_shards=4,
                                         cache=RevocationTagCache())
        target.revocation_state.cache = RevocationTagCache()  # cold
        gossip = ListGossip(loop, [source, target], round_period=30.0,
                            fanout=1, rng=random.Random(seed),
                            checkpoints=True)
        return gossip, source, target

    def test_round_warms_cold_peer_without_pairings(self):
        gossip, _source, target = self._overlay()
        assert target.tag_warm_fraction() < 1.0
        with instrument.count_operations() as ops:
            gossip.run_round()
        assert gossip.checkpoints_offered >= 1
        assert gossip.checkpoints_adopted >= 1
        assert ops.total("pairing") == 0
        assert target.tag_warm_fraction() == 1.0
        # Warm peers are not re-offered: the checkpoint is pure
        # optimization and an up-to-date overlay goes quiet.
        offered = gossip.checkpoints_offered
        gossip.run_round()
        assert gossip.checkpoints_offered == offered

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_tamper_in_transit_rejected_and_counted(self, seed):
        gossip, _source, target = self._overlay(seed)
        gossip.checkpoint_filter = tamper_tag
        with obs.collecting() as registry:
            gossip.run_round()
            assert registry.counter_value(
                "gossip.checkpoint.rejected") >= 1
        assert gossip.checkpoints_rejected >= 1
        assert gossip.checkpoints_adopted == 0
        # The poisoned tags never landed: the target is still cold.
        assert target.tag_warm_fraction() < 1.0

"""Sharded URLs + the epoch tag cache (repro.core.revocation).

The contract under test: the sharded, cached fast path produces
*bit-identical* outcomes to the paper's serial Eq.3 first-match scan --
same accept/reject decision, same error message, same ``token_index``
-- for every URL ordering, duplicate tokens included; and the cache
invalidates strictly on epoch bumps and URL delta removals.
"""

import random

import pytest

from repro import instrument, obs
from repro.core import groupsig
from repro.core.certs import UrlDelta
from repro.core.groupsig import GroupPublicKey, RevocationToken
from repro.core.revocation import (
    RevocationState,
    RevocationTagCache,
    epoch_period,
    serial_scan_outcome,
    shard_of_tag,
)
from repro.errors import CertificateError, ParameterError, RevokedKeyError

CHAOS_SEEDS = (101, 202, 303)


def _outcome(fn):
    try:
        fn()
    except RevokedKeyError as exc:
        return exc
    return None


@pytest.fixture
def period(gpk):
    return epoch_period(gpk.epoch)


@pytest.fixture
def decoys(group, rng):
    return [RevocationToken(group.random_g1(rng)) for _ in range(12)]


class TestPrimitives:
    def test_epoch_period_distinct_and_deterministic(self):
        assert epoch_period(0) == epoch_period(0)
        assert epoch_period(0) != epoch_period(1)
        with pytest.raises(ParameterError):
            epoch_period(-1)

    def test_shard_of_tag_stable_and_in_range(self, rng):
        for _ in range(64):
            tag = bytes(rng.randrange(256) for _ in range(48))
            shard = shard_of_tag(tag, 16)
            assert 0 <= shard < 16
            assert shard == shard_of_tag(tag, 16)

    def test_shard_of_tag_rejects_bad_count(self):
        with pytest.raises(ParameterError):
            shard_of_tag(b"x", 0)

    def test_lookup_matches_explicit_shard_scan(self, gpk, decoys):
        state = RevocationState(gpk, num_shards=4)
        sharded = state.update(decoys, url_version=1)
        assert len(sharded) == len(decoys)
        assert sum(sharded.shard_sizes()) == len(decoys)
        for shard in sharded.shards:
            for entry in shard:
                assert sharded.lookup(entry.tag) \
                    == sharded.scan_shard(entry.tag)


class TestBitIdentity:
    """Sharded check vs the serial scan: identical, always."""

    def _signatures(self, gpk, member_keys, period, rng):
        revoked = groupsig.sign(gpk, member_keys["a1"], b"identity",
                                rng=rng, period=period)
        clean = groupsig.sign(gpk, member_keys["a2"], b"identity",
                              rng=rng, period=period)
        return revoked, clean

    def test_outcome_message_and_token_index(self, gpk, member_keys,
                                             period, decoys, rng):
        sig_revoked, sig_clean = self._signatures(gpk, member_keys,
                                                  period, rng)
        url = tuple(decoys) + (RevocationToken(member_keys["a1"].a),)
        state = RevocationState(gpk, num_shards=8)
        state.update(url, url_version=1)
        serial = serial_scan_outcome(gpk, b"identity", sig_revoked,
                                     url, period)
        sharded = _outcome(lambda: state.check(b"identity", sig_revoked))
        assert serial is not None and sharded is not None
        assert str(serial) == str(sharded)
        assert serial.token_index == sharded.token_index == len(decoys)
        assert serial_scan_outcome(gpk, b"identity", sig_clean,
                                   url, period) is None
        assert _outcome(lambda: state.check(b"identity", sig_clean)) is None

    def test_shuffled_orderings_chaos_seeds(self, gpk, member_keys,
                                            period, decoys, rng):
        sig_revoked, _ = self._signatures(gpk, member_keys, period, rng)
        cache = RevocationTagCache()
        for seed in CHAOS_SEEDS:
            url = list(decoys) + [RevocationToken(member_keys["a1"].a)]
            random.Random(seed).shuffle(url)
            state = RevocationState(gpk, num_shards=8, cache=cache)
            state.update(url, url_version=seed)
            serial = serial_scan_outcome(gpk, b"identity", sig_revoked,
                                         url, period)
            sharded = _outcome(
                lambda: state.check(b"identity", sig_revoked))
            assert serial is not None and sharded is not None
            assert str(serial) == str(sharded)
            assert serial.token_index == sharded.token_index

    def test_duplicate_token_reports_first_match(self, gpk, member_keys,
                                                 period, decoys, rng):
        sig_revoked, _ = self._signatures(gpk, member_keys, period, rng)
        token = RevocationToken(member_keys["a1"].a)
        url = (decoys[0], decoys[1], token, decoys[2], token, decoys[3])
        state = RevocationState(gpk, num_shards=8)
        state.update(url, url_version=1)
        serial = serial_scan_outcome(gpk, b"identity", sig_revoked,
                                     url, period)
        sharded = _outcome(lambda: state.check(b"identity", sig_revoked))
        assert serial is not None and sharded is not None
        assert serial.token_index == sharded.token_index == 2

    def test_epoch_rotation_rebalances_and_stays_identical(
            self, group, gpk, member_keys, period, decoys, rng):
        """Rotating the gpk re-derives every tag under the new epoch's
        generators; outcomes must track the new epoch's serial scan."""
        state = RevocationState(gpk, num_shards=8)
        url = tuple(decoys) + (RevocationToken(member_keys["a1"].a),)
        old = state.update(url, url_version=1)

        new_gpk = GroupPublicKey(group, gpk.w, epoch=gpk.epoch + 1)
        state.rotate(new_gpk, url=url, url_version=2)
        assert state.epoch == gpk.epoch + 1
        assert len(state.sharded) == len(old)
        # Same tokens, different epoch => every tag (and therefore the
        # shard layout) is re-derived, not carried over.
        old_tags = {e.tag for shard in old.shards for e in shard}
        new_tags = {e.tag for shard in state.sharded.shards
                    for e in shard}
        assert old_tags.isdisjoint(new_tags)

        new_period = epoch_period(new_gpk.epoch)
        sig = groupsig.sign(new_gpk, member_keys["a1"], b"rot", rng=rng,
                            period=new_period)
        serial = serial_scan_outcome(new_gpk, b"rot", sig, url,
                                     new_period)
        sharded = _outcome(lambda: state.check(b"rot", sig))
        assert serial is not None and sharded is not None
        assert str(serial) == str(sharded)
        assert serial.token_index == sharded.token_index == len(decoys)


class TestTagCache:
    def test_hit_miss_evict_counters(self):
        registry = obs.MetricsRegistry()
        previous = obs.install(registry)
        try:
            cache = RevocationTagCache(capacity=2)
            assert cache.get(0, b"A") is None
            cache.put(0, b"A", b"tag-a")
            assert cache.get(0, b"A") == b"tag-a"
            cache.put(0, b"B", b"tag-b")
            cache.put(0, b"C", b"tag-c")     # evicts the LRU entry
            assert len(cache) == 2
            assert registry.counter_value("revocation.cache.miss") == 1
            assert registry.counter_value("revocation.cache.hit") == 1
            assert registry.counter_value("revocation.cache.evict") == 1
        finally:
            obs.install(previous)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ParameterError):
            RevocationTagCache(capacity=0)

    def test_epoch_bump_strictly_invalidates(self, group, gpk, decoys):
        cache = RevocationTagCache()
        state = RevocationState(gpk, num_shards=4, cache=cache)
        state.update(decoys, url_version=1)
        assert len(cache) == len(decoys)
        new_gpk = GroupPublicKey(group, gpk.w, epoch=gpk.epoch + 1)
        state.rotate(new_gpk, url=decoys, url_version=2)
        # Only the new epoch's tags remain: the retired epoch's entries
        # were dropped, not aged out.
        assert len(cache) == len(decoys)
        for token in decoys:
            assert cache.get(gpk.epoch, token.encode()) is None
            assert cache.get(new_gpk.epoch, token.encode()) is not None

    def test_delta_removal_evicts_then_rederives(self, gpk, decoys):
        cache = RevocationTagCache()
        state = RevocationState(gpk, num_shards=4, cache=cache)
        state.update(decoys, url_version=1)

        # Warm rebuild: every tag hits, no pairings at all.
        with instrument.count_operations() as warm:
            state.update(decoys, url_version=2)
        assert warm.total("pairing") == 0

        # Remove one token: its cache entry is strictly evicted...
        survivor_urls = decoys[1:]
        state.update(survivor_urls, url_version=3)
        assert cache.get(gpk.epoch, decoys[0].encode()) is None

        # ...so a re-add re-derives exactly that one tag.
        with instrument.count_operations() as readd:
            state.update(decoys, url_version=4)
        assert readd.total("pairing") == 1

    def test_revoked_then_unrevoked_then_rerevoked(self, fresh_deployment):
        deployment = fresh_deployment()
        operator = deployment.operator
        bob_credential = deployment.users["bob"].credentials[
            "University Z"]
        period = epoch_period(operator.gpk.epoch)
        signature = groupsig.sign(operator.gpk, bob_credential, b"cycle",
                                  rng=deployment.rng, period=period)
        state = RevocationState(operator.gpk, num_shards=4)

        operator.revoke_user_key(bob_credential.index)
        url = operator.issue_url()
        state.update(url.tokens, url.version)
        revoked = _outcome(lambda: state.check(b"cycle", signature))
        assert isinstance(revoked, RevokedKeyError)
        assert revoked.token_index == 0

        operator.unrevoke_user_key(bob_credential.index)
        url = operator.issue_url()
        state.update(url.tokens, url.version)
        assert _outcome(lambda: state.check(b"cycle", signature)) is None

        operator.revoke_user_key(bob_credential.index)
        url = operator.issue_url()
        state.update(url.tokens, url.version)
        again = _outcome(lambda: state.check(b"cycle", signature))
        assert isinstance(again, RevokedKeyError)
        assert str(again) == str(revoked)


class TestScanMemoEpochGuard:
    def test_u_table_rebuilt_when_epoch_restamped(self, group, rng):
        """Regression: the serial scan's memoized ``u_table`` was keyed
        on the context alone; a context carried across an epoch restamp
        must rebuild the table instead of serving stale lines."""
        gpk, master = groupsig.keygen_master(group, rng)
        key = groupsig.issue_member_key(group, master, 31, (3, 1), rng)
        other = groupsig.issue_member_key(group, master, 31, (3, 2), rng)
        url = (RevocationToken(other.a), RevocationToken(key.a))
        period = b"guard-period"
        signature = groupsig.sign(gpk, key, b"guard", rng=rng,
                                  period=period)
        engine = gpk.engine
        context = engine.generators(b"guard", signature.r, period)

        with pytest.raises(RevokedKeyError):
            groupsig._scan_url(gpk, signature, url, context, engine)
        first_table = context.u_table
        assert first_table is not None
        assert context.u_table_epoch == 0

        object.__setattr__(gpk, "epoch", 3)
        with pytest.raises(RevokedKeyError) as excinfo:
            groupsig._scan_url(gpk, signature, url, context, engine)
        assert excinfo.value.token_index == 1
        assert context.u_table is not first_table
        assert context.u_table_epoch == 3


class TestPairingEach:
    def test_matches_single_pairing_bit_for_bit(self, group, rng):
        base = group.random_g1(rng)
        table = group.make_pairing_table(base)
        points = [group.random_g1(rng).point for _ in range(5)]
        points.append(points[0])                       # duplicate
        infinity = (group.g1 ** group.order).point     # identity edge
        points.append(infinity)
        batched = table.pairing_each(points)
        assert batched == [table.pairing(point) for point in points]

    def test_empty_input(self, group, rng):
        table = group.make_pairing_table(group.random_g1(rng))
        assert table.pairing_each([]) == []


class TestRouterIntegration:
    def test_serial_and_sharded_classify_identically(self,
                                                     fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        bob = deployment.users["bob"]
        deployment.operator.revoke_user_key(
            bob.credentials["University Z"].index)
        router.refresh_lists()

        state = router.enable_sharded_revocation(num_shards=8)
        assert router.revocation_state is state
        period = epoch_period(deployment.operator.gpk.epoch)
        for user in deployment.users.values():
            user.auth_period = period

        deployment.connect("alice", "MR-1")          # clean user passes
        beacon = router.make_beacon()
        request, _ = bob.connect_to_router(beacon)
        with pytest.raises(RevokedKeyError):
            router.process_request(request)
        assert router.stats["rejected_revoked"] == 1

    def test_batch_path_classifies_with_state(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        alice = deployment.users["alice"]
        bob = deployment.users["bob"]
        deployment.operator.revoke_user_key(
            bob.credentials["University Z"].index)
        router.refresh_lists()
        router.enable_sharded_revocation(num_shards=8)
        period = epoch_period(deployment.operator.gpk.epoch)
        alice.auth_period = period
        bob.auth_period = period

        beacon = router.make_beacon()
        good, pending = alice.connect_to_router(beacon)
        beacon = router.make_beacon()
        revoked, _ = bob.connect_to_router(beacon)
        outcomes = router.process_request_batch([good, revoked])
        confirm, router_session = outcomes[0]
        user_session = alice.complete_router_handshake(pending, confirm)
        assert user_session.session_id == router_session.session_id
        assert isinstance(outcomes[1], RevokedKeyError)
        assert outcomes[1].token_index == 0

    def test_refresh_keeps_state_in_sync(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        state = router.enable_sharded_revocation(num_shards=8)
        assert len(state.sharded) == 0
        deployment.operator.revoke_user_key(
            deployment.users["bob"].credentials["University Z"].index)
        router.refresh_lists()
        assert len(state.sharded) == 1
        assert state.url_version == router.url.version


class TestUrlDeltaInteraction:
    def test_tampered_delta_fails_validation(self, fresh_deployment):
        deployment = fresh_deployment()
        operator = deployment.operator
        base = operator.issue_url()
        operator.revoke_user_key(
            deployment.users["bob"].credentials["University Z"].index)
        operator.revoke_user_key(
            deployment.users["alice"].credentials["Company X"].index)
        delta = operator.issue_url_delta(base.version)
        assert delta is not None

        applied = delta.apply(base)
        applied.validate(operator.public_key, deployment.clock.now())
        assert applied.version == operator.issue_url().version

        forged = UrlDelta(
            from_version=delta.from_version,
            to_version=delta.to_version,
            issued_at=delta.issued_at,
            update_period=delta.update_period,
            added=delta.added[:1],           # drop one revocation
            removed=delta.removed,
            list_signature=delta.list_signature)
        tampered = forged.apply(base)
        with pytest.raises(CertificateError):
            tampered.validate(operator.public_key,
                              deployment.clock.now())

    def test_delta_version_checks(self, fresh_deployment):
        deployment = fresh_deployment()
        operator = deployment.operator
        base = operator.issue_url()
        operator.revoke_user_key(
            deployment.users["bob"].credentials["University Z"].index)
        delta = operator.issue_url_delta(base.version)
        assert delta is not None
        with pytest.raises(CertificateError):
            delta.apply(operator.issue_url())   # wrong base version
        assert operator.issue_url_delta(
            operator.issue_url().version) is None   # already current

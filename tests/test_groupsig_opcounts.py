"""The paper's operation-count claims, verified exactly (Section V.C)."""

import pytest

from repro import instrument
from repro.core import groupsig


class TestSignCost:
    def test_eight_exponentiations_two_pairings(self, gpk, member_keys,
                                                rng):
        """'Signature generation requires about 8 exponentiations (or
        multiexponentiations) and 2 bilinear map computations.'"""
        with instrument.count_operations() as ops:
            groupsig.sign(gpk, member_keys["a1"], b"cost", rng=rng)
        assert ops.exponentiations() == 8
        assert ops.pairings() == 2

    def test_psi_counted_like_exponentiation(self, gpk, member_keys, rng):
        """'Computing the isomorphism takes roughly the same time as an
        exponentiation in G1' -- 2 of the 8 are psi applications."""
        with instrument.count_operations() as ops:
            groupsig.sign(gpk, member_keys["a1"], b"cost", rng=rng)
        assert ops.total("psi") == 2
        assert ops.total("exp") == 6


class TestVerifyCost:
    @pytest.mark.parametrize("url_size", [0, 1, 2, 3])
    def test_pairings_scale_as_3_plus_2url(self, gpk, member_keys, rng,
                                           url_size):
        """'Signature verification takes 6 exponentiations and
        3 + 2|URL| computations of the bilinear map.'"""
        decoys = [groupsig.RevocationToken(member_keys[n].a)
                  for n in ("a2", "b1", "b2")]
        sig = groupsig.sign(gpk, member_keys["a1"], b"cost", rng=rng)
        with instrument.count_operations() as ops:
            groupsig.verify(gpk, b"cost", sig, url=decoys[:url_size])
        assert ops.pairings() == 3 + 2 * url_size
        assert ops.exponentiations() == 6

    def test_signer_match_short_circuits_scan(self, gpk, member_keys, rng):
        """The scan stops at the matching token (cost <= 3 + 2|URL|)."""
        sig = groupsig.sign(gpk, member_keys["a1"], b"cost", rng=rng)
        url = [groupsig.RevocationToken(member_keys["a1"].a),
               groupsig.RevocationToken(member_keys["a2"].a)]
        with instrument.count_operations() as ops:
            with pytest.raises(groupsig.RevokedKeyError):
                groupsig.verify(gpk, b"cost", sig, url=url)
        assert ops.pairings() == 3 + 2   # matched on the first token

    def test_verification_delay_grows_with_url(self, gpk, member_keys,
                                               rng):
        """Wall-clock sanity check of the linear scaling claim."""
        import time
        sig = groupsig.sign(gpk, member_keys["a1"], b"cost", rng=rng)
        decoys = [groupsig.RevocationToken(member_keys[n].a)
                  for n in ("a2", "b1", "b2")]

        def timed(url):
            start = time.perf_counter()
            groupsig.verify(gpk, b"cost", sig, url=url)
            return time.perf_counter() - start

        small = min(timed([]) for _ in range(3))
        large = min(timed(decoys) for _ in range(3))
        assert large > small

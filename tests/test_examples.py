"""Every example script must run cleanly end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py"))


def test_examples_exist():
    assert "quickstart.py" in EXAMPLE_SCRIPTS
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "done." in output

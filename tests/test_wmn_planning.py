"""Coverage analysis, placement planning, and redundancy checks."""

import pytest

from repro.errors import SimulationError
from repro.wmn.planning import (
    connectivity_after,
    coverage_fraction,
    dead_zones,
    plan_additional_routers,
)
from repro.wmn.topology import TopologyConfig, build_topology


class TestCoverage:
    def test_full_coverage(self):
        routers = [(500.0, 500.0)]
        assert coverage_fraction(routers, 1000.0, 1200.0) == 1.0

    def test_no_routers_no_coverage(self):
        assert coverage_fraction([], 1000.0, 300.0) == 0.0

    def test_partial_coverage(self):
        routers = [(0.0, 0.0)]
        fraction = coverage_fraction(routers, 1000.0, 400.0)
        assert 0.0 < fraction < 0.5

    def test_dead_zones_complement_coverage(self):
        routers = [(0.0, 0.0)]
        resolution = 20
        zones = dead_zones(routers, 1000.0, 400.0,
                           resolution=resolution)
        fraction = coverage_fraction(routers, 1000.0, 400.0,
                                     resolution=resolution)
        assert len(zones) == round((1 - fraction) * resolution ** 2)

    def test_bad_resolution_rejected(self):
        with pytest.raises(SimulationError):
            coverage_fraction([], 1000.0, 300.0, resolution=1)

    def test_default_topology_covers_city(self):
        topology = build_topology(TopologyConfig(seed=0))
        fraction = coverage_fraction(
            list(topology.router_positions.values()),
            topology.config.area_side, topology.config.access_range)
        assert fraction > 0.9


class TestPlanning:
    def test_greedy_improves_coverage(self):
        routers = [(0.0, 0.0)]
        before = coverage_fraction(routers, 1000.0, 300.0)
        additions = plan_additional_routers(routers, 1000.0, 300.0,
                                            count=3)
        after = coverage_fraction(routers + additions, 1000.0, 300.0)
        assert len(additions) == 3
        assert after > before

    def test_stops_at_full_coverage(self):
        routers = [(500.0, 500.0)]
        additions = plan_additional_routers(routers, 1000.0, 1200.0,
                                            count=5)
        assert additions == []

    def test_first_pick_maximizes_gain(self):
        """With an empty area the first pick covers the most points --
        somewhere central, not a corner."""
        additions = plan_additional_routers([], 1000.0, 400.0, count=1)
        x, y = additions[0]
        assert 200.0 <= x <= 800.0 and 200.0 <= y <= 800.0

    def test_deterministic(self):
        a = plan_additional_routers([(0.0, 0.0)], 800.0, 250.0, count=2)
        b = plan_additional_routers([(0.0, 0.0)], 800.0, 250.0, count=2)
        assert a == b


class TestRedundancy:
    def test_healthy_backbone(self):
        topology = build_topology(TopologyConfig(seed=0))
        health = connectivity_after(topology, [])
        assert health["connected"] == 1.0
        assert health["gateway_reachable_fraction"] == 1.0

    def test_single_failure_survivable(self):
        """The paper's redundancy assumption on the default city."""
        topology = build_topology(TopologyConfig(seed=0))
        victim = next(r for r in topology.router_positions
                      if r not in topology.gateway_ids)
        health = connectivity_after(topology, [victim])
        assert health["survivors"] == 15.0
        assert health["gateway_reachable_fraction"] == 1.0

    def test_total_failure(self):
        topology = build_topology(TopologyConfig(router_grid=2, seed=1))
        health = connectivity_after(
            topology, list(topology.router_positions))
        assert health["survivors"] == 0.0

    def test_losing_all_gateways_strands_routers(self):
        topology = build_topology(TopologyConfig(seed=0))
        health = connectivity_after(topology, topology.gateway_ids)
        assert health["gateway_reachable_fraction"] == 0.0

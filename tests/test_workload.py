"""Tests for the diurnal workload generator."""

import random

import pytest

from repro.errors import SimulationError
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig
from repro.wmn.workload import (
    CITY_DEFAULT_PROFILE,
    DiurnalProfile,
    WorkloadDriver,
    poisson_arrivals,
)


class TestProfile:
    def test_default_is_valid(self):
        profile = DiurnalProfile()
        assert len(profile.hourly) == 24
        assert profile.peak == max(CITY_DEFAULT_PROFILE)

    def test_interpolation_continuous(self):
        profile = DiurnalProfile()
        at_hour = profile.intensity_at(8 * 3600.0)
        just_after = profile.intensity_at(8 * 3600.0 + 1.0)
        assert abs(at_hour - just_after) < 0.01

    def test_wraps_midnight(self):
        profile = DiurnalProfile()
        assert profile.intensity_at(0.0) == profile.intensity_at(
            24 * 3600.0)

    def test_evening_peak_beats_night_trough(self):
        profile = DiurnalProfile()
        assert (profile.intensity_at(18 * 3600.0)
                > 3 * profile.intensity_at(3 * 3600.0))

    def test_wrong_length_rejected(self):
        with pytest.raises(SimulationError):
            DiurnalProfile(hourly=(1.0,) * 23)

    def test_all_zero_rejected(self):
        with pytest.raises(SimulationError):
            DiurnalProfile(hourly=(0.0,) * 24)


class TestPoissonArrivals:
    def test_arrivals_in_window(self):
        profile = DiurnalProfile()
        arrivals = poisson_arrivals(profile, peak_rate=0.5,
                                    start=1000.0, duration=3600.0,
                                    rng=random.Random(1))
        assert all(1000.0 <= t < 4600.0 for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_rate_tracks_profile(self):
        """Evening-hour arrivals outnumber night-hour arrivals."""
        profile = DiurnalProfile()
        rng = random.Random(2)
        evening = len(poisson_arrivals(profile, 0.5,
                                       start=18 * 3600.0,
                                       duration=3600.0, rng=rng))
        night = len(poisson_arrivals(profile, 0.5,
                                     start=3 * 3600.0,
                                     duration=3600.0, rng=rng))
        assert evening > 2 * night

    def test_deterministic_given_rng(self):
        profile = DiurnalProfile()
        a = poisson_arrivals(profile, 0.3, 0.0, 1800.0,
                             rng=random.Random(7))
        b = poisson_arrivals(profile, 0.3, 0.0, 1800.0,
                             rng=random.Random(7))
        assert a == b

    def test_bad_parameters_rejected(self):
        profile = DiurnalProfile()
        with pytest.raises(SimulationError):
            poisson_arrivals(profile, 0.0, 0.0, 100.0)
        with pytest.raises(SimulationError):
            poisson_arrivals(profile, 1.0, 0.0, 0.0)


class TestDriver:
    def _scenario(self):
        return Scenario(ScenarioConfig(
            preset="TEST", seed=22,
            topology=TopologyConfig(area_side=300.0, router_grid=1,
                                    user_count=6, seed=22,
                                    access_range=400.0),
            group_sizes=(("Company X", 8),),
            beacon_interval=3.0))

    def test_driver_disables_auto_connect(self):
        scenario = self._scenario()
        WorkloadDriver(scenario)
        scenario.run(30.0)
        assert scenario.connected_fraction() == 0.0

    def test_arrivals_create_sessions(self):
        scenario = self._scenario()
        driver = WorkloadDriver(scenario, peak_rate=0.3,
                                session_duration=30.0,
                                rng=random.Random(3))
        scheduled = driver.schedule(duration=300.0)
        scenario.run(330.0)
        assert scheduled > 0
        assert driver.sessions_started > 0
        metrics = scenario.router_metrics()
        assert metrics["handshakes_completed"] >= driver.sessions_started

    def test_sessions_end(self):
        scenario = self._scenario()
        driver = WorkloadDriver(scenario, peak_rate=0.2,
                                session_duration=20.0,
                                rng=random.Random(4))
        driver.schedule(duration=120.0)
        scenario.run(200.0)   # past every session's end
        assert scenario.connected_fraction() == 0.0

    def test_bursts_carry_data(self):
        scenario = self._scenario()
        driver = WorkloadDriver(scenario, peak_rate=0.3,
                                session_duration=40.0, burst_packets=2,
                                rng=random.Random(5))
        driver.schedule(duration=200.0)
        scenario.run(260.0)
        if driver.bursts_sent == 0:
            pytest.skip("no session lived long enough to burst")
        assert (scenario.user_metrics()["data_sent"]
                >= driver.bursts_sent * 2)

"""Experiment E8: the privacy and accountability games."""

import random

import pytest

from repro.analysis.privacy_games import (
    linking_with_token_rate,
    period_linkability_rate,
    run_unlinkability_game,
    strategy_compare_encodings,
    strategy_insider_keys,
    strategy_t2_ratio,
    view_disclosure_report,
)


@pytest.fixture(scope="module")
def game_keys(member_keys):
    return list(member_keys.values())


class TestUnlinkability:
    def test_naive_adversary_near_coin_flip(self, gpk, game_keys):
        result = run_unlinkability_game(
            gpk, game_keys, strategy_compare_encodings, trials=24,
            rng=random.Random(1))
        # The naive strategy always answers "different" effectively;
        # its advantage comes only from the coin. Bound it loosely.
        assert result.advantage <= 0.45

    def test_algebraic_adversary_near_coin_flip(self, gpk, game_keys):
        result = run_unlinkability_game(
            gpk, game_keys, strategy_t2_ratio, trials=24,
            rng=random.Random(2))
        assert result.advantage <= 0.45

    def test_insider_with_other_keys_near_coin_flip(self, gpk,
                                                    member_keys):
        """Compromised members' keys don't help link an honest signer
        (the adversary holds a2/b1/b2 but a1 signs)."""
        honest = [member_keys["a1"]]
        compromised = [member_keys["a2"], member_keys["b1"],
                       member_keys["b2"]]
        # Game over signatures by a1 and a2: insider holds a2 only.
        result = run_unlinkability_game(
            gpk, [member_keys["a1"], member_keys["b1"]],
            strategy_insider_keys, trials=16, rng=random.Random(3),
            aux=[member_keys["a2"], member_keys["b2"]])
        assert result.advantage <= 0.5
        del honest, compromised

    def test_insider_holding_the_signer_key_wins(self, gpk, member_keys):
        """Sanity: if the 'compromised' set includes the actual signer,
        linking succeeds -- the game machinery is not vacuous."""
        result = run_unlinkability_game(
            gpk, [member_keys["a1"], member_keys["b1"]],
            strategy_insider_keys, trials=12, rng=random.Random(4),
            aux=[member_keys["a1"], member_keys["b1"]])
        assert result.success_rate == 1.0

    def test_too_few_keys_rejected(self, gpk, member_keys):
        with pytest.raises(ValueError):
            run_unlinkability_game(gpk, [member_keys["a1"]],
                                   strategy_compare_encodings)


class TestAccountabilityContrast:
    def test_token_holder_links_perfectly(self, gpk, game_keys):
        """NO (holding grt) wins the same game with probability 1."""
        assert linking_with_token_rate(gpk, game_keys, trials=10,
                                       rng=random.Random(5)) == 1.0

    def test_period_mode_links_within_period(self, gpk, game_keys):
        """The fast-revocation variant's documented privacy cost."""
        assert period_linkability_rate(gpk, game_keys, trials=10,
                                       rng=random.Random(6)) == 1.0


class TestDisclosureReport:
    def test_three_tier_disclosure(self, fresh_deployment):
        deployment = fresh_deployment()
        report = view_disclosure_report(deployment, "alice", "MR-1",
                                        context="Company X")
        assert "legitimate" in report["adversary"]
        assert "nothing" in report["group_manager"]
        assert "nothing" in report["ttp"]
        assert "Company X" in report["network_operator"]
        assert "alice" in report["law_authority"]
        # NO's view must NOT contain the user's name.
        assert "alice" not in report["network_operator"]

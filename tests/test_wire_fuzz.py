"""Fuzzing the wire decoders: garbage in, clean errors out.

Every decoder must reject arbitrary and mutated bytes with an error
from the :mod:`repro.errors` hierarchy -- never an uncontrolled
exception -- because routers feed radio frames straight into them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certs import CertificateRevocationList, UserRevocationList
from repro.core.groupsig import GroupSignature
from repro.core.messages import (
    AccessConfirm,
    AccessRequest,
    Beacon,
    DataPacket,
    PeerHello,
)
from repro.core.wire import Writer
from repro.errors import EncodingError, ReproError
from repro.sig.curves import SECP160R1


@pytest.fixture(scope="module")
def decoders(deployment):
    group = deployment.group
    return [
        ("beacon", lambda b: Beacon.decode(group, SECP160R1, b)),
        ("request", lambda b: AccessRequest.decode(group, b)),
        ("confirm", lambda b: AccessConfirm.decode(group, b)),
        ("hello", lambda b: PeerHello.decode(group, b)),
        ("data", DataPacket.decode),
        ("crl", CertificateRevocationList.decode),
        ("url", lambda b: UserRevocationList.decode(group, b)),
        ("groupsig", lambda b: GroupSignature.decode(group, b)),
    ]


class TestGarbageRejection:
    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=60)
    def test_random_bytes_never_crash(self, decoders, blob):
        for _name, decode in decoders:
            try:
                decode(blob)
            except ReproError:
                pass   # the only acceptable failure mode

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_mutated_real_beacon_never_crashes(self, deployment,
                                               position, value):
        beacon_bytes = bytearray(
            deployment.routers["MR-1"].make_beacon().encode())
        beacon_bytes[position % len(beacon_bytes)] = value
        try:
            Beacon.decode(deployment.group, SECP160R1,
                          bytes(beacon_bytes))
        except ReproError:
            pass

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_mutated_request_never_validates_wrongly(self, deployment,
                                                     position, value):
        """A mutated (M.2) either fails to decode or fails validation;
        it must never be accepted (unless the mutation is identity)."""
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        original = request.encode()
        mutated = bytearray(original)
        mutated[position % len(mutated)] ^= value
        if bytes(mutated) == original:
            router.process_request(request)   # identity mutation: fine
            return
        try:
            decoded = AccessRequest.decode(deployment.group,
                                           bytes(mutated))
            router.process_request(decoded)
        except ReproError:
            return
        # Reaching here means a non-identity mutation was accepted:
        # only harmless for mutations of the optional-solution framing
        # that decode to the same request.
        assert decoded.encode() in (original, bytes(mutated))
        assert decoded.signed_payload() == request.signed_payload()


class TestEncodingErrorOnly:
    """The network-facing decoders dispatch on :class:`EncodingError`
    specifically -- a :class:`CertificateError` / :class:`PuzzleError`
    leaking out of a *nested* component decoder (or a bare ValueError /
    IndexError from arithmetic on attacker bytes) would escape the
    drop-malformed-frame handler."""

    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=80)
    def test_random_bytes_raise_encoding_error(self, deployment, blob):
        group = deployment.group
        for decode in (
                lambda b: GroupSignature.decode(group, b),
                lambda b: Beacon.decode(group, SECP160R1, b),
                lambda b: AccessRequest.decode(group, b)):
            with pytest.raises(EncodingError):
                decode(blob)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=80, deadline=None)
    def test_mutated_beacon_raises_encoding_error(self, deployment,
                                                  position, value):
        """Beacon nests certificate, CRL, URL, and puzzle decoders; a
        mutation landing inside any of them must still surface as an
        EncodingError."""
        original = deployment.routers["MR-1"].make_beacon().encode()
        mutated = bytearray(original)
        mutated[position % len(mutated)] ^= value
        try:
            Beacon.decode(deployment.group, SECP160R1, bytes(mutated))
        except EncodingError:
            pass

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=80, deadline=None)
    def test_mutated_request_raises_encoding_error(self, deployment,
                                                   position, value):
        request, _ = deployment.users["alice"].connect_to_router(
            deployment.routers["MR-1"].make_beacon())
        mutated = bytearray(request.encode())
        mutated[position % len(mutated)] ^= value
        try:
            AccessRequest.decode(deployment.group, bytes(mutated))
        except EncodingError:
            pass


class TestWriterRangeChecks:
    """Out-of-range integer fields must fail at *encode* time with
    :class:`EncodingError`, not leak ``int.to_bytes``'s OverflowError."""

    @pytest.mark.parametrize("field,limit", [
        ("u8", 1 << 8), ("u32", 1 << 32), ("u64", 1 << 64)])
    def test_too_large_raises_encoding_error(self, field, limit):
        with pytest.raises(EncodingError):
            getattr(Writer(), field)(limit)

    @pytest.mark.parametrize("field", ["u8", "u32", "u64"])
    def test_negative_raises_encoding_error(self, field):
        with pytest.raises(EncodingError):
            getattr(Writer(), field)(-1)

    @given(st.integers())
    @settings(max_examples=120)
    def test_never_overflow_error(self, value):
        for field, limit in (("u8", 1 << 8), ("u32", 1 << 32),
                             ("u64", 1 << 64)):
            try:
                blob = getattr(Writer(), field)(value).done()
            except EncodingError:
                assert not 0 <= value < limit
            else:
                assert 0 <= value < limit
                assert int.from_bytes(blob, "big") == value


class TestTruncation:
    def test_every_truncation_of_a_beacon_rejected(self, deployment):
        blob = deployment.routers["MR-1"].make_beacon().encode()
        for cut in range(0, len(blob), 37):
            with pytest.raises(ReproError):
                Beacon.decode(deployment.group, SECP160R1, blob[:cut])

    def test_every_truncation_of_a_signature_rejected(self, deployment):
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        request, _ = user.connect_to_router(router.make_beacon())
        blob = request.group_signature.encode()
        for cut in range(len(blob)):
            with pytest.raises(ReproError):
                GroupSignature.decode(deployment.group, blob[:cut])

"""Fuzzing the wire decoders: garbage in, clean errors out.

Every decoder must reject arbitrary and mutated bytes with an error
from the :mod:`repro.errors` hierarchy -- never an uncontrolled
exception -- because routers feed radio frames straight into them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certs import CertificateRevocationList, UserRevocationList
from repro.core.groupsig import GroupSignature
from repro.core.messages import (
    AccessConfirm,
    AccessRequest,
    Beacon,
    DataPacket,
    PeerHello,
)
from repro.errors import ReproError
from repro.sig.curves import SECP160R1


@pytest.fixture(scope="module")
def decoders(deployment):
    group = deployment.group
    return [
        ("beacon", lambda b: Beacon.decode(group, SECP160R1, b)),
        ("request", lambda b: AccessRequest.decode(group, b)),
        ("confirm", lambda b: AccessConfirm.decode(group, b)),
        ("hello", lambda b: PeerHello.decode(group, b)),
        ("data", DataPacket.decode),
        ("crl", CertificateRevocationList.decode),
        ("url", lambda b: UserRevocationList.decode(group, b)),
        ("groupsig", lambda b: GroupSignature.decode(group, b)),
    ]


class TestGarbageRejection:
    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=60)
    def test_random_bytes_never_crash(self, decoders, blob):
        for _name, decode in decoders:
            try:
                decode(blob)
            except ReproError:
                pass   # the only acceptable failure mode

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_mutated_real_beacon_never_crashes(self, deployment,
                                               position, value):
        beacon_bytes = bytearray(
            deployment.routers["MR-1"].make_beacon().encode())
        beacon_bytes[position % len(beacon_bytes)] = value
        try:
            Beacon.decode(deployment.group, SECP160R1,
                          bytes(beacon_bytes))
        except ReproError:
            pass

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_mutated_request_never_validates_wrongly(self, deployment,
                                                     position, value):
        """A mutated (M.2) either fails to decode or fails validation;
        it must never be accepted (unless the mutation is identity)."""
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        original = request.encode()
        mutated = bytearray(original)
        mutated[position % len(mutated)] ^= value
        if bytes(mutated) == original:
            router.process_request(request)   # identity mutation: fine
            return
        try:
            decoded = AccessRequest.decode(deployment.group,
                                           bytes(mutated))
            router.process_request(decoded)
        except ReproError:
            return
        # Reaching here means a non-identity mutation was accepted:
        # only harmless for mutations of the optional-solution framing
        # that decode to the same request.
        assert decoded.encode() in (original, bytes(mutated))
        assert decoded.signed_payload() == request.signed_payload()


class TestTruncation:
    def test_every_truncation_of_a_beacon_rejected(self, deployment):
        blob = deployment.routers["MR-1"].make_beacon().encode()
        for cut in range(0, len(blob), 37):
            with pytest.raises(ReproError):
                Beacon.decode(deployment.group, SECP160R1, blob[:cut])

    def test_every_truncation_of_a_signature_rejected(self, deployment):
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        request, _ = user.connect_to_router(router.make_beacon())
        blob = request.group_signature.encode()
        for cut in range(len(blob)):
            with pytest.raises(ReproError):
                GroupSignature.decode(deployment.group, blob[:cut])

"""Tests for the ECDSA Weierstrass curve arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotOnCurveError, ParameterError
from repro.sig.curves import SECP160R1, SECP256R1, get_curve

scalars160 = st.integers(min_value=1, max_value=SECP160R1.n - 1)


class TestDomainParameters:
    @pytest.mark.parametrize("curve", [SECP160R1, SECP256R1])
    def test_generator_on_curve(self, curve):
        assert curve.is_on_curve(curve.generator)

    @pytest.mark.parametrize("curve", [SECP160R1, SECP256R1])
    def test_generator_order(self, curve):
        assert curve.scalar_mul(curve.generator, curve.n) is None

    def test_lookup(self):
        assert get_curve("secp160r1") is SECP160R1

    def test_unknown_curve_rejected(self):
        with pytest.raises(ParameterError):
            get_curve("secp127r9")

    def test_sizes(self):
        assert SECP160R1.coordinate_bytes == 20
        assert SECP160R1.scalar_bytes == 21   # n is 161 bits
        assert SECP256R1.scalar_bytes == 32


class TestGroupLaw:
    def test_infinity_identity(self):
        g = SECP160R1.generator
        assert SECP160R1.affine_add(g, None) == g
        assert SECP160R1.affine_add(None, g) == g

    def test_add_inverse(self):
        g = SECP160R1.generator
        assert SECP160R1.affine_add(g, SECP160R1.affine_neg(g)) is None

    def test_jacobian_matches_affine(self):
        g = SECP160R1.generator
        acc = None
        for k in range(1, 12):
            acc = SECP160R1.affine_add(acc, g)
            assert SECP160R1.scalar_mul(g, k) == acc

    def test_scalar_mul_zero(self):
        assert SECP160R1.scalar_mul(SECP160R1.generator, 0) is None

    def test_scalar_mul_of_infinity(self):
        assert SECP160R1.scalar_mul(None, 12345) is None

    def test_scalar_mul_two(self):
        g = SECP160R1.generator
        h = SECP160R1.scalar_mul(g, 7)
        combined = SECP160R1.scalar_mul_two(g, 3, h, 2)
        assert combined == SECP160R1.scalar_mul(g, 3 + 14)

    @given(scalars160, scalars160)
    @settings(max_examples=10, deadline=None)
    def test_property_distributive(self, a, b):
        g = SECP160R1.generator
        lhs = SECP160R1.scalar_mul(g, (a + b) % SECP160R1.n)
        rhs = SECP160R1.affine_add(SECP160R1.scalar_mul(g, a),
                                   SECP160R1.scalar_mul(g, b))
        assert lhs == rhs

    def test_require_on_curve_rejects_forged_point(self):
        with pytest.raises(NotOnCurveError):
            SECP160R1.require_on_curve((1, 2))

"""Group-granular billing (the paper's billing motivation)."""

import pytest

from repro.analysis.billing import build_billing_report


@pytest.fixture
def billed_deployment(fresh_deployment):
    deployment = fresh_deployment(
        users=[("alice", ["Company X"]),
               ("anna", ["Company X"]),
               ("bob", ["University Z"])])
    for _ in range(3):
        deployment.connect("alice", "MR-1")
    deployment.connect("anna", "MR-1")
    deployment.connect("bob", "MR-1")
    return deployment


class TestAggregation:
    def test_sessions_attributed_per_group(self, billed_deployment):
        report = build_billing_report(billed_deployment.operator,
                                      billed_deployment.network_log)
        assert report.usage["Company X"].sessions == 4
        assert report.usage["University Z"].sessions == 1
        assert report.unattributed_sessions == 0
        assert report.total_sessions == 5

    def test_distinct_keys_counted(self, billed_deployment):
        """Company X has two active members (alice 3x + anna 1x)."""
        report = build_billing_report(billed_deployment.operator,
                                      billed_deployment.network_log)
        assert report.usage["Company X"].distinct_keys == 2
        assert report.usage["University Z"].distinct_keys == 1

    def test_time_bounds(self, billed_deployment):
        report = build_billing_report(billed_deployment.operator,
                                      billed_deployment.network_log)
        usage = report.usage["Company X"]
        assert usage.first_seen is not None
        assert usage.first_seen <= usage.last_seen

    def test_invoice_lines(self, billed_deployment):
        report = build_billing_report(billed_deployment.operator,
                                      billed_deployment.network_log)
        lines = report.invoice_lines(price_per_session=2.5)
        joined = "\n".join(lines)
        assert "Company X: 4 sessions" in joined
        assert "10.00" in joined


class TestPrivacy:
    def test_report_contains_no_uid(self, billed_deployment):
        """Billing never touches essential attribute information."""
        report = build_billing_report(billed_deployment.operator,
                                      billed_deployment.network_log)
        rendered = repr(report.usage) + "".join(report.invoice_lines())
        for name in ("alice", "anna", "bob"):
            user = billed_deployment.users[name]
            assert user.identity.uid.hex() not in rendered
            assert name not in rendered

    def test_empty_log(self, fresh_deployment):
        deployment = fresh_deployment()
        report = build_billing_report(deployment.operator,
                                      deployment.network_log)
        assert report.usage == {}
        assert report.total_sessions == 0

    def test_foreign_entries_counted_unattributed(self, fresh_deployment,
                                                  group, rng):
        """A log entry no issued key explains shows up as a red flag."""
        from repro.core import groupsig
        from repro.core.protocols.user_router import AuthLogEntry
        deployment = fresh_deployment()
        deployment.connect("alice", "MR-1")
        foreign_gpk, foreign_master = groupsig.keygen_master(group, rng)
        foreign_key = groupsig.issue_member_key(group, foreign_master,
                                                3, (9, 9), rng)
        foreign_sig = groupsig.sign(foreign_gpk, foreign_key, b"x",
                                    rng=rng)
        deployment.network_log.ingest([AuthLogEntry(
            router_id="MR-1", session_id=b"\xff" * 16,
            signed_payload=b"x", group_signature=foreign_sig,
            timestamp=0.0)])
        report = build_billing_report(deployment.operator,
                                      deployment.network_log)
        assert report.unattributed_sessions == 1
        assert report.usage["Company X"].sessions == 1

"""Tests for ECDSA-160/256 signing and verification."""

import random

import pytest

from repro.errors import EncodingError, InvalidSignature
from repro.sig.curves import SECP160R1, SECP256R1
from repro.sig.ecdsa import (
    EcdsaPublicKey,
    decode_signature,
    ecdsa_generate,
    encode_signature,
    signature_bytes,
)


@pytest.fixture(scope="module")
def keypair():
    return ecdsa_generate(SECP160R1, rng=random.Random(77))


class TestSignVerify:
    def test_roundtrip(self, keypair):
        sig = keypair.sign(b"hello")
        assert keypair.public.verify(b"hello", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"hello")
        assert not keypair.public.verify(b"hellO", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"hello"))
        sig[5] ^= 1
        assert not keypair.public.verify(b"hello", bytes(sig))

    def test_wrong_key_rejected(self, keypair):
        other = ecdsa_generate(SECP160R1, rng=random.Random(78))
        sig = keypair.sign(b"hello")
        assert not other.public.verify(b"hello", sig)

    def test_empty_message(self, keypair):
        sig = keypair.sign(b"")
        assert keypair.public.verify(b"", sig)

    def test_long_message(self, keypair):
        message = b"m" * 100_000
        assert keypair.public.verify(message, keypair.sign(message))

    def test_require_valid_raises(self, keypair):
        with pytest.raises(InvalidSignature):
            keypair.public.require_valid(b"a", b"\x00" * 42)

    def test_garbage_signature_rejected_without_raising(self, keypair):
        assert not keypair.public.verify(b"a", b"nonsense")
        assert not keypair.public.verify(b"a", b"")

    def test_all_zero_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"a", b"\x00" * 42)

    def test_secp256r1_works_too(self):
        kp = ecdsa_generate(SECP256R1, rng=random.Random(79))
        sig = kp.sign(b"modern")
        assert kp.public.verify(b"modern", sig)
        assert len(sig) == 64


class TestDeterminism:
    def test_rfc6979_style_determinism(self, keypair):
        assert keypair.sign(b"same") == keypair.sign(b"same")

    def test_different_messages_different_signatures(self, keypair):
        assert keypair.sign(b"a") != keypair.sign(b"b")

    def test_keygen_reproducible(self):
        a = ecdsa_generate(SECP160R1, rng=random.Random(5))
        b = ecdsa_generate(SECP160R1, rng=random.Random(5))
        assert a.private == b.private


class TestEncoding:
    def test_signature_size_matches_paper_scale(self, keypair):
        # ECDSA-160: two 161-bit scalars -> 42 bytes on the wire.
        assert len(keypair.sign(b"x")) == signature_bytes(SECP160R1) == 42

    def test_signature_codec_roundtrip(self):
        blob = encode_signature(SECP160R1, 123, 456)
        assert decode_signature(SECP160R1, blob) == (123, 456)

    def test_bad_signature_length_rejected(self):
        with pytest.raises(EncodingError):
            decode_signature(SECP160R1, b"\x00" * 17)

    def test_public_key_roundtrip(self, keypair):
        blob = keypair.public.encode()
        decoded = EcdsaPublicKey.decode(SECP160R1, blob)
        assert decoded == keypair.public

    def test_public_key_off_curve_rejected(self, keypair):
        blob = bytearray(keypair.public.encode())
        blob[-1] ^= 1
        with pytest.raises(EncodingError):
            EcdsaPublicKey.decode(SECP160R1, bytes(blob))

    def test_public_key_bad_prefix_rejected(self, keypair):
        blob = b"\x05" + keypair.public.encode()[1:]
        with pytest.raises(EncodingError):
            EcdsaPublicKey.decode(SECP160R1, blob)

"""Wire roundtrips for the optional DoS-puzzle fields in M.1 / M.2."""

import pytest

from repro.core.messages import AccessRequest, Beacon
from repro.core.protocols.dos import DosPolicy
from repro.sig.curves import SECP160R1


@pytest.fixture
def puzzle_deployment(fresh_deployment):
    def factory():
        policy = DosPolicy(base_difficulty=6, max_difficulty=6,
                           adaptive=False)
        policy.forced = True
        return policy

    return fresh_deployment(dos_policy_factory=factory)


class TestPuzzleFraming:
    def test_beacon_with_puzzle_roundtrips(self, puzzle_deployment):
        deployment = puzzle_deployment
        beacon = deployment.routers["MR-1"].make_beacon()
        assert beacon.puzzle is not None
        blob = beacon.encode()
        decoded = Beacon.decode(deployment.group, SECP160R1, blob)
        assert decoded.puzzle == beacon.puzzle
        assert decoded.encode() == blob

    def test_request_with_solution_roundtrips(self, puzzle_deployment):
        deployment = puzzle_deployment
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        assert request.puzzle_solution is not None
        blob = request.encode()
        decoded = AccessRequest.decode(deployment.group, blob)
        assert decoded.puzzle_solution == request.puzzle_solution
        assert decoded.encode() == blob

    def test_solution_covered_by_binding_not_signature(self,
                                                       puzzle_deployment):
        """The puzzle solution is bound to the signed payload (so it
        cannot be grafted onto a different request), yet is not inside
        the group-signed bytes (the signature is computed first)."""
        deployment = puzzle_deployment
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon = router.make_beacon()
        request, _ = user.connect_to_router(beacon)
        assert request.puzzle_binding() == request.signed_payload()
        stripped = AccessRequest(request.g_r_user, request.g_r_router,
                                 request.ts2, request.group_signature)
        assert stripped.signed_payload() == request.signed_payload()

    def test_decoded_puzzle_request_accepted(self, puzzle_deployment):
        """End-to-end through serialization, as the radio delivers it."""
        deployment = puzzle_deployment
        router = deployment.routers["MR-1"]
        user = deployment.users["alice"]
        beacon_blob = router.make_beacon().encode()
        beacon = Beacon.decode(deployment.group, SECP160R1, beacon_blob)
        request, pending = user.connect_to_router(beacon)
        request_blob = request.encode()
        decoded = AccessRequest.decode(deployment.group, request_blob)
        confirm, _ = router.process_request(decoded)
        session = user.complete_router_handshake(pending, confirm)
        assert session is not None

    def test_puzzle_size_overhead(self, puzzle_deployment):
        """Puzzles cost ~17 B on the beacon and 8 B on the request."""
        deployment = puzzle_deployment
        router = deployment.routers["MR-1"]
        with_puzzle = len(router.make_beacon().encode())
        router.engine.dos_policy.forced = False
        without = len(router.make_beacon().encode())
        assert 0 < with_puzzle - without <= 32

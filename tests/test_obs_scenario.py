"""Acceptance: causal handshake traces from the simulated WMN.

The ISSUE's end-to-end criterion: a seeded 2-router/4-user traced
scenario yields at least one *fully stitched* handshake trace --
user-node spans and router-node spans under one trace id -- whose
per-span pairing/exponentiation tallies sum to the instrument totals,
renders as a waterfall and as folded stacks, and keeps stitching
through an M.2 retransmission.  Time-series rollups cover the run on
the sim clock.
"""

import pytest

from repro import instrument, obs
from repro.core.protocols.user_router import RetryPolicy
from repro.faults import FaultInjector, FaultPlan, RadioFault
from repro.obs.report import (
    build_traces,
    collect_scenario_metrics,
    render_waterfall,
    to_folded,
)
from repro.obs.rollup import read_jsonl
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


@pytest.fixture(autouse=True)
def _no_ambient_leak():
    assert obs.active() is None
    yield
    obs.uninstall()


USER_SPANS = {"user.process_beacon", "user.beacon_validate",
              "user.confirm", "user.complete"}
ROUTER_SPANS = {"router.service", "router.precheck", "router.accept",
                "groupsig.verify", "groupsig.spk"}


def connected_traces(snapshot):
    return [t for t in build_traces(snapshot)
            if dict(t["root"]["attrs"]).get("outcome") == "connected"]


class TestScenarioTraces:
    @pytest.fixture(scope="class")
    def scenario(self):
        # Same shape as collect_scenario_metrics(routers=2, users=4),
        # built by hand so the op counter brackets *only* the run
        # (deployment setup also pays pairings, outside any trace).
        config = ScenarioConfig(
            seed=11,
            topology=TopologyConfig(area_side=600.0, router_grid=2,
                                    router_count=2, user_count=4,
                                    seed=11),
            tracing=True, telemetry_window=10.0)
        scenario = Scenario(config)
        with instrument.count_operations() as ops:
            scenario.run(40.0)
        scenario.publish_metrics()
        scenario.run_ops = ops.snapshot()
        return scenario

    def test_cli_scenario_helper_produces_traces(self):
        scenario = collect_scenario_metrics(routers=2, users=4, seed=11,
                                            duration=40.0)
        assert connected_traces(scenario.registry.snapshot())
        assert scenario.telemetry_jsonl().strip()

    def test_stitched_across_user_and_router_nodes(self, scenario):
        traces = connected_traces(scenario.registry.snapshot())
        assert traces, "no handshake completed in the seeded scenario"
        for trace in traces:
            names = {r["name"] for r in trace["spans"]}
            assert USER_SPANS <= names
            assert ROUTER_SPANS <= names
            # Every span genuinely belongs to the trace and links up.
            ids = {r["span_id"] for r in trace["spans"]}
            non_roots = [r for r in trace["spans"]
                         if r is not trace["root"]]
            assert all(r["parent_id"] in ids for r in non_roots)

    def test_per_stage_op_budget_matches_paper(self, scenario):
        for trace in connected_traces(scenario.registry.snapshot()):
            by_name = {r["name"]: dict(r["ops"])
                       for r in trace["spans"]}
            # Sign: 2 pairings; Eq.3 SPK check: 3 pairings (|URL|=0).
            assert by_name["groupsig.sign"]["pairing"] == 2
            assert by_name["groupsig.spk"]["pairing"] == 3
            assert trace["ops"]["pairing"] == 5

    def test_span_ops_sum_to_instrument_totals(self, scenario):
        """Every pairing the run performed is attributed to exactly
        one span of one trace (attribution is exclusive, nothing is
        double-counted or lost)."""
        snapshot = scenario.registry.snapshot()
        attributed = sum(
            dict(record["ops"]).get("pairing", 0)
            for record in snapshot["spans"]["records"])
        assert attributed == scenario.run_ops.get("pairing", 0) > 0

    def test_renders_waterfall_and_folded(self, scenario):
        traces = connected_traces(scenario.registry.snapshot())
        waterfall = render_waterfall(traces)
        assert "trace " in waterfall and "groupsig.spk" in waterfall
        folded = to_folded(traces)
        assert ("handshake;user.process_beacon;groupsig.sign"
                in folded)
        assert ("handshake;router.service;groupsig.verify;groupsig.spk"
                in folded)
        for line in folded.strip().splitlines():
            assert int(line.rsplit(" ", 1)[1]) >= 1

    def test_telemetry_rollup_covers_run(self, scenario):
        windows = read_jsonl(scenario.telemetry_jsonl())
        # 40s run / 10s window: one roll at t=0 (empty baseline
        # window), then one per elapsed window including t=40.
        assert len(windows) == 5
        assert [w["index"] for w in windows] == [0, 1, 2, 3, 4]
        assert all(windows[i]["t"] < windows[i + 1]["t"]
                   for i in range(len(windows) - 1))
        completed = sum(w["counters"].get(
            "user.handshakes_completed_total", 0) for w in windows)
        assert completed == scenario.registry.counter_value(
            "user.handshakes_completed_total") > 0

    def test_no_ambient_registry_leak(self, scenario):
        # Building and running a traced scenario must not leave its
        # registry installed in the caller's process.
        assert obs.active() is None


class TestRetransmissionStitching:
    def test_trace_survives_m2_retransmission(self):
        seed = 101
        config = ScenarioConfig(
            preset="TEST", seed=seed,
            topology=TopologyConfig(area_side=400.0, router_grid=1,
                                    user_count=3, seed=seed,
                                    access_range=400.0),
            group_sizes=(("Company X", 8),),
            beacon_interval=4.0,
            retry_policy=RetryPolicy(initial_timeout=2.0,
                                     backoff_factor=2.0,
                                     max_timeout=8.0, max_retries=4,
                                     jitter=0.1),
            tracing=True)
        scenario = Scenario(config)
        for user in scenario.sim_users.values():
            user.connect_timeout = 60.0
        injector = FaultInjector(FaultPlan(
            seed=seed,
            radio=[RadioFault(kind="drop", probability=1.0,
                              frame_kinds=("M.2",), stop=6.0)]))
        injector.arm_scenario(scenario)
        scenario.run(120.0)
        assert scenario.connected_fraction() == 1.0
        traces = connected_traces(scenario.registry.snapshot())
        retried = [t for t in traces
                   if any(r["name"] == "handshake.retransmit"
                          for r in t["spans"])]
        assert retried, "fault plan produced no retransmitting trace"
        for trace in retried:
            names = {r["name"] for r in trace["spans"]}
            # The retransmitted M.2 still stitched the router side in.
            assert ROUTER_SPANS <= names
            retx = [r for r in trace["spans"]
                    if r["name"] == "handshake.retransmit"]
            assert all(r["parent_id"] == trace["root"]["span_id"]
                       for r in retx)
            # Exactly one handshake's worth of crypto per trace: the
            # retransmit resends identical bytes, it does not re-sign,
            # and the router's duplicate cache verifies once.
            assert trace["ops"]["pairing"] == 5

"""Experiment E1: signature-size accounting vs the paper's numbers."""

from repro.analysis.sizes import (
    PAPER_MNT170,
    paper_signature_accounting,
    signature_size_table,
    size_model_for,
)


class TestPaperNumbers:
    def test_headline_1192_bits(self):
        """'the total group signature length is 1,192 bits or 149
        bytes' (Section V.C)."""
        row = paper_signature_accounting()
        assert row.signature_bits == 1192
        assert row.signature_bytes == 149

    def test_mnt170_model(self):
        assert PAPER_MNT170.scalar_bits == 170
        assert PAPER_MNT170.g1_bits == 171
        assert PAPER_MNT170.group_signature_bits() == 2 * 171 + 5 * 170

    def test_rsa_comparator_in_table(self, group):
        table = signature_size_table(group)
        rsa = next(r for r in table if "RSA-1024" in r.scheme)
        assert rsa.signature_bytes == 128

    def test_paper_row_close_to_rsa(self):
        """'almost the same as that of a standard RSA-1024 signature'"""
        paper = paper_signature_accounting().signature_bytes
        assert abs(paper - 128) <= 32   # within 25%


class TestOurInstantiation:
    def test_measured_matches_formula(self, group, gpk, member_keys, rng):
        """len(sig.encode()) equals 2|G1| + 5|Zr| exactly."""
        from repro.core import groupsig
        signature = groupsig.sign(gpk, member_keys["a1"], b"size", rng=rng)
        model = size_model_for(group)
        assert len(signature.encode()) * 8 == model.group_signature_bits()

    def test_table_contains_all_rows(self, group):
        table = signature_size_table(group)
        schemes = " | ".join(row.scheme for row in table)
        for expected in ("MNT-170", "RSA-1024", "measured", "ECDSA-160",
                         "ECDSA-256"):
            assert expected in schemes

    def test_ss512_signature_close_to_paper_scale(self):
        """On SS512 our scalars are 160-bit (vs 170) and points 520-bit
        (vs 171 -- supersingular curves need bigger fields for the same
        security).  The scalar part matches the paper's arithmetic."""
        from repro.pairing import PairingGroup
        model = size_model_for(PairingGroup("SS512"))
        assert model.scalar_bits == 160
        assert 5 * model.scalar_bits == 800   # vs the paper's 850

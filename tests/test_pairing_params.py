"""Tests for pairing parameter presets and generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.pairing.params import (
    PRESETS,
    PairingParams,
    find_parameters,
    get_params,
)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_validate(self, name):
        PRESETS[name].validate()

    def test_expected_bit_lengths(self):
        assert PRESETS["TEST"].p.bit_length() == 128
        assert PRESETS["TEST"].r.bit_length() == 64
        assert PRESETS["SS512"].p.bit_length() == 512
        assert PRESETS["SS512"].r.bit_length() == 160
        assert PRESETS["SS1024"].p.bit_length() == 1024

    def test_lookup_case_insensitive(self):
        assert get_params("test") is PRESETS["TEST"]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ParameterError):
            get_params("nope")

    def test_size_helpers(self):
        params = PRESETS["TEST"]
        assert params.scalar_bytes == 8
        assert params.field_bytes == 16
        assert params.point_bytes == 17
        assert params.gt_bytes == 32


class TestValidation:
    def test_wrong_cofactor_rejected(self):
        good = PRESETS["TEST"]
        bad = PairingParams(name="bad", p=good.p, r=good.r, h=good.h + 1)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_non_3mod4_rejected(self):
        bad = PairingParams(name="bad", p=13, r=7, h=2)
        with pytest.raises(ParameterError):
            bad.validate()

    def test_composite_r_rejected(self):
        # p = 3 mod 4 with h*r = p+1 but r composite
        bad = PairingParams(name="bad", p=19, r=10, h=2)
        with pytest.raises(ParameterError):
            bad.validate()


class TestGeneration:
    def test_find_small_parameters(self):
        params = find_parameters(16, 40, rng=random.Random(3))
        params.validate()
        assert params.r.bit_length() == 16
        assert params.p.bit_length() == 40

    def test_generation_deterministic(self):
        a = find_parameters(16, 40, rng=random.Random(3))
        b = find_parameters(16, 40, rng=random.Random(3))
        assert a.p == b.p and a.r == b.r

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ParameterError):
            find_parameters(40, 40)

"""Roaming: mobile users re-associate across routers over time.

The paper's layer-3 users "freely access the network from anywhere
within the city"; with random-waypoint mobility and periodic
re-association, one user should be served by several different mesh
routers over a simulated stretch -- each time via a fresh anonymous
handshake, leaving no linkable trail.
"""

import pytest

from repro.core.audit import audit_by_session
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


@pytest.fixture(scope="module")
def roaming_scenario():
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=314,
        topology=TopologyConfig(area_side=1200.0, router_grid=2,
                                user_count=4, seed=314,
                                access_range=500.0),
        group_sizes=(("Company X", 16),),
        beacon_interval=4.0,
        mobility=True,
        mobility_speed=(10.0, 25.0),   # fast, to force roaming quickly
        reconnect_interval=30.0))
    for user in scenario.sim_users.values():
        user.connect_timeout = 10.0
    scenario.run(420.0)
    return scenario


class TestRoaming:
    def test_users_move(self, roaming_scenario):
        for walker in roaming_scenario.walkers.values():
            assert walker.distance_travelled > 100.0

    def test_users_reassociate_repeatedly(self, roaming_scenario):
        metrics = roaming_scenario.user_metrics()
        assert metrics["connected"] > metrics_count(roaming_scenario)

    def test_some_user_visits_multiple_routers(self, roaming_scenario):
        log_routers = {}
        for router in roaming_scenario.sim_routers.values():
            for entry in router.router.auth_log:
                log_routers.setdefault(entry.router_id, 0)
                log_routers[entry.router_id] += 1
        # Sessions were spread across more than one router.
        assert len([r for r, n in log_routers.items() if n > 0]) >= 2

    def test_every_roamed_session_auditable(self, roaming_scenario):
        """Handoffs leave a complete, auditable trail for NO."""
        deployment = roaming_scenario.deployment
        for router in roaming_scenario.sim_routers.values():
            deployment.network_log.ingest(router.router.auth_log)
        assert len(deployment.network_log) > 0
        for router in roaming_scenario.sim_routers.values():
            for entry in router.router.auth_log[:3]:
                result = audit_by_session(deployment.operator,
                                          deployment.network_log,
                                          entry.session_id)
                assert result.group_name == "Company X"

    def test_sessions_unlinkable_across_handoffs(self, roaming_scenario):
        """Every handoff produced a fresh session identifier."""
        session_ids = []
        for router in roaming_scenario.sim_routers.values():
            session_ids.extend(e.session_id
                               for e in router.router.auth_log)
        assert len(session_ids) == len(set(session_ids))
        assert len(session_ids) >= 8   # plenty of re-associations


def metrics_count(scenario) -> int:
    return len(scenario.sim_users)

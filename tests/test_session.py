"""Data-session tests: the hybrid MAC phase (Section V.C)."""

import pytest

from repro.core.messages import DataPacket
from repro.core.protocols.session import SecureSession, session_id_from
from repro.errors import SessionError


@pytest.fixture
def session_pair(fresh_deployment):
    deployment = fresh_deployment()
    return deployment.connect("alice", "MR-1")


class TestDataExchange:
    def test_bidirectional(self, session_pair):
        user, router = session_pair
        assert router.receive(user.send(b"a")) == b"a"
        assert user.receive(router.send(b"b")) == b"b"

    def test_many_packets_in_order(self, session_pair):
        user, router = session_pair
        for i in range(20):
            payload = b"pkt-%d" % i
            assert router.receive(user.send(payload)) == payload

    def test_empty_payload(self, session_pair):
        user, router = session_pair
        assert router.receive(user.send(b"")) == b""

    def test_byte_counters(self, session_pair):
        user, router = session_pair
        packet = user.send(b"counted")
        router.receive(packet)
        assert user.bytes_sent == len(packet.encode())
        assert router.bytes_received == len(packet.encode())


class TestReplayProtection:
    def test_replayed_packet_rejected(self, session_pair):
        user, router = session_pair
        packet = user.send(b"once")
        router.receive(packet)
        with pytest.raises(SessionError):
            router.receive(packet)

    def test_reordered_packet_rejected(self, session_pair):
        user, router = session_pair
        first = user.send(b"1")
        second = user.send(b"2")
        router.receive(second)
        with pytest.raises(SessionError):
            router.receive(first)

    def test_reflected_packet_rejected(self, session_pair):
        """A packet the user sent, bounced back at the user."""
        user, _router = session_pair
        packet = user.send(b"mine")
        with pytest.raises(SessionError):
            user.receive(packet)

    def test_cross_session_packet_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        user1, router1 = deployment.connect("alice", "MR-1")
        user2, router2 = deployment.connect("bob", "MR-1")
        packet = user1.send(b"for session 1")
        with pytest.raises(SessionError):
            router2.receive(packet)

    def test_tampered_payload_rejected(self, session_pair):
        user, router = session_pair
        packet = user.send(b"valuable")
        tampered = DataPacket(packet.session_id, packet.sequence,
                              packet.sealed[:-1]
                              + bytes([packet.sealed[-1] ^ 1]))
        with pytest.raises(SessionError):
            router.receive(tampered)

    def test_sequence_spoof_rejected(self, session_pair):
        """Changing the sequence number breaks the AAD binding."""
        user, router = session_pair
        packet = user.send(b"seq")
        spoofed = DataPacket(packet.session_id, packet.sequence + 2,
                             packet.sealed)
        with pytest.raises(SessionError):
            router.receive(spoofed)


class TestSessionIdentity:
    def test_session_id_derivation_symmetric_inputs(self, group):
        a = group.g1 ** 3
        b = group.g1 ** 5
        assert session_id_from(a, b) != session_id_from(b, a)
        assert len(session_id_from(a, b)) == 16

    def test_distinct_shared_secrets_distinct_keys(self, group):
        sid = b"\x01" * 16
        s1 = SecureSession(sid, group.g1 ** 7, initiator=True)
        s2 = SecureSession(sid, group.g1 ** 8, initiator=False)
        packet = s1.send(b"x")
        with pytest.raises(SessionError):
            s2.receive(packet)

    def test_handshake_seal_open(self, group):
        sid = b"\x02" * 16
        shared = group.g1 ** 9
        a = SecureSession(sid, shared, initiator=True)
        b = SecureSession(sid, shared, initiator=False)
        assert b.open_handshake(a.seal_handshake(b"confirm")) == b"confirm"

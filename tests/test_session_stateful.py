"""Stateful property test of the session layer (hypothesis).

Random interleavings of sends, receives, drops, replays, and
duplicated deliveries must never let the receiver accept a packet
twice, accept packets out of order, or desynchronize the pair.
"""

import random as _random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.deployment import Deployment
from repro.errors import SessionError

# One shared deployment: building pairing keys per test case would
# dominate the runtime.  Sessions themselves are created per machine.
_DEPLOYMENT = Deployment.build(preset="TEST", seed=404,
                               groups={"Company X": 4},
                               users=[("alice", ["Company X"])],
                               routers=["MR-1"])


class SessionMachine(RuleBasedStateMachine):
    """Drives one user->router direction with adversarial delivery."""

    def __init__(self) -> None:
        super().__init__()
        self.user, self.router = _DEPLOYMENT.connect("alice", "MR-1")
        self.in_flight = []        # packets sent but not delivered
        self.delivered = []        # packets already accepted once
        self.sent_count = 0
        self.accepted_count = 0
        self.last_accepted_seq = -1

    @rule(payload=st.binary(min_size=0, max_size=40))
    def send(self, payload):
        packet = self.user.send(payload)
        self.in_flight.append((packet, payload))
        self.sent_count += 1

    @rule()
    @precondition(lambda self: self.in_flight)
    def deliver_oldest(self):
        packet, payload = self.in_flight.pop(0)
        result = self.router.receive(packet)
        assert result == payload
        assert packet.sequence > self.last_accepted_seq
        self.last_accepted_seq = packet.sequence
        self.accepted_count += 1
        self.delivered.append(packet)

    @rule()
    @precondition(lambda self: len(self.in_flight) >= 2)
    def deliver_newest_then_old_fails(self):
        """Out-of-order delivery: newest accepted, older then rejected."""
        packet, payload = self.in_flight.pop()
        skipped = list(self.in_flight)
        self.in_flight.clear()
        assert self.router.receive(packet) == payload
        self.last_accepted_seq = packet.sequence
        self.accepted_count += 1
        self.delivered.append(packet)
        for old_packet, _old_payload in skipped:
            try:
                self.router.receive(old_packet)
                raise AssertionError("stale packet accepted")
            except SessionError:
                pass

    @rule()
    @precondition(lambda self: self.delivered)
    def replay_fails(self):
        packet = self.delivered[-1]
        try:
            self.router.receive(packet)
            raise AssertionError("replay accepted")
        except SessionError:
            pass

    @rule()
    @precondition(lambda self: self.in_flight)
    def drop_one(self):
        index = _random.randrange(len(self.in_flight))
        self.in_flight.pop(index)

    @invariant()
    def accepted_never_exceeds_sent(self):
        assert self.accepted_count <= self.sent_count

    @invariant()
    def byte_counters_monotone(self):
        assert self.router.bytes_received >= 0
        assert self.user.bytes_sent >= self.router.bytes_received or True


TestSessionMachine = SessionMachine.TestCase
TestSessionMachine.settings = settings(max_examples=15,
                                       stateful_step_count=20,
                                       deadline=None)

"""Health observatory: alert rules, router states, incident timelines.

Unit coverage for the :mod:`repro.obs.health` layer -- rule
validation, the threshold/ratio/absence predicates with ``for_windows``
hold-downs and the firing -> resolved lifecycle, the per-router
healthy/degraded/critical state machine with its exported gauges and
``/health`` snapshot -- plus the scenario-level acceptance from the
ISSUE: a seeded chaos run detects its injected router kill and channel
sever within the MTTD bound, a fault-free run of the same mesh fires
zero alerts, and the correlator's timelines replay bit-identically.
"""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.faults import FaultEvent, FaultInjector, FaultPlan, RouterFault
from repro.obs.health import (
    HEALTH_STATES,
    AlertEngine,
    AlertRule,
    HealthMonitor,
    HealthPolicy,
    RouterSignals,
    correlate_incidents,
    default_metro_rules,
    incidents_to_jsonl,
    render_incidents,
    window_value,
)
from repro.obs.rollup import read_jsonl
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def make_window(index=0, t=0.0, counters=None, gauges=None,
                histograms=None):
    return {"index": index, "t": t, "counters": counters or {},
            "gauges": gauges or {}, "histograms": histograms or {}}


class TestWindowValue:
    def test_counter_then_gauge_then_histogram_field(self):
        window = make_window(
            counters={"a": 2.0}, gauges={"a": 9.0, "g": 0.5},
            histograms={"lat": {"count": 3, "p95": 0.25}})
        assert window_value(window, "a") == 2.0       # counter wins
        assert window_value(window, "g") == 0.5
        assert window_value(window, "lat:p95") == 0.25
        assert window_value(window, "missing") is None

    def test_sum_counts_missing_addends_as_zero(self):
        window = make_window(counters={"a": 2.0, "b": 3.0})
        assert window_value(window, "a+b") == 5.0
        assert window_value(window, "a+missing") == 2.0
        assert window_value(window, "gone+missing") is None


class TestAlertRuleValidation:
    def test_rejects_unknown_kind_op_severity(self):
        with pytest.raises(SimulationError):
            AlertRule(name="r", kind="spline", metric="m")
        with pytest.raises(SimulationError):
            AlertRule(name="r", metric="m", op="~=")
        with pytest.raises(SimulationError):
            AlertRule(name="r", metric="m", severity="meh")
        with pytest.raises(SimulationError):
            AlertRule(name="r", metric="m", for_windows=0)

    def test_rejects_incomplete_rules(self):
        with pytest.raises(SimulationError):
            AlertRule(name="r", kind="threshold")
        with pytest.raises(SimulationError):
            AlertRule(name="r", kind="ratio", numerator="n")

    def test_engine_rejects_duplicate_names(self):
        rule = AlertRule(name="dup", metric="m")
        with pytest.raises(SimulationError):
            AlertEngine([rule, AlertRule(name="dup", metric="x")])


class TestAlertLifecycle:
    def test_threshold_fires_and_resolves(self):
        engine = AlertEngine([AlertRule(name="hot", metric="errs",
                                        op=">=", value=3,
                                        severity="critical")])
        assert engine.evaluate(make_window(0, counters={"errs": 2})) == []
        events = engine.evaluate(make_window(1, t=10.0,
                                             counters={"errs": 5}))
        assert events == [{"event": "firing", "rule": "hot",
                           "severity": "critical", "window": 1,
                           "t": 10.0, "observed": 5.0}]
        assert engine.firing() == ["hot"]
        events = engine.evaluate(make_window(2, t=20.0))
        assert events[0]["event"] == "resolved"
        assert engine.firing() == [] and engine.firing_count() == 0
        assert len(engine.events) == 2

    def test_for_windows_hold_down_and_streak_reset(self):
        engine = AlertEngine([AlertRule(name="slow", metric="q",
                                        value=1, for_windows=3)])
        hot = lambda i: make_window(i, counters={"q": 1})
        cold = lambda i: make_window(i)
        assert engine.evaluate(hot(0)) == []
        assert engine.evaluate(hot(1)) == []
        assert engine.evaluate(cold(2)) == []      # streak resets
        assert engine.evaluate(hot(3)) == []
        assert engine.evaluate(hot(4)) == []
        assert engine.evaluate(hot(5))[0]["event"] == "firing"

    def test_absence_detects_stopped_heartbeat(self):
        engine = AlertEngine([AlertRule(name="hb", kind="absence",
                                        metric="beats")])
        assert engine.evaluate(
            make_window(0, counters={"beats": 4})) == []
        assert engine.evaluate(make_window(1))[0]["event"] == "firing"

    def test_ratio_with_min_denominator(self):
        engine = AlertEngine([AlertRule(
            name="failures", kind="ratio", numerator="bad",
            denominator="bad+good", op=">=", value=0.5,
            min_denominator=4)])
        # Below the sample floor with a silent numerator: no signal.
        assert engine.evaluate(
            make_window(0, counters={"good": 1})) == []
        # A loud numerator over a silent denominator is 100% failure.
        events = engine.evaluate(make_window(1, counters={"bad": 2}))
        assert events[0]["observed"] == 1.0
        events = engine.evaluate(
            make_window(2, counters={"bad": 1, "good": 7}))
        assert events[0]["event"] == "resolved"

    def test_default_metro_pack_quiet_on_healthy_window(self):
        engine = AlertEngine(default_metro_rules())
        window = make_window(
            counters={"user.handshakes_completed_total": 6},
            gauges={"health.routers_critical": 0,
                    "health.routers_degraded": 0})
        assert engine.evaluate(window) == []


class TestHealthMonitor:
    def test_crash_and_recovery_transitions(self):
        monitor = HealthMonitor()
        registry = obs.MetricsRegistry(clock=lambda: 0.0)
        monitor.observe(0.0, 0, [RouterSignals(router_id="MR-1")],
                        registry=registry)
        snapshot = monitor.observe(
            30.0, 1, [RouterSignals(router_id="MR-1", crashed=True)],
            registry=registry)
        assert snapshot["status"] == "critical"
        assert snapshot["routers"]["MR-1"]["reasons"] == \
            ["router crashed"]
        monitor.observe(60.0, 2, [RouterSignals(router_id="MR-1")],
                        registry=registry)
        assert [(tr["from"], tr["to"], tr["window"])
                for tr in monitor.transitions] == \
            [("healthy", "critical", 1), ("critical", "healthy", 2)]
        snap = registry.snapshot()["gauges"]
        assert snap["health.routers_critical"] == 0
        assert snap["health.state.MR-1"] == 0
        assert snap["health.status_level"] == 0

    def test_staleness_and_channel_rules(self):
        monitor = HealthMonitor()
        state, reasons = monitor._classify(RouterSignals(
            router_id="r", lists_age=700.0, staleness_grace=600.0))
        assert state == "critical" and "staleness grace" in reasons[0]
        state, reasons = monitor._classify(RouterSignals(
            router_id="r", channel_up=False, lists_age=400.0,
            staleness_grace=600.0))
        assert state == "degraded" and len(reasons) == 2

    def test_gossip_lag_and_fsync_loss_degrade(self):
        monitor = HealthMonitor()
        state, reasons = monitor._classify(RouterSignals(
            router_id="r", versions_behind=2))
        assert state == "degraded" and "gossip" in reasons[0]
        monitor.observe(0.0, 0, [RouterSignals(router_id="r")])
        state, reasons = monitor._classify(RouterSignals(
            router_id="r", fsync_lost_bytes=128.0))
        assert state == "degraded" and "fsync" in reasons[0]

    def test_failure_ratio_windows_cumulative_counts(self):
        policy = HealthPolicy(min_handshake_samples=4)
        monitor = HealthMonitor(policy)
        monitor.observe(0.0, 0, [RouterSignals(
            router_id="r", handshakes_completed=100.0,
            handshakes_rejected=0.0)])
        # This window: 1 completed, 4 rejected -> 80% failure.
        snapshot = monitor.observe(30.0, 1, [RouterSignals(
            router_id="r", handshakes_completed=101.0,
            handshakes_rejected=4.0)])
        assert snapshot["routers"]["r"]["state"] == "degraded"
        # Below the sample floor: no ratio signal.
        snapshot = monitor.observe(60.0, 2, [RouterSignals(
            router_id="r", handshakes_completed=101.0,
            handshakes_rejected=5.0)])
        assert snapshot["routers"]["r"]["state"] == "healthy"

    def test_pool_restarts_degrade_the_mesh(self):
        monitor = HealthMonitor()
        snapshot = monitor.observe(
            0.0, 0, [RouterSignals(router_id="r")],
            pool_worker_restarts=2.0)
        assert snapshot["status"] == "degraded"
        assert snapshot["routers"]["r"]["state"] == "healthy"
        assert snapshot["mesh"]["pool_worker_restarts"] == 2.0
        # Cumulative counter unchanged next window: healthy again.
        snapshot = monitor.observe(
            30.0, 1, [RouterSignals(router_id="r")],
            pool_worker_restarts=2.0)
        assert snapshot["status"] == "healthy"


class TestCorrelator:
    WINDOWS = [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_detected_and_recovered_incident(self):
        faults = [FaultEvent(kind="kill", target="MR-1", t=35.0),
                  FaultEvent(kind="restart", target="MR-1", t=75.0)]
        transitions = [
            {"router": "MR-1", "from": "healthy", "to": "critical",
             "t": 60.0, "window": 2, "reasons": ["router crashed"]},
            {"router": "MR-1", "from": "critical", "to": "healthy",
             "t": 90.0, "window": 3, "reasons": []}]
        alerts = [{"event": "firing", "rule": "router-critical",
                   "severity": "critical", "window": 2, "t": 60.0,
                   "observed": 1.0}]
        (incident,) = correlate_incidents(faults, transitions, alerts,
                                          self.WINDOWS)
        assert incident["incident"] == "router-kill"
        assert incident["detected"] and incident["recovered"]
        assert incident["mttd_seconds"] == 25.0
        # Injected at 35 -> first window that could see it is t=60
        # (index 2); detected in window 2 -> MTTD of 1 window.
        assert incident["mttd_windows"] == 1
        assert incident["mttr_seconds"] == 55.0
        kinds = [e["event"] for e in incident["timeline"]]
        assert kinds == ["fault_injected", "alert_firing",
                         "health_transition", "repair_injected",
                         "health_transition"]

    def test_undetected_incident_is_reported_not_dropped(self):
        faults = [FaultEvent(kind="sever_channel", target="MR-2",
                             t=10.0)]
        (incident,) = correlate_incidents(faults, [], [], self.WINDOWS)
        assert incident["incident"] == "channel-sever"
        assert not incident["detected"] and not incident["recovered"]
        assert incident["mttd_windows"] is None
        assert "UNDETECTED" in render_incidents([incident])

    def test_non_incident_kinds_are_ignored(self):
        faults = [FaultEvent(kind="fsync_loss", target="MR-1", t=5.0),
                  FaultEvent(kind="kill_worker", t=6.0)]
        assert correlate_incidents(faults, [], [], self.WINDOWS) == []

    def test_jsonl_round_trip(self):
        faults = [FaultEvent(kind="kill", target="MR-1", t=35.0)]
        incidents = correlate_incidents(faults, [], [], self.WINDOWS)
        text = incidents_to_jsonl(incidents)
        assert read_jsonl(text) == incidents
        assert render_incidents([]) == "no incidents\n"


def chaos_scenario(seed, health=True, faults=True):
    from repro.core.protocols.user_router import RetryPolicy

    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=6, seed=seed,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=0.15,
        retry_policy=RetryPolicy(initial_timeout=2.0,
                                 backoff_factor=2.0, max_timeout=8.0,
                                 max_retries=4, jitter=0.1),
        durable=True, sharded_revocation=True,
        gossip_period=20.0, gossip_checkpoints=True,
        telemetry_window=30.0, health=health))
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    injector = None
    if faults:
        ids = sorted(scenario.sim_routers)
        injector = FaultInjector(FaultPlan(
            seed=seed,
            router=(RouterFault("kill", at=40.0, router_id=ids[0]),
                    RouterFault("restart", at=90.0, router_id=ids[0]),
                    RouterFault("sever_channel", at=60.0,
                                router_id=ids[-1]),
                    RouterFault("restore_channel", at=150.0,
                                router_id=ids[-1]))))
        injector.arm_scenario(scenario)
    scenario.run(240.0)
    return scenario, injector


class TestScenarioIntegration:
    @pytest.fixture(scope="class")
    def chaos(self):
        return chaos_scenario(seed=101)

    def test_fault_event_log_is_ground_truth(self, chaos):
        _, injector = chaos
        assert injector.events_snapshot() == [
            {"kind": "kill", "target": "MR-0", "t": 1_000_040.0},
            {"kind": "sever_channel", "target": "MR-3",
             "t": 1_000_060.0},
            {"kind": "restart", "target": "MR-0", "t": 1_000_090.0},
            {"kind": "restore_channel", "target": "MR-3",
             "t": 1_000_150.0}]

    def test_kill_and_sever_detected_within_two_windows(self, chaos):
        scenario, injector = chaos
        incidents = scenario.incidents(injector)
        assert {i["incident"] for i in incidents} == \
            {"router-kill", "channel-sever"}
        for incident in incidents:
            assert incident["detected"], incident
            assert incident["mttd_windows"] <= 2
            assert incident["recovered"], incident

    def test_alerts_fire_and_resolve(self, chaos):
        scenario, _ = chaos
        events = scenario.alert_events()
        fired = {e["rule"] for e in events if e["event"] == "firing"}
        assert "router-critical" in fired
        resolved = {e["rule"] for e in events
                    if e["event"] == "resolved"}
        assert fired == resolved           # the mesh healed
        assert scenario.alert_engine.firing() == []

    def test_health_snapshot_shape(self, chaos):
        scenario, _ = chaos
        snapshot = scenario.health_snapshot()
        assert snapshot["status"] in HEALTH_STATES
        assert set(snapshot["routers"]) == set(scenario.sim_routers)
        for entry in snapshot["routers"].values():
            assert entry["state"] in HEALTH_STATES
        assert scenario.health_eval_seconds > 0.0

    def test_incident_timelines_replay_bit_identically(self, chaos):
        scenario, injector = chaos
        again, injector2 = chaos_scenario(seed=101)
        assert scenario.incidents_jsonl(injector) == \
            again.incidents_jsonl(injector2)

    def test_fault_free_baseline_fires_zero_alerts(self):
        scenario, _ = chaos_scenario(seed=101, faults=False)
        assert scenario.alert_events() == []
        assert scenario.health_monitor.transitions == []
        assert scenario.health_snapshot()["status"] == "healthy"

    def test_health_requires_telemetry_window(self):
        with pytest.raises(SimulationError):
            Scenario(ScenarioConfig(
                seed=1,
                topology=TopologyConfig(area_side=400.0,
                                        router_grid=1, user_count=2,
                                        seed=1),
                health=True))

    def test_incidents_require_health(self):
        scenario = Scenario(ScenarioConfig(
            seed=1,
            topology=TopologyConfig(area_side=400.0, router_grid=1,
                                    user_count=2, seed=1),
            telemetry_window=10.0))
        scenario.run(20.0)
        with pytest.raises(SimulationError):
            scenario.incidents(None)

"""Causal tracing: context propagation, op attribution, stitching.

Covers the span-layer contracts the observability docs promise:

* explicit :class:`TraceContext` parenting strictly supersedes the
  thread-local stack (the cross-thread regression this layer fixed);
* manual ``start()``/``finish()`` spans never join the stack;
* the instrument->span bridge attributes op costs exclusively to the
  innermost open span, and ``instrument.replay`` bypasses the bridge;
* worker-style snapshot merging re-parents orphan traces;
* the verifier pool stitches worker-side verification spans under the
  submitting items' contexts (with namespaced span ids);
* the report layer reconstructs traces, waterfalls, and folded stacks.
"""

import random
import threading

import pytest

from repro import instrument, obs
from repro.core import groupsig
from repro.core.verifier_pool import VerifierPool
from repro.obs.report import (
    build_traces,
    render_waterfall,
    to_folded,
    top_slowest,
)


@pytest.fixture(autouse=True)
def _no_ambient_leak():
    assert obs.active() is None
    yield
    obs.uninstall()


class TestTraceContext:
    def test_tuple_round_trip(self):
        ctx = obs.TraceContext(trace_id="t9", span_id="s4")
        assert obs.TraceContext.from_tuple(ctx.to_tuple()) == ctx

    def test_from_tuple_none(self):
        assert obs.TraceContext.from_tuple(None) is None


class TestParenting:
    def test_stack_nesting_links_ids(self):
        reg = obs.MetricsRegistry()
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_explicit_context_supersedes_stack(self):
        """Regression: a span opened with a foreign context must join
        that trace even while an unrelated span is open on this
        thread's stack."""
        reg = obs.MetricsRegistry()
        root = reg.start_span("handshake")
        with reg.span("unrelated") as unrelated:
            with reg.span("child", context=root.context) as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert child.trace_id != unrelated.trace_id
        root.finish()

    def test_two_threads_one_trace(self):
        """Spans opened on two helper threads under one explicit
        context stitch into the same trace (per-thread stacks cannot
        link them)."""
        reg = obs.MetricsRegistry()
        root = reg.start_span("fanout")
        ctx = root.context

        def work(label):
            with reg.span("worker", context=ctx, label=label):
                pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        root.finish()
        records = reg.spans()
        workers = [r for r in records if r.name == "worker"]
        assert len(workers) == 2
        assert {r.trace_id for r in workers} == {root.trace_id}
        assert {r.parent_id for r in workers} == {root.span_id}
        ids = [r.span_id for r in records]
        assert len(ids) == len(set(ids))

    def test_started_span_does_not_join_stack(self):
        reg = obs.MetricsRegistry()
        event_span = reg.start_span("event")
        with reg.span("sync") as sync:
            # The started span is not this thread's innermost parent.
            assert sync.trace_id != event_span.trace_id
            assert sync.parent_id is None
        event_span.finish()

    def test_finish_is_idempotent(self):
        reg = obs.MetricsRegistry()
        span = reg.start_span("once")
        span.finish()
        span.finish()
        assert len(reg.spans()) == 1

    def test_explicit_trace_id_names_the_trace(self):
        reg = obs.MetricsRegistry()
        root = reg.start_span("handshake", trace_id="U-1#1")
        with reg.span("stage", context=root.context) as stage:
            assert stage.trace_id == "U-1#1"
        root.finish()


class TestOpAttribution:
    def test_ops_land_in_innermost_open_span(self):
        with obs.collecting() as reg:
            with reg.span("outer"):
                instrument.note("pairing", 2)
                with reg.span("inner"):
                    instrument.note("pairing", 3)
                instrument.note("exp", 1)
        by_name = {r.name: dict(r.ops) for r in reg.spans()}
        assert by_name["inner"] == {"pairing": 3}
        assert by_name["outer"] == {"pairing": 2, "exp": 1}

    def test_trace_span_sum_matches_instrument_total(self, gpk,
                                                     member_keys):
        rng = random.Random(31)
        with instrument.count_operations() as ops:
            with obs.collecting() as reg:
                with reg.span("handshake"):
                    sig = groupsig.sign(gpk, member_keys["a1"], b"m",
                                        rng=rng)
                    groupsig.verify(gpk, b"m", sig)
        (trace,) = build_traces(reg.snapshot())
        totals = ops.snapshot()
        for event in ("pairing", "exp", "psi"):
            assert trace["ops"].get(event, 0) == totals.get(event, 0)

    def test_replay_skips_the_span_sink(self):
        with instrument.count_operations() as ops:
            with obs.collecting() as reg:
                with reg.span("host"):
                    instrument.replay("pairing", 4)
        assert ops.total("pairing") == 4
        (record,) = reg.spans()
        assert dict(record.ops) == {}

    def test_sink_cleared_on_uninstall(self):
        with obs.collecting():
            pass
        # No registry installed: a note() must not blow up or leak
        # into the previous registry's spans.
        instrument.note("pairing")


class TestMergeReparenting:
    def test_orphan_worker_trace_is_adopted(self):
        parent = obs.MetricsRegistry()
        root = parent.start_span("handshake")
        worker = obs.MetricsRegistry(span_id_prefix="w7.")
        with worker.span("chunk") as chunk:
            assert chunk.span_id.startswith("w7.")
            with worker.span("item"):
                pass
        parent.merge_spans(worker.snapshot()["spans"],
                           reparent=root.context)
        root.finish()
        by_name = {r.name: r for r in parent.spans()}
        assert by_name["chunk"].trace_id == root.trace_id
        assert by_name["chunk"].parent_id == root.span_id
        # The orphan root's descendants follow it into the trace.
        assert by_name["item"].trace_id == root.trace_id
        assert by_name["item"].parent_id == by_name["chunk"].span_id

    def test_stitched_records_stay_untouched(self):
        parent = obs.MetricsRegistry()
        root = parent.start_span("handshake", trace_id="T")
        other = obs.TraceContext(trace_id="T", span_id="elsewhere")
        worker = obs.MetricsRegistry(span_id_prefix="w8.")
        with worker.span("item", context=other):
            pass
        parent.merge_spans(worker.snapshot()["spans"],
                           reparent=root.context)
        root.finish()
        by_name = {r.name: r for r in parent.spans()}
        assert by_name["item"].trace_id == "T"
        assert by_name["item"].parent_id == "elsewhere"


class TestPoolStitching:
    def _batch(self, gpk, member_keys, count=3):
        rng = random.Random(77)
        batch = []
        for index in range(count):
            message = b"pool-%d" % index
            batch.append((message, groupsig.sign(
                gpk, member_keys["a1"], message, rng=rng)))
        return batch

    def test_serial_pool_stitches_and_attributes(self, gpk, member_keys):
        batch = self._batch(gpk, member_keys)
        with obs.collecting() as reg:
            roots = [reg.start_span("handshake", trace_id=f"hs#{i}")
                     for i in range(len(batch))]
            with VerifierPool(gpk, processes=0) as pool:
                outcomes = pool.verify_batch(
                    batch, traces=[r.context for r in roots])
            for root in roots:
                root.finish()
        assert outcomes == [None] * len(batch)
        traces = build_traces(reg.snapshot())
        assert {t["trace_id"] for t in traces} \
            == {f"hs#{i}" for i in range(len(batch))}
        for trace in traces:
            names = [r["name"] for r in trace["spans"]]
            assert "pool.verify_item" in names
            assert "groupsig.spk" in names     # nests via the stack
            assert trace["ops"]["pairing"] == 3   # |URL| = 0 verify

    def test_parallel_pool_ships_worker_spans(self, gpk, member_keys):
        batch = self._batch(gpk, member_keys)
        with obs.collecting() as reg:
            roots = [reg.start_span("handshake", trace_id=f"hs#{i}")
                     for i in range(len(batch))]
            with VerifierPool(gpk, processes=2, chunk_size=2) as pool:
                if pool._pool is None:
                    pytest.skip("platform cannot spawn worker processes")
                outcomes = pool.verify_batch(
                    batch, traces=[r.context for r in roots])
            for root in roots:
                root.finish()
        assert outcomes == [None] * len(batch)
        traces = build_traces(reg.snapshot())
        assert {t["trace_id"] for t in traces} \
            == {f"hs#{i}" for i in range(len(batch))}
        for trace in traces:
            items = [r for r in trace["spans"]
                     if r["name"] == "pool.verify_item"]
            assert len(items) == 1
            # Worker-minted ids are namespaced by pid, so merged
            # snapshots can never collide with parent-minted ids.
            assert items[0]["span_id"].startswith("w")
            assert items[0]["parent_id"] == trace["root"]["span_id"]
            assert trace["ops"]["pairing"] == 3

    def test_misaligned_traces_rejected(self, gpk, member_keys):
        from repro.errors import ParameterError
        batch = self._batch(gpk, member_keys, count=2)
        with VerifierPool(gpk, processes=0) as pool:
            with pytest.raises(ParameterError):
                pool.verify_batch(batch, traces=[None])


class TestReportLayer:
    def _registry(self):
        clock = iter(range(100))
        reg = obs.MetricsRegistry(clock=lambda: float(next(clock)))
        root = reg.start_span("handshake", trace_id="demo#1")
        with reg.span("verify", context=root.context):
            pass
        root.finish()
        return reg

    def test_build_traces_shapes(self):
        reg = self._registry()
        (trace,) = build_traces(reg.snapshot())
        assert trace["trace_id"] == "demo#1"
        assert trace["root"]["name"] == "handshake"
        assert [r["name"] for r in trace["spans"]] \
            == ["handshake", "verify"]
        assert trace["duration"] == trace["root"]["duration"]

    def test_top_slowest_orders_by_duration(self):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        quick = reg.span(  # manual records with chosen durations
            "a", trace_id="fast")
        quick.start()
        quick.finish()
        from repro.obs.spans import SpanRecord
        reg._spans.record(SpanRecord(name="b", start=0.0, duration=9.0,
                                     parent=None, trace_id="slow",
                                     span_id="sX"))
        ranked = top_slowest(build_traces(reg.snapshot()), n=1)
        assert [t["trace_id"] for t in ranked] == ["slow"]

    def test_waterfall_mentions_every_span(self):
        reg = self._registry()
        text = render_waterfall(build_traces(reg.snapshot()))
        assert "trace demo#1" in text
        assert "handshake" in text and "verify" in text

    def test_folded_stacks_nest_and_weight(self):
        reg = self._registry()
        folded = to_folded(build_traces(reg.snapshot()))
        lines = dict(line.rsplit(" ", 1)
                     for line in folded.strip().splitlines())
        assert "handshake;verify" in lines
        # Zero-duration virtual spans still carry weight >= 1.
        assert all(int(w) >= 1 for w in lines.values())

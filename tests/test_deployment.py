"""Tests for the Deployment builder and its conveniences."""

import pytest

from repro.core.deployment import Deployment
from repro.errors import ParameterError, RevokedKeyError


class TestBuild:
    def test_default_build(self):
        deployment = Deployment.build(preset="TEST", seed=1)
        assert "Company X" in deployment.gms
        assert "alice" in deployment.users
        assert "MR-1" in deployment.routers

    def test_deterministic_given_seed(self):
        a = Deployment.build(preset="TEST", seed=5)
        b = Deployment.build(preset="TEST", seed=5)
        assert (a.operator.gpk.w.encode()
                == b.operator.gpk.w.encode())
        assert (a.users["alice"].credentials["Company X"].x
                == b.users["alice"].credentials["Company X"].x)

    def test_different_seeds_differ(self):
        a = Deployment.build(preset="TEST", seed=5)
        b = Deployment.build(preset="TEST", seed=6)
        assert a.operator.gpk.w.encode() != b.operator.gpk.w.encode()

    def test_multi_group_multi_router(self, deployment):
        assert len(deployment.gms) == 2
        assert len(deployment.routers) == 2
        assert deployment.users["alice"].credentials.keys() == {
            "Company X", "University Z"}


class TestConnect:
    def test_connect_returns_matched_sessions(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, router_session = deployment.connect("alice", "MR-1")
        assert user_session.session_id == router_session.session_id

    def test_connect_feeds_network_log(self, fresh_deployment):
        deployment = fresh_deployment()
        user_session, _ = deployment.connect("alice", "MR-1")
        assert deployment.network_log.find(user_session.session_id)

    def test_context_selects_credential(self, fresh_deployment):
        deployment = fresh_deployment(
            users=[("alice", ["Company X", "University Z"])])
        deployment.connect("alice", "MR-1", context="University Z")
        from repro.core.audit import audit_by_session
        entry_id = deployment.routers["MR-1"].auth_log[-1].session_id
        result = audit_by_session(deployment.operator,
                                  deployment.network_log, entry_id)
        assert result.group_name == "University Z"

    def test_missing_context_credential_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        with pytest.raises(ParameterError):
            deployment.connect("bob", "MR-1", context="Company X")


class TestRevocationLifecycle:
    def test_revoked_then_blocked_everywhere(self, fresh_deployment):
        deployment = fresh_deployment(routers=["MR-1"])
        deployment.connect("bob", "MR-1")   # worked before revocation
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        deployment.routers["MR-1"].refresh_lists()
        with pytest.raises(RevokedKeyError):
            deployment.connect("bob", "MR-1")

    def test_other_users_unaffected(self, fresh_deployment):
        deployment = fresh_deployment()
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        deployment.routers["MR-1"].refresh_lists()
        deployment.connect("alice", "MR-1")   # still fine

    def test_revocation_idempotent(self, fresh_deployment):
        deployment = fresh_deployment()
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        version_after_first = deployment.operator.issue_url().version
        deployment.operator.revoke_user_key(index)
        assert deployment.operator.issue_url().version == \
            version_after_first

    def test_user_with_second_credential_survives(self, fresh_deployment):
        """Revoking alice's Company-X key leaves her University-Z role
        usable -- per-role revocation, the privacy model's granularity."""
        deployment = fresh_deployment(
            users=[("alice", ["Company X", "University Z"])])
        index = deployment.users["alice"].credentials["Company X"].index
        deployment.operator.revoke_user_key(index)
        deployment.routers["MR-1"].refresh_lists()
        with pytest.raises(RevokedKeyError):
            deployment.connect("alice", "MR-1", context="Company X")
        deployment.connect("alice", "MR-1", context="University Z")


class TestPeerConnect:
    def test_peer_connect_sessions_match(self, fresh_deployment):
        deployment = fresh_deployment()
        si, sr = deployment.peer_connect("alice", "bob", "MR-1")
        assert si.session_id == sr.session_id

"""Tests for the radio medium: range, latency, loss, eavesdropping."""

import random

import pytest

from repro.errors import SimulationError
from repro.wmn.radio import Frame, RadioMedium, distance
from repro.wmn.simclock import EventLoop


class Sink:
    """Minimal radio node recording deliveries."""

    def __init__(self, node_id, position):
        self.node_id = node_id
        self.position = position
        self.received = []

    def deliver(self, frame):
        self.received.append(frame)


def make_medium(loss=0.0, bitrate=1e6):
    loop = EventLoop()
    medium = RadioMedium(loop, bitrate=bitrate, default_range=100.0,
                         loss_probability=loss, rng=random.Random(1))
    return loop, medium


class TestDelivery:
    def test_in_range_receives(self):
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (50.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        medium.transmit(Frame("T", b"hello", src="a"))
        loop.run_all()
        assert len(b.received) == 1

    def test_out_of_range_does_not_receive(self):
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (500.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        medium.transmit(Frame("T", b"hello", src="a"))
        loop.run_all()
        assert b.received == []

    def test_sender_does_not_hear_itself(self):
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        medium.attach(a)
        medium.transmit(Frame("T", b"hello", src="a"))
        loop.run_all()
        assert a.received == []

    def test_unicast_still_overheard(self):
        """Eavesdroppers hear unicast frames in range -- the wireless
        medium leaks everything (threat model, Section III.B)."""
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (10.0, 0.0))
        eve = Sink("eve", (20.0, 0.0))
        for node in (a, b, eve):
            medium.attach(node)
        medium.transmit(Frame("T", b"secret", src="a", dst="b"))
        loop.run_all()
        assert len(b.received) == 1
        assert len(eve.received) == 1   # overheard

    def test_power_boost_extends_range(self):
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (150.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        medium.transmit(Frame("T", b"x", src="a"))               # 100m
        medium.transmit(Frame("T", b"x", src="a"), tx_range=200)  # boost
        loop.run_all()
        assert len(b.received) == 1

    def test_unknown_sender_rejected(self):
        _loop, medium = make_medium()
        with pytest.raises(SimulationError):
            medium.transmit(Frame("T", b"x", src="ghost"))

    def test_duplicate_attach_rejected(self):
        _loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        medium.attach(a)
        with pytest.raises(SimulationError):
            medium.attach(Sink("a", (1.0, 1.0)))

    def test_detach(self):
        loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (1.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        medium.detach("b")
        medium.transmit(Frame("T", b"x", src="a"))
        loop.run_all()
        assert b.received == []


class TestLatency:
    def test_serialization_delay_scales_with_size(self):
        loop, medium = make_medium(bitrate=8e3)   # 1 kB/s
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (10.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        arrivals = []
        b.deliver = lambda frame: arrivals.append(loop.now)
        medium.transmit(Frame("T", b"x" * 976, src="a"))   # 1000B frame
        loop.run_all()
        assert arrivals and abs(arrivals[0] - 1.0) < 0.01

    def test_frame_size_includes_header(self):
        frame = Frame("T", b"x" * 100, src="a")
        assert frame.size == 124


class TestLoss:
    def test_lossless_by_default(self):
        loop, medium = make_medium(loss=0.0)
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (10.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        for _ in range(20):
            medium.transmit(Frame("T", b"x", src="a"))
        loop.run_all()
        assert len(b.received) == 20

    def test_lossy_channel_drops(self):
        loop, medium = make_medium(loss=0.5)
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (10.0, 0.0))
        medium.attach(a)
        medium.attach(b)
        for _ in range(100):
            medium.transmit(Frame("T", b"x", src="a"))
        loop.run_all()
        assert 20 < len(b.received) < 80
        assert medium.frames_dropped == 100 - len(b.received)


class TestNeighborhood:
    def test_neighbors_of(self):
        _loop, medium = make_medium()
        a = Sink("a", (0.0, 0.0))
        b = Sink("b", (50.0, 0.0))
        c = Sink("c", (500.0, 0.0))
        for node in (a, b, c):
            medium.attach(node)
        assert medium.neighbors_of("a") == ["b"]

    def test_distance(self):
        assert distance((0.0, 0.0), (3.0, 4.0)) == 5.0

"""The user-user AKA protocol (Section IV.C)."""

import pytest

from repro.core.messages import PeerHello, PeerResponse
from repro.errors import (
    AuthenticationError,
    InvalidSignature,
    ProtocolError,
    ReplayError,
    RevokedKeyError,
)


def handshake_parts(deployment, initiator="alice", responder="bob",
                    i_ctx=None, r_ctx=None):
    beacon = deployment.routers["MR-1"].make_beacon()
    engine_i = deployment.users[initiator].peer_engine(i_ctx)
    engine_r = deployment.users[responder].peer_engine(r_ctx)
    return beacon, engine_i, engine_r


class TestHappyPath:
    def test_bilateral_anonymous_handshake(self, fresh_deployment):
        deployment = fresh_deployment()
        session_i, session_r = deployment.peer_connect(
            "alice", "bob", "MR-1")
        packet = session_i.send(b"relay this please")
        assert session_r.receive(packet) == b"relay this please"
        back = session_r.send(b"ok")
        assert session_i.receive(back) == b"ok"

    def test_cross_group_peers_interoperate(self, fresh_deployment):
        """An employee and a student still authenticate: membership in
        ANY registered user group suffices."""
        deployment = fresh_deployment()
        session_i, session_r = deployment.peer_connect(
            "alice", "bob", "MR-1",
            initiator_context="Company X",
            responder_context="University Z")
        packet = session_i.send(b"x")
        assert session_r.receive(packet) == b"x"

    def test_three_messages(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)        # M~.1
        response, pending_r = engine_r.respond(hello, beacon.url)  # M~.2
        confirm, session_i = engine_i.complete(pending_i, response,
                                               beacon.url)    # M~.3
        session_r = engine_r.finalize(pending_r, confirm)
        assert session_i.session_id == session_r.session_id

    def test_no_identity_in_any_message(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)
        response, pending_r = engine_r.respond(hello, beacon.url)
        confirm, _ = engine_i.complete(pending_i, response, beacon.url)
        all_bytes = hello.encode() + response.encode() + confirm.encode()
        for name in ("alice", "bob"):
            user = deployment.users[name]
            assert user.identity.uid not in all_bytes
            assert user.identity.name.encode() not in all_bytes


class TestValidation:
    def test_stale_hello_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, _ = engine_i.initiate(beacon.g)
        deployment.clock.advance(100.0)
        with pytest.raises(ReplayError):
            engine_r.respond(hello, beacon.url)

    def test_forged_hello_signature_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, _ = engine_i.initiate(beacon.g)
        sig = hello.group_signature
        from repro.core.groupsig import GroupSignature
        forged = PeerHello(hello.g, hello.g_r_initiator, hello.ts1,
                           GroupSignature(sig.r, sig.t1, sig.t2, sig.c,
                                          sig.s_alpha, sig.s_x,
                                          (sig.s_delta + 1)
                                          % deployment.group.order))
        with pytest.raises(InvalidSignature):
            engine_r.respond(forged, beacon.url)

    def test_revoked_initiator_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        index = deployment.users["alice"].credentials["Company X"].index
        deployment.operator.revoke_user_key(index)
        deployment.routers["MR-1"].refresh_lists()
        beacon, engine_i, engine_r = handshake_parts(
            deployment, i_ctx="Company X")
        hello, _ = engine_i.initiate(beacon.g)
        with pytest.raises(RevokedKeyError):
            engine_r.respond(hello, beacon.url)

    def test_revoked_responder_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        deployment.routers["MR-1"].refresh_lists()
        beacon, engine_i, engine_r = handshake_parts(
            deployment, r_ctx="University Z")
        hello, pending_i = engine_i.initiate(beacon.g)
        response, _ = engine_r.respond(hello, beacon.url)
        fresh_url = deployment.routers["MR-1"].url
        with pytest.raises(RevokedKeyError):
            engine_i.complete(pending_i, response, fresh_url)

    def test_response_timestamp_window_enforced(self, fresh_deployment):
        """ts2 - ts1 must be within the acceptable delay window."""
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)
        # A response whose ts2 is far beyond pending.ts1 must fail the
        # window check before any signature verification is attempted.
        bogus = PeerResponse(hello.g_r_initiator,
                             deployment.group.g1,
                             hello.ts1 + 999.0, hello.group_signature)
        with pytest.raises(ReplayError):
            engine_i.complete(pending_i, bogus, beacon.url)

    def test_response_for_wrong_initiator_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)
        response, _ = engine_r.respond(hello, beacon.url)
        wrong = PeerResponse(response.g_r_responder,
                             response.g_r_responder, response.ts2,
                             response.group_signature)
        with pytest.raises(ProtocolError):
            engine_i.complete(pending_i, wrong, beacon.url)

    def test_tampered_confirm_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)
        response, pending_r = engine_r.respond(hello, beacon.url)
        confirm, _ = engine_i.complete(pending_i, response, beacon.url)
        from repro.core.messages import PeerConfirm
        tampered = PeerConfirm(confirm.g_r_initiator,
                               confirm.g_r_responder,
                               confirm.sealed[:-1]
                               + bytes([confirm.sealed[-1] ^ 1]))
        with pytest.raises(Exception):
            engine_r.finalize(pending_r, tampered)

    def test_role_confusion_rejected(self, fresh_deployment):
        deployment = fresh_deployment()
        beacon, engine_i, engine_r = handshake_parts(deployment)
        hello, pending_i = engine_i.initiate(beacon.g)
        response, pending_r = engine_r.respond(hello, beacon.url)
        with pytest.raises(ProtocolError):
            engine_r.complete(pending_r, response, beacon.url)
        confirm, _ = engine_i.complete(pending_i, response, beacon.url)
        with pytest.raises(ProtocolError):
            engine_i.finalize(pending_i, confirm)

"""Tests for the DoS detection / puzzle policy."""

from repro.core.protocols.dos import DosPolicy


class TestDetection:
    def test_quiet_is_not_attack(self):
        policy = DosPolicy(rate_threshold=10.0, window=10.0)
        assert not policy.under_attack(now=0.0)

    def test_flood_detected(self):
        policy = DosPolicy(rate_threshold=10.0, window=10.0)
        for i in range(150):
            policy.note_request(now=i * 0.05)
        assert policy.under_attack(now=7.5)

    def test_window_slides(self):
        policy = DosPolicy(rate_threshold=10.0, window=10.0)
        for i in range(150):
            policy.note_request(now=i * 0.05)
        # Long after the burst, the window is empty again.
        assert not policy.under_attack(now=100.0)

    def test_observed_rate(self):
        policy = DosPolicy(window=10.0)
        for i in range(50):
            policy.note_request(now=float(i) * 0.1)
        assert abs(policy.observed_rate(now=5.0) - 5.0) < 1.0

    def test_forced_override(self):
        policy = DosPolicy()
        policy.forced = True
        assert policy.under_attack(now=0.0)
        policy.forced = False
        for i in range(1000):
            policy.note_request(now=0.0)
        assert not policy.under_attack(now=0.0)


class TestDifficulty:
    def test_zero_when_calm(self):
        policy = DosPolicy(rate_threshold=10.0)
        assert policy.current_difficulty(now=0.0) == 0

    def test_base_at_threshold(self):
        policy = DosPolicy(rate_threshold=1.0, window=10.0,
                           base_difficulty=8, adaptive=True)
        for i in range(12):
            policy.note_request(now=i * 0.8)
        assert policy.current_difficulty(now=9.0) == 8

    def test_scales_with_overload(self):
        policy = DosPolicy(rate_threshold=1.0, window=10.0,
                           base_difficulty=8, max_difficulty=20,
                           adaptive=True)
        for i in range(400):
            policy.note_request(now=i * 0.025)
        assert policy.current_difficulty(now=9.9) > 8

    def test_capped_at_max(self):
        policy = DosPolicy(rate_threshold=1.0, window=10.0,
                           base_difficulty=8, max_difficulty=10,
                           adaptive=True)
        for i in range(5000):
            policy.note_request(now=i * 0.002)
        assert policy.current_difficulty(now=9.9) <= 10

    def test_non_adaptive_fixed(self):
        policy = DosPolicy(rate_threshold=1.0, base_difficulty=12,
                           adaptive=False)
        policy.forced = True
        assert policy.current_difficulty(now=0.0) == 12

    def test_fresh_puzzle_has_policy_difficulty(self):
        policy = DosPolicy(base_difficulty=9)
        policy.forced = True
        puzzle = policy.fresh_puzzle()
        assert puzzle.difficulty_bits == 9

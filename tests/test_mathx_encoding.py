"""Unit tests for repro.mathx.encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.mathx import byte_length, bytes_to_int, int_to_bytes


class TestByteLength:
    def test_zero_needs_one_byte(self):
        assert byte_length(0) == 1

    def test_boundaries(self):
        assert byte_length(255) == 1
        assert byte_length(256) == 2
        assert byte_length(65535) == 2
        assert byte_length(65536) == 3

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            byte_length(-1)


class TestIntBytes:
    def test_roundtrip_fixed_width(self):
        for n in (0, 1, 255, 256, 2 ** 64 - 1):
            assert bytes_to_int(int_to_bytes(n, 16)) == n

    def test_big_endian(self):
        assert int_to_bytes(0x0102, 2) == b"\x01\x02"

    def test_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            int_to_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            int_to_bytes(-5, 4)

    @given(st.integers(min_value=0, max_value=2 ** 256 - 1))
    @settings(max_examples=100)
    def test_property_roundtrip(self, n):
        width = max(32, byte_length(n))
        assert bytes_to_int(int_to_bytes(n, width)) == n

"""Unit tests for the fault-injection harness (plans + injector).

These pin the contract the chaos suites rely on: plans validate
eagerly, radio faults compose per delivery, every probabilistic choice
comes from the plan's seed (same plan, same traffic -> same faults),
and router faults flip exactly the documented switches.
"""

import random

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    PoolFault,
    RadioFault,
    RouterFault,
    corrupt_frame,
)
from repro.wmn.radio import Frame, RadioMedium
from repro.wmn.simclock import EventLoop


class Sink:
    def __init__(self, node_id, position):
        self.node_id = node_id
        self.position = position
        self.received = []

    def deliver(self, frame):
        self.received.append(frame)


def make_link(loss=0.0):
    """One sender, one receiver, 50m apart, lossless unless asked."""
    loop = EventLoop()
    medium = RadioMedium(loop, default_range=100.0,
                         loss_probability=loss, rng=random.Random(1))
    a = Sink("a", (0.0, 0.0))
    b = Sink("b", (50.0, 0.0))
    medium.attach(a)
    medium.attach(b)
    return loop, medium, a, b


class TestPlanValidation:
    def test_unknown_kinds_rejected(self):
        with pytest.raises(FaultInjectionError):
            RadioFault(kind="teleport")
        with pytest.raises(FaultInjectionError):
            PoolFault(kind="promote_worker")
        with pytest.raises(FaultInjectionError):
            RouterFault(kind="reboot")

    def test_probability_window_copies_validated(self):
        with pytest.raises(FaultInjectionError):
            RadioFault(kind="drop", probability=1.5)
        with pytest.raises(FaultInjectionError):
            RadioFault(kind="drop", start=10.0, stop=5.0)
        with pytest.raises(FaultInjectionError):
            RadioFault(kind="duplicate", copies=0)
        with pytest.raises(FaultInjectionError):
            PoolFault(kind="kill_worker", count=0)

    def test_plan_normalizes_lists_and_describes(self):
        plan = FaultPlan(seed=7, radio=[RadioFault(kind="drop")],
                         router=[RouterFault(kind="sever_channel")])
        assert isinstance(plan.radio, tuple)
        assert isinstance(plan.router, tuple)
        assert not plan.empty
        assert FaultPlan().empty
        text = plan.describe()
        assert "seed=7" in text and "drop" in text

    def test_matches_respects_kind_dst_window(self):
        fault = RadioFault(kind="drop", frame_kinds=("M.2",), dst="r",
                           start=1.0, stop=2.0)
        assert fault.matches("M.2", "r", 1.5)
        assert not fault.matches("M.1", "r", 1.5)
        assert not fault.matches("M.2", "other", 1.5)
        assert not fault.matches("M.2", "r", 0.5)
        assert not fault.matches("M.2", "r", 2.0)


class TestCorruptFrame:
    def test_always_changes_payload(self):
        rng = random.Random(3)
        frame = Frame("M.2", b"\x00" * 32, src="a", dst="b")
        for _ in range(50):
            bad = corrupt_frame(frame, rng)
            assert bad.payload != frame.payload
            assert len(bad.payload) == len(frame.payload)
            assert (bad.kind, bad.src, bad.dst) == ("M.2", "a", "b")

    def test_empty_payload_is_noop(self):
        frame = Frame("M.2", b"", src="a")
        assert corrupt_frame(frame, random.Random(0)).payload == b""


class TestRadioInjection:
    def test_drop_all(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="drop")]))
        injector.arm_radio(medium)
        for _ in range(5):
            medium.transmit(Frame("M.2", b"x", src="a"))
        loop.run_all()
        assert b.received == []
        assert injector.counts["drop"] == 5

    def test_duplicate_delivers_copies(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="duplicate", copies=2)]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"x", src="a"))
        loop.run_all()
        assert len(b.received) == 3

    def test_corrupt_rewrites_in_flight(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="corrupt")]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"\x00" * 16, src="a"))
        loop.run_all()
        assert len(b.received) == 1
        assert b.received[0].payload != b"\x00" * 16

    def test_delay_postpones_delivery(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="delay", extra_delay=2.0)]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"x", src="a"))
        loop.run_until(loop.now + 1.0)
        assert b.received == []
        loop.run_until(loop.now + 2.0)
        assert len(b.received) == 1

    def test_reorder_lets_later_frame_overtake(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="reorder", extra_delay=1.0,
                                      frame_kinds=("M.2",))]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"first", src="a"))
        medium.transmit(Frame("DAT", b"second", src="a"))
        loop.run_all()
        assert [f.payload for f in b.received] == [b"second", b"first"]

    def test_kind_filter_spares_other_traffic(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="drop",
                                      frame_kinds=("M.2",))]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"handshake", src="a"))
        medium.transmit(Frame("M.1", b"beacon", src="a"))
        loop.run_all()
        assert [f.kind for f in b.received] == ["M.1"]

    def test_disarm_restores_clean_medium(self):
        loop, medium, a, b = make_link()
        injector = FaultInjector(FaultPlan(
            seed=1, radio=[RadioFault(kind="drop")]))
        injector.arm_radio(medium)
        medium.transmit(Frame("M.2", b"x", src="a"))
        injector.disarm_radio(medium)
        medium.transmit(Frame("M.2", b"y", src="a"))
        loop.run_all()
        assert [f.payload for f in b.received] == [b"y"]

    def test_same_seed_same_fault_pattern(self):
        """The replayable-chaos contract: identical plans against
        identical traffic fault identical deliveries."""
        def run(seed):
            loop, medium, a, b = make_link()
            injector = FaultInjector(FaultPlan(
                seed=seed,
                radio=[RadioFault(kind="drop", probability=0.5)]))
            injector.arm_radio(medium)
            for i in range(40):
                medium.transmit(Frame("M.2", bytes([i]), src="a"))
            loop.run_all()
            return [f.payload for f in b.received]

        assert run(11) == run(11)
        assert run(11) != run(12)   # and the seed actually matters


class TestRouterInjection:
    def test_sever_and_restore_channel(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        injector = FaultInjector(FaultPlan(
            seed=1, router=[RouterFault(kind="sever_channel")]))
        injector.arm_router(router)
        assert router.degraded
        FaultInjector(FaultPlan(
            seed=1, router=[RouterFault(kind="restore_channel")]
        )).arm_router(router)
        assert not router.degraded

    def test_router_id_filter(self, fresh_deployment):
        deployment = fresh_deployment(routers=["MR-1", "MR-2"])
        injector = FaultInjector(FaultPlan(
            seed=1,
            router=[RouterFault(kind="sever_channel",
                                router_id="MR-2")]))
        for router in deployment.routers.values():
            injector.arm_router(router)
        assert not deployment.routers["MR-1"].degraded
        assert deployment.routers["MR-2"].degraded

    def test_stale_lists_suppresses_refresh(self, fresh_deployment):
        deployment = fresh_deployment()
        router = deployment.routers["MR-1"]
        FaultInjector(FaultPlan(
            seed=1, router=[RouterFault(kind="stale_lists")]
        )).arm_router(router)
        deployment.clock.advance(100.0)
        router.refresh_lists()
        assert router.lists_age() == pytest.approx(100.0)

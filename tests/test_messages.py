"""Encode/decode roundtrips and size accounting for all wire messages."""

import pytest

from repro.core.messages import (
    AccessConfirm,
    AccessRequest,
    Beacon,
    DataPacket,
    PeerConfirm,
    PeerHello,
    PeerResponse,
)
from repro.errors import EncodingError
from repro.sig.curves import SECP160R1


@pytest.fixture(scope="module")
def live_messages(deployment):
    """Capture one real message of each kind from a live handshake."""
    router = deployment.routers["MR-1"]
    user = deployment.users["alice"]
    beacon = router.make_beacon()
    request, pending = user.connect_to_router(beacon, "Company X")
    confirm, router_session = router.process_request(request)
    user_session = user.complete_router_handshake(pending, confirm)
    packet = user_session.send(b"payload-bytes")

    url = beacon.url
    initiator = deployment.users["alice"].peer_engine("University Z")
    responder = deployment.users["bob"].peer_engine("University Z")
    hello, pending_i = initiator.initiate(beacon.g)
    response, pending_r = responder.respond(hello, url)
    peer_confirm, _si = initiator.complete(pending_i, response, url)

    return {
        "beacon": beacon, "request": request, "confirm": confirm,
        "packet": packet, "hello": hello, "response": response,
        "peer_confirm": peer_confirm,
    }


class TestRoundtrips:
    def test_beacon(self, deployment, live_messages):
        blob = live_messages["beacon"].encode()
        decoded = Beacon.decode(deployment.group, SECP160R1, blob)
        assert decoded.router_id == "MR-1"
        assert decoded.g == live_messages["beacon"].g
        assert decoded.encode() == blob

    def test_access_request(self, deployment, live_messages):
        blob = live_messages["request"].encode()
        decoded = AccessRequest.decode(deployment.group, blob)
        assert decoded.encode() == blob
        assert decoded.signed_payload() == \
            live_messages["request"].signed_payload()

    def test_access_confirm(self, deployment, live_messages):
        blob = live_messages["confirm"].encode()
        decoded = AccessConfirm.decode(deployment.group, blob)
        assert decoded.encode() == blob

    def test_peer_hello(self, deployment, live_messages):
        blob = live_messages["hello"].encode()
        assert PeerHello.decode(deployment.group, blob).encode() == blob

    def test_peer_response(self, deployment, live_messages):
        blob = live_messages["response"].encode()
        assert PeerResponse.decode(deployment.group, blob).encode() == blob

    def test_peer_confirm(self, deployment, live_messages):
        blob = live_messages["peer_confirm"].encode()
        assert PeerConfirm.decode(deployment.group, blob).encode() == blob

    def test_data_packet(self, live_messages):
        blob = live_messages["packet"].encode()
        decoded = DataPacket.decode(blob)
        assert decoded.sequence == live_messages["packet"].sequence
        assert decoded.encode() == blob


class TestValidation:
    def test_wrong_magic_rejected(self, deployment, live_messages):
        blob = b"XXX" + live_messages["request"].encode()[3:]
        with pytest.raises(EncodingError):
            AccessRequest.decode(deployment.group, blob)

    def test_cross_type_decode_rejected(self, deployment, live_messages):
        with pytest.raises(EncodingError):
            AccessConfirm.decode(deployment.group,
                                 live_messages["request"].encode())

    def test_truncated_beacon_rejected(self, deployment, live_messages):
        blob = live_messages["beacon"].encode()[:-10]
        with pytest.raises(EncodingError):
            Beacon.decode(deployment.group, SECP160R1, blob)

    def test_trailing_garbage_rejected(self, deployment, live_messages):
        blob = live_messages["request"].encode() + b"\x00"
        with pytest.raises(EncodingError):
            AccessRequest.decode(deployment.group, blob)


class TestSizeAccounting:
    def test_request_dominated_by_group_signature(self, deployment,
                                                  live_messages):
        """(M.2) = DH values + ts + group signature; the signature is
        the bulk, as the paper's overhead argument assumes."""
        from repro.core.groupsig import GroupSignature
        request_size = len(live_messages["request"].encode())
        signature_size = GroupSignature.encoded_size(deployment.group)
        assert signature_size > request_size / 2

    def test_beacon_larger_than_request(self, live_messages):
        """(M.1) carries cert + CRL + URL, so it dwarfs (M.2)."""
        assert (len(live_messages["beacon"].encode())
                > len(live_messages["request"].encode()))

    def test_sizes_reported(self, live_messages):
        sizes = {name: len(msg.encode())
                 for name, msg in live_messages.items()}
        assert all(size > 0 for size in sizes.values())
        # Confirm messages are small: no signatures, one sealed blob.
        assert sizes["confirm"] < sizes["request"]

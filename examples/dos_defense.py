#!/usr/bin/env python3
"""Client-puzzle DoS defense (paper Section V.A) in action.

Floods a mesh router with well-formed forged access requests -- each of
which costs the router real pairing operations to reject -- first with
the defense off, then with Juels-Brainard puzzles on.  Prints the
comparison the paper argues qualitatively.

Run:  python examples/dos_defense.py
"""

from repro.analysis.attack_eval import dos_campaign


def show(result, label: str) -> None:
    print(f"\n-- {label} --")
    print(f"  attacker requests sent:      {result.attacker_sent}")
    print(f"  attacker throttled (puzzle): {result.attacker_puzzle_limited}")
    print(f"  router CPU busy:             "
          f"{result.router_cpu_busy:.1f}s / {result.duration:.0f}s "
          f"({result.router_cpu_busy / result.duration:.0%})")
    print(f"  queue drops:                 {result.requests_dropped_queue}")
    print(f"  legit users connected:       {result.legit_connected}/"
          f"{result.legit_users} ({result.legit_success_rate:.0%})")
    if result.mean_auth_delay == result.mean_auth_delay:   # not NaN
        print(f"  mean auth delay:             "
              f"{result.mean_auth_delay:.2f}s")


def main() -> None:
    print("== connection-depletion attack, 30 forged M.2/s for 60s ==")

    undefended = dos_campaign(flood_rate=30.0, puzzles=False,
                              duration=60.0, seed=5, user_count=4)
    show(undefended, "defense OFF: router verifies every forgery")

    defended = dos_campaign(flood_rate=30.0, puzzles=True, difficulty=14,
                            duration=60.0, seed=5, user_count=4)
    show(defended, "defense ON: puzzles gate the expensive pairings")

    saved = undefended.router_cpu_busy - defended.router_cpu_busy
    print(f"\npuzzles saved {saved:.1f}s of router CPU "
          f"({saved / max(undefended.router_cpu_busy, 1e-9):.0%} of the "
          f"attack's cost) while keeping "
          f"{defended.legit_success_rate:.0%} of legitimate users online.")
    print("done.")


if __name__ == "__main__":
    main()

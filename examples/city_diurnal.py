#!/usr/bin/env python3
"""A day-cycle workload on the metropolitan mesh.

Drives the simulator with a non-homogeneous Poisson session workload
following a city's diurnal rhythm (night trough, commute ramps, evening
peak) and reports how the authentication load at the routers follows
the curve -- the operational picture behind the paper's metro-scale
motivation.

Simulated: four 90-minute windows at different times of day (running a
full 24 h of event-driven crypto would work, just slowly).

Run:  python examples/city_diurnal.py
"""

import random

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig
from repro.wmn.workload import DiurnalProfile, WorkloadDriver


def window(label: str, start_hour: float, profile: DiurnalProfile) -> None:
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=808,
        topology=TopologyConfig(area_side=600.0, router_grid=1,
                                user_count=10, seed=808,
                                access_range=600.0),
        group_sizes=(("Company X", 12), ("University Z", 12)),
        beacon_interval=4.0))
    # Anchor the day so the window lands at the desired time of day.
    driver = WorkloadDriver(
        scenario, profile=profile, peak_rate=0.08,
        session_duration=120.0,
        day_anchor=scenario.loop.now - start_hour * 3600.0,
        rng=random.Random(int(start_hour)))
    driver.schedule(duration=5400.0)
    scenario.run(5400.0)
    metrics = scenario.router_metrics()
    intensity = profile.intensity_at(start_hour * 3600.0)
    print(f"  {label:<18} intensity {intensity:>4.2f}  "
          f"sessions {driver.sessions_started:>3}  "
          f"handshakes {metrics['handshakes_completed']:>3.0f}  "
          f"router CPU {metrics['cpu_busy_seconds']:>5.1f}s")


def main() -> None:
    print("== diurnal session workload (90-minute windows) ==")
    profile = DiurnalProfile()
    window("03:00 night", 3.0, profile)
    window("08:00 commute", 8.0, profile)
    window("13:00 afternoon", 13.0, profile)
    window("18:00 evening peak", 18.0, profile)
    print("\nauthentication load tracks the city's rhythm; every one of "
          "those sessions was anonymous yet auditable.")
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-hop uplink over authenticated peer sessions (Section IV.C).

A user outside the router's data range authenticates directly (boosted
power, paper footnote 3), then sends uplink data through a chain of two
relaying peers.  Every hop first runs the anonymous user-user handshake
(M~.1 - M~.3); data travels hop-by-hop under the pairwise session keys.

Run:  python examples/multihop_relay.py
"""

from repro.wmn.nodes import pack_uplink
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def main() -> None:
    print("== multi-hop relayed uplink ==")
    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=17,
        topology=TopologyConfig(area_side=600.0, router_grid=1,
                                user_count=3, seed=17,
                                access_range=600.0, user_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=5.0,
        relay_capable=True))

    print("letting everyone hear beacons and authenticate ...")
    scenario.run(30.0)
    users = list(scenario.sim_users.values())
    source, relay1, relay2 = users
    router = next(iter(scenario.sim_routers.values()))
    print(f"  connected users: {scenario.connected_fraction():.0%}")

    print("\nestablishing the peer chain "
          f"{source.node_id} -> {relay1.node_id} -> {relay2.node_id} ...")
    source.initiate_peer(relay1.node_id)
    scenario.run(5.0)
    relay1.initiate_peer(relay2.node_id)
    scenario.run(5.0)
    print(f"  {source.node_id} peer sessions: "
          f"{sorted(source.peer_sessions)}")
    print(f"  {relay1.node_id} peer sessions: "
          f"{sorted(relay1.peer_sessions)}")

    print("\nsending 5 uplink packets through the chain ...")
    before = router.metrics["data_delivered"]
    for i in range(5):
        inner = source.session.send(
            pack_uplink(b"relayed packet %d" % i)).encode()
        source.send_relayed([relay1.node_id, relay2.node_id],
                            router.node_id, inner)
        scenario.run(2.0)
    after = router.metrics["data_delivered"]

    print(f"  router delivered:  {after - before}/5")
    print(f"  {relay1.node_id} relayed: "
          f"{relay1.relay_metrics['relayed']}, "
          f"{relay2.node_id} relayed: {relay2.relay_metrics['relayed']}")
    print("\nnote: the relays authenticated the source only as 'some "
          "unrevoked subscriber' -- no identities were exchanged.")
    print("done.")


if __name__ == "__main__":
    main()

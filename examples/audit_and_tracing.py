#!/usr/bin/env python3
"""The sophisticated-privacy story: multi-role users, tiered disclosure.

Pat accesses the WMN in three roles -- engineer at Company X, student
at University Z, member of Golf Club V -- each under a different group
private key.  The script shows:

1. the three sessions are cryptographically unlinkable on the air;
2. an NO audit of the 'office' session reveals only "a member of
   Company X" -- never Pat, and never the other roles;
3. the full law-authority escalation reveals Pat, but only through the
   joint effort of NO and the specific group manager;
4. revoking Pat's golf-club key does not touch the other roles.

Run:  python examples/audit_and_tracing.py
"""

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import RevokedKeyError


def main() -> None:
    print("== multi-faceted identity, tiered disclosure ==")
    deployment = Deployment.build(
        preset="TEST", seed=99,
        groups={"Company X": 4, "University Z": 4, "Golf Club V": 4},
        users=[("pat", ["Company X", "University Z", "Golf Club V"])],
        routers=["MR-1"])
    pat = deployment.users["pat"]
    print(f"pat's roles: "
          f"{sorted(r.describe() for r in pat.identity.roles)}")

    # One session per role/context.
    sessions = {}
    for context in ("Company X", "University Z", "Golf Club V"):
        session, _ = deployment.connect("pat", "MR-1", context=context)
        sessions[context] = session
        print(f"  session as {context:<13}: "
              f"{session.session_id.hex()[:16]}")

    # 1. Unlinkability: the on-air artifacts share nothing.
    ids = [s.session_id for s in sessions.values()]
    assert len(set(ids)) == 3
    log_entries = [deployment.network_log.find(i) for i in ids]
    sigs = {e.group_signature.encode() for e in log_entries}
    assert len(sigs) == 3
    print("\nall session identifiers and signatures are fresh and "
          "mutually unlinkable")

    # 2. NO audit: role-scoped disclosure only.
    print("\n-- NO audits the office session --")
    audit = audit_by_session(deployment.operator, deployment.network_log,
                             sessions["Company X"].session_id)
    print(f"  NO learns: {audit.describe()}")
    assert "pat" not in audit.describe()
    print("  (pat's name, SSN, and other roles stay hidden from NO)")

    # 3. Law-authority escalation: joint opening.
    print("\n-- law authority escalates the same session --")
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        sessions["Company X"].session_id)
    print(f"  with NO + GM cooperation: {trace.describe()}")

    # ... but without the GM, NO alone cannot identify anyone.
    from repro.errors import AuditError
    try:
        deployment.law_authority.trace_session(
            deployment.operator, deployment.network_log, {},
            sessions["Company X"].session_id)
    except AuditError:
        print("  without the GM's records: tracing fails "
              "(joint-effort property)")

    # 4. Per-role revocation.
    print("\n-- NO revokes pat's golf-club key only --")
    index = pat.credentials["Golf Club V"].index
    deployment.operator.revoke_user_key(index)
    deployment.routers["MR-1"].refresh_lists()
    try:
        deployment.connect("pat", "MR-1", context="Golf Club V")
    except RevokedKeyError:
        print("  golf-club access: BLOCKED")
    deployment.connect("pat", "MR-1", context="Company X")
    print("  office access:    still fine")
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Membership renewal: the 'group public key update' lifecycle.

The paper's membership maintenance (Section III.A) allows subscriptions
to be terminated or renewed periodically; Section V.A's revocation
analysis relies on it -- after a key-update, revoked users "do not have
any group private key currently in use".  The script:

1. runs a session in epoch 0;
2. rotates the system keys (NO reissues every group's pool; users
   re-enroll; carol, whose subscription lapsed, is excluded);
3. shows new sessions work, carol is locked out, the URL is empty
   again -- and the OLD session is still auditable and traceable
   against the archived epoch.

Run:  python examples/membership_renewal.py
"""

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import ParameterError


def main() -> None:
    print("== membership renewal (group public key update) ==")
    deployment = Deployment.build(
        preset="TEST", seed=321,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X"]),
               ("bob", ["University Z"]),
               ("carol", ["Company X"])],
        routers=["MR-1"])

    print("\n-- epoch 0 --")
    old_session, _ = deployment.connect("carol", "MR-1")
    print(f"carol's session: {old_session.session_id.hex()[:16]}")
    # NO flags carol's key during the epoch (dispute pending).
    index = deployment.users["carol"].credentials["Company X"].index
    deployment.operator.revoke_user_key(index)
    print(f"URL now lists {len(deployment.operator.issue_url().tokens)} "
          f"revoked key(s)")

    print("\n-- rotating to epoch 1 (carol's subscription not renewed) --")
    deployment.rotate_epoch(exclude=["carol"])
    print(f"operator epoch: {deployment.operator.epoch}")
    print(f"URL after rotation: "
          f"{len(deployment.operator.issue_url().tokens)} entries "
          "(old epoch's keys are dead wholesale)")

    deployment.connect("alice", "MR-1")
    deployment.connect("bob", "MR-1")
    print("alice and bob re-enrolled and connect fine")
    try:
        deployment.connect("carol", "MR-1")
    except ParameterError:
        print("carol holds no epoch-1 credential: locked out")

    print("\n-- the old session remains accountable --")
    audit = audit_by_session(deployment.operator, deployment.network_log,
                             old_session.session_id)
    print(f"NO audit (archived epoch {audit.epoch}): {audit.describe()}")
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        old_session.session_id)
    print(f"law authority: {trace.describe()}")
    print("done.")


if __name__ == "__main__":
    main()

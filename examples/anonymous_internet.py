#!/usr/bin/env python3
"""Upper-layer anonymous communication + privacy-preserving billing.

The paper closes by saying PEACE "lays a solid background for designing
other upper layer security and privacy solutions, e.g., anonymous
communication" -- and opens by motivating billing.  This example builds
both on top of one deployment:

1. alice establishes anonymous peer sessions with three relay users and
   runs an onion circuit over them: each relay learns only its
   neighbors, none link alice to her destination;
2. the operator then bills each *user group* for its sessions without
   ever learning who the individual users were.

Run:  python examples/anonymous_internet.py
"""

from repro import Deployment
from repro.analysis.billing import build_billing_report
from repro.wmn.onion import OnionRelay, build_circuit, route_through


def main() -> None:
    print("== anonymous communication over PEACE sessions ==")
    deployment = Deployment.build(
        preset="TEST", seed=64,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X"]),
               ("r1", ["Company X"]), ("r2", ["University Z"]),
               ("r3", ["University Z"]),
               ("bob", ["University Z"])],
        routers=["MR-1"])

    # Anonymous peer handshakes with each relay (M~.1-M~.3): relays
    # learn only "some unrevoked subscriber", never alice.
    sessions = {}
    for relay_name in ("r1", "r2", "r3"):
        session, _ = deployment.peer_connect("alice", relay_name, "MR-1")
        sessions[relay_name] = session.export_key_material(b"onion")
    print("peer sessions with r1, r2, r3 established anonymously")

    relays = {name: OnionRelay(name) for name in ("r1", "r2", "r3")}
    circuit = build_circuit(sessions, ["r1", "r2", "r3"], relays)
    print(f"3-hop circuit {circuit.circuit_id.hex()} built from the "
          "peer-session keys")

    def internet(destination: str, payload: bytes) -> bytes:
        print(f"  exit delivers to {destination!r}: {payload!r}")
        return b"HTTP/1.1 200 OK"

    reply, trail = route_through(circuit, relays,
                                 "news.example.org", b"GET /headlines",
                                 internet)
    print(f"  path taken: {' -> '.join(trail)}")
    print(f"  alice received: {reply!r}")
    print("  each relay peeled exactly one layer: "
          f"{[relays[r].peeled for r in trail]}")

    # Meanwhile bob browses directly; then NO runs billing.
    deployment.connect("bob", "MR-1")
    deployment.connect("alice", "MR-1")
    print("\n== group-granular billing (no identities involved) ==")
    report = build_billing_report(deployment.operator,
                                  deployment.network_log)
    for line in report.invoice_lines(price_per_session=0.05):
        print(f"  {line}")
    print(f"  unattributed sessions: {report.unattributed_sessions} "
          "(free riders would show up here)")
    print("done.")


if __name__ == "__main__":
    main()

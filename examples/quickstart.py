#!/usr/bin/env python3
"""Quickstart: the complete PEACE lifecycle in one script.

Sets up a network operator, a TTP, two user groups, two users, and a
mesh router; runs the anonymous user-router handshake; exchanges
encrypted session data; audits a session (NO learns only the user
group); traces it with the law authority (full identity, jointly); and
finally revokes a user.

Run:  python examples/quickstart.py
"""

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import RevokedKeyError


def main() -> None:
    print("== PEACE quickstart ==")

    # 1. System setup (paper Section IV.A): NO generates gamma and all
    #    SDH tuples; GMs get (grp_i, x_j); the TTP gets A XOR x; users
    #    assemble their group private keys from both halves.
    deployment = Deployment.build(
        preset="TEST",          # fast parameters; use "SS512" for ~80-bit
        seed=7,
        groups={"Company X": 8, "University Z": 8},
        users=[("alice", ["Company X", "University Z"]),
               ("bob", ["University Z"])],
        routers=["MR-1"])
    print(f"enrolled users: {sorted(deployment.users)}")
    print(f"user groups:    {sorted(deployment.gms)}")

    # 2. Anonymous mutual authentication + key agreement (Section IV.B):
    #    beacon (M.1) -> group-signed request (M.2) -> confirm (M.3).
    user_session, router_session = deployment.connect(
        "alice", "MR-1", context="Company X")
    print(f"session established, id {user_session.session_id.hex()[:16]}")

    # 3. Hybrid data phase: everything after the handshake is MAC-based.
    packet = user_session.send(b"GET / HTTP/1.1")
    print(f"router received: {router_session.receive(packet)!r}")
    reply = router_session.send(b"HTTP/1.1 200 OK")
    print(f"user received:   {user_session.receive(reply)!r}")

    # 4. User-user handshake (Section IV.C) for peer relaying.
    peer_i, peer_r = deployment.peer_connect("alice", "bob", "MR-1")
    relayed = peer_i.send(b"please relay my uplink")
    print(f"peer received:   {peer_r.receive(relayed)!r}")

    # 5. Audit (Section IV.D): NO learns ONLY the user group.
    audit = audit_by_session(deployment.operator, deployment.network_log,
                             user_session.session_id)
    print(f"NO audit:        {audit.describe()}")

    # 6. Law-authority tracing: NO + GM jointly reveal the identity.
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        user_session.session_id)
    print(f"law authority:   {trace.describe()}")

    # 7. Dynamic revocation: bob's University-Z key is revoked; the next
    #    URL update blocks him network-wide.
    index = deployment.users["bob"].credentials["University Z"].index
    deployment.operator.revoke_user_key(index)
    deployment.routers["MR-1"].refresh_lists()
    try:
        deployment.connect("bob", "MR-1")
    except RevokedKeyError:
        print("revocation:      bob's key is now rejected (as intended)")

    # Alice is unaffected.
    deployment.connect("alice", "MR-1", context="Company X")
    print("revocation:      alice still connects fine")
    print("done.")


if __name__ == "__main__":
    main()

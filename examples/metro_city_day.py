#!/usr/bin/env python3
"""A simulated metropolitan WMN (Fig. 1) running PEACE end to end.

Builds a 2 km x 2 km city with a 3x3 mesh-router backbone, 18 mobile
users split across two user groups, periodic beacons, real handshakes
over the radio, and uplink data traffic.  Prints the structural report
(F1) and the operational metrics after a 3-minute simulated day slice.

Run:  python examples/metro_city_day.py
"""

from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig, topology_report


def main() -> None:
    print("== a day (well, 3 minutes) in a metropolitan mesh ==")
    config = ScenarioConfig(
        preset="TEST", seed=2026,
        topology=TopologyConfig(area_side=2000.0, router_grid=3,
                                gateway_fraction=0.3, user_count=18,
                                access_range=500.0, seed=2026),
        group_sizes=(("Company X", 16), ("University Z", 16)),
        beacon_interval=5.0,
        data_interval=10.0)
    scenario = Scenario(config)

    print("\n-- layer structure (paper Fig. 1) --")
    for key, value in topology_report(scenario.topology).items():
        print(f"  {key:>24}: {value:.2f}")

    print("\nrunning 180 simulated seconds ...")
    scenario.run(180.0)

    print("\n-- connectivity --")
    print(f"  users connected: {scenario.connected_fraction():.0%}")
    stats = scenario.handshake_stats().summary()
    print(f"  handshakes: {stats['count']:.0f}, "
          f"auth delay mean {stats['mean']:.3f}s / "
          f"p95 {stats['p95']:.3f}s")

    print("\n-- router metrics (aggregated) --")
    for key, value in sorted(scenario.router_metrics().items()):
        print(f"  {key:>24}: {value:.1f}")

    print("\n-- user metrics (aggregated) --")
    for key, value in sorted(scenario.user_metrics().items()):
        print(f"  {key:>24}: {value:.1f}")

    delivered = scenario.router_metrics()["data_delivered"]
    sent = scenario.user_metrics()["data_sent"]
    print(f"\nuplink delivery: {delivered:.0f}/{sent:.0f} packets "
          f"({delivered / max(sent, 1):.0%})")

    # User-to-user messaging through the routers and the backbone
    # (paper III.A: all traffic goes through a mesh router).
    by_router = {}
    for user in scenario.sim_users.values():
        if user.state == "connected":
            by_router.setdefault(user.router_id, user)
    if len(by_router) >= 2:
        routers = sorted(by_router)
        sender, receiver = by_router[routers[0]], by_router[routers[1]]
        print(f"\ncross-router message: {sender.node_id} "
              f"({sender.router_id}) -> {receiver.node_id} "
              f"({receiver.router_id})")
        sender.send_to_session(receiver.session.session_id,
                               b"meet at the plaza")
        scenario.run(5.0)
        src, payload = receiver.inbox[-1]
        print(f"  delivered {payload!r} "
              f"(sender known only as session {src.hex()[:12]})")
        print(f"  backbone frames forwarded: "
              f"{scenario.backbone.frames_forwarded}")
    print("done.")


if __name__ == "__main__":
    main()

"""Lightweight trace spans for the observability registry.

A span is one timed region with a name, optional attributes, and a
parent (the span that was open on the same thread when it started).
Spans answer "what did *this particular* handshake spend its time on"
where histograms only answer "what do handshakes cost in aggregate".

The recorder is bounded: once ``max_spans`` records accumulate, new
spans are counted but dropped (``dropped`` in the snapshot), so a
long-running router cannot leak memory through tracing.  Parent links
are tracked per thread; records from different threads or processes
merge by concatenation under the same bound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as plain data (snapshot/merge friendly)."""

    name: str
    start: float
    duration: float
    parent: Optional[str]
    attrs: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "parent": self.parent,
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        return cls(name=str(data["name"]), start=float(data["start"]),
                   duration=float(data["duration"]),
                   parent=data.get("parent"),
                   attrs=tuple(sorted(dict(data.get("attrs", {})).items())))


class _OpenSpan:
    """Context manager for one live span; created by :class:`SpanLog`."""

    __slots__ = ("_log", "_clock", "name", "attrs", "_start", "_parent")

    def __init__(self, log: "SpanLog", clock, name: str,
                 attrs: Tuple[Tuple[str, str], ...]) -> None:
        self._log = log
        self._clock = clock
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._parent: Optional[str] = None

    def __enter__(self) -> "_OpenSpan":
        stack = self._log._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self._clock()
        stack = self._log._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._log.record(SpanRecord(
            name=self.name, start=self._start,
            duration=end - self._start, parent=self._parent,
            attrs=self.attrs))


class SpanLog:
    """Bounded, thread-safe store of finished :class:`SpanRecord`\\ s."""

    def __init__(self, max_spans: int = 2048) -> None:
        self.max_spans = max_spans
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, clock, name: str, **attrs: object) -> _OpenSpan:
        encoded = tuple(sorted((k, str(v)) for k, v in attrs.items()))
        return _OpenSpan(self, clock, name, encoded)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self._dropped += 1
            else:
                self._records.append(record)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"records": [r.to_dict() for r in self._records],
                    "dropped": self._dropped}

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        records = [SpanRecord.from_dict(d) for d in snap.get("records", ())]
        dropped = int(snap.get("dropped", 0))
        with self._lock:
            self._dropped += dropped
            for record in records:
                if len(self._records) >= self.max_spans:
                    self._dropped += 1
                else:
                    self._records.append(record)

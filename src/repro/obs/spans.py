"""Causal trace spans for the observability registry.

A span is one timed region with a name, optional attributes, a parent,
and (new in the tracing layer) an identity inside a *trace*: every span
carries a ``trace_id`` naming the end-to-end operation it belongs to
(one user-router handshake, one obs-report workload) and a ``span_id``
unique within its log.  Spans answer "what did *this particular*
handshake spend its time on" where histograms only answer "what do
handshakes cost in aggregate".

Parenting has two mechanisms, in priority order:

1. **Explicit :class:`TraceContext`.**  A caller that received a
   context -- from another node via a sim frame, from another process
   via a verifier-pool task -- opens its span with ``context=ctx`` and
   the span is parented under ``ctx.span_id`` in ``ctx.trace_id``,
   regardless of what this thread's stack holds.  This is what lets
   spans emitted on different nodes (or in worker processes) stitch
   into one causal trace.
2. **The per-thread stack.**  A span opened with no context parents
   under the innermost span open *on the same thread*, inheriting its
   trace.  This covers ordinary synchronous nesting (verify inside
   handshake inside workload).

Rule 1 strictly supersedes rule 2: spans opened from pool callbacks or
helper threads used to lose their logical parent because the stack is
per-thread; supplying the context restores the causal link (regression
test in ``tests/test_obs_trace.py``).

Spans also accumulate **operation costs**: while a span is the
innermost open span on its thread, every
:func:`repro.instrument.note` call (pairings, exponentiations, ...)
is bridged into the span's ``ops`` tally, so a finished trace carries
the paper's per-stage cost breakdown, not just wall-clock durations.
Attribution is *exclusive* (self-cost): an op lands in exactly one
span, so summing over a trace's spans reproduces the
:mod:`repro.instrument` totals for that operation.

The recorder is bounded: once ``max_spans`` records accumulate, new
spans are counted but dropped (``dropped`` in the snapshot), so a
long-running router cannot leak memory through tracing.  Records from
different threads or processes merge by concatenation under the same
bound; :meth:`SpanLog.merge_snapshot` optionally re-parents orphan
records under a supplied context (how worker-process span snapshots
are stitched under the submitting handshake's trace).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceContext:
    """A propagatable reference to one open span of one trace.

    Plain data on purpose: contexts ride on sim frames across node
    boundaries and on pickled verifier-pool tasks across process
    boundaries.  ``child spans`` created from a context parent under
    ``span_id`` within ``trace_id``.
    """

    trace_id: str
    span_id: str

    def to_tuple(self) -> Tuple[str, str]:
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(cls, data) -> Optional["TraceContext"]:
        if data is None:
            return None
        return cls(trace_id=str(data[0]), span_id=str(data[1]))


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as plain data (snapshot/merge friendly).

    ``parent`` is the legacy parent *name* (kept for aggregate views);
    ``parent_id``/``span_id``/``trace_id`` are the causal identities
    trace reconstruction uses.  ``ops`` holds the operation-count
    deltas (:mod:`repro.instrument` events) attributed to this span's
    own extent -- exclusive of child spans.
    """

    name: str
    start: float
    duration: float
    parent: Optional[str]
    attrs: Tuple[Tuple[str, str], ...] = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    ops: Tuple[Tuple[str, int], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "parent": self.parent,
                "attrs": dict(self.attrs),
                "trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "ops": dict(self.ops)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanRecord":
        return cls(name=str(data["name"]), start=float(data["start"]),
                   duration=float(data["duration"]),
                   parent=data.get("parent"),
                   attrs=tuple(sorted(dict(data.get("attrs", {})).items())),
                   trace_id=data.get("trace_id"),
                   span_id=data.get("span_id"),
                   parent_id=data.get("parent_id"),
                   ops=tuple(sorted(
                       (str(k), int(v))
                       for k, v in dict(data.get("ops", {})).items())))


class _OpenSpan:
    """One live span; created by :class:`SpanLog`.

    Usable as a context manager (synchronous regions -- pushes onto the
    thread's stack so children nest) or via :meth:`start` /
    :meth:`finish` for event-driven regions that open in one callback
    and close in another (a simulated handshake spanning many events);
    started spans do not join the stack -- their children must be
    opened with an explicit context (:attr:`context`).
    """

    __slots__ = ("_log", "_clock", "name", "_attrs", "_start", "_parent",
                 "_context", "_pushed", "_done",
                 "trace_id", "span_id", "parent_id", "ops")

    def __init__(self, log: "SpanLog", clock, name: str,
                 attrs: Dict[str, str],
                 context: Optional[TraceContext] = None,
                 trace_id: Optional[str] = None) -> None:
        self._log = log
        self._clock = clock
        self.name = name
        self._attrs = attrs
        self._start = 0.0
        self._parent: Optional[str] = None
        self._context = context
        self._pushed = False
        self._done = False
        self.trace_id: Optional[str] = trace_id
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.ops: Dict[str, int] = {}

    @property
    def context(self) -> TraceContext:
        """The context children (possibly on other nodes) parent under."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def attrs(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(sorted(self._attrs.items()))

    def set_attr(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute while the span is open
        (outcomes are usually only known at the end)."""
        self._attrs[key] = str(value)

    def note_op(self, event: str, amount: int) -> None:
        """Bridge hook: attribute one op-count event to this span."""
        self.ops[event] = self.ops.get(event, 0) + amount

    # -- lifecycle ------------------------------------------------------

    def _begin(self, push: bool) -> None:
        self.span_id = self._log._next_span_id()
        if self._context is not None:
            # Explicit context parenting supersedes the thread-local
            # stack: the causal parent may live on another thread,
            # node, or process.
            self.trace_id = self._context.trace_id
            self.parent_id = self._context.span_id
        else:
            stack = self._log._stack()
            top = stack[-1] if stack else None
            if top is not None:
                self._parent = top.name
                if self.trace_id is None:
                    self.trace_id = top.trace_id
                self.parent_id = top.span_id
            elif self.trace_id is None:
                # A root span with no context starts a fresh trace.
                self.trace_id = self._log._next_trace_id()
        if push:
            self._log._stack().append(self)
            self._pushed = True
        self._start = self._clock()

    def start(self) -> "_OpenSpan":
        """Open without joining the thread stack (event-driven use)."""
        self._begin(push=False)
        return self

    def finish(self) -> None:
        """Close the span and record it.  Idempotent."""
        if self._done:
            return
        self._done = True
        end = self._clock()
        if self._pushed:
            stack = self._log._stack()
            if stack and stack[-1] is self:
                stack.pop()
        self._log.record(SpanRecord(
            name=self.name, start=self._start,
            duration=end - self._start, parent=self._parent,
            attrs=self.attrs, trace_id=self.trace_id,
            span_id=self.span_id, parent_id=self.parent_id,
            ops=tuple(sorted(self.ops.items()))))

    def __enter__(self) -> "_OpenSpan":
        self._begin(push=True)
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()


class SpanLog:
    """Bounded, thread-safe store of finished :class:`SpanRecord`\\ s.

    ``id_prefix`` namespaces generated span/trace ids -- worker
    processes set it to a per-process prefix so their ids cannot
    collide with the parent's when snapshots merge.
    """

    def __init__(self, max_spans: int = 2048, id_prefix: str = "") -> None:
        self.max_spans = max_spans
        self.id_prefix = id_prefix
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._span_seq = 0
        self._trace_seq = 0

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_seq += 1
            return f"{self.id_prefix}s{self._span_seq}"

    def _next_trace_id(self) -> str:
        with self._lock:
            self._trace_seq += 1
            return f"{self.id_prefix}t{self._trace_seq}"

    def span(self, clock, name: str,
             context: Optional[TraceContext] = None,
             trace_id: Optional[str] = None, **attrs: object) -> _OpenSpan:
        encoded = {k: str(v) for k, v in attrs.items()}
        return _OpenSpan(self, clock, name, encoded, context=context,
                         trace_id=trace_id)

    def note_op(self, event: str, amount: int) -> None:
        """Attribute one :mod:`repro.instrument` event to the innermost
        open span on this thread (no-op when none is open)."""
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].note_op(event, amount)

    def record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self._dropped += 1
            else:
                self._records.append(record)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"records": [r.to_dict() for r in self._records],
                    "dropped": self._dropped}

    def merge_snapshot(self, snap: Dict[str, object],
                       reparent: Optional[TraceContext] = None) -> None:
        """Concatenate another log's records under the bound.

        With ``reparent``, records that arrive *orphaned* -- a
        worker-local root (no parent_id) and everything in the trace it
        minted -- are adopted into ``reparent``'s trace, the root
        becoming a child of ``reparent``'s span and its descendants
        following (their locally-minted trace id is remapped, their
        parent links already point at the root).  Records opened with
        an explicit foreign context are left untouched: they carry the
        caller's trace id and a parent, so they are already stitched.
        """
        records = [SpanRecord.from_dict(d) for d in snap.get("records", ())]
        if reparent is not None:
            orphan_traces = {record.trace_id for record in records
                             if record.parent_id is None
                             and record.trace_id is not None}
            adopted = []
            for record in records:
                trace_id = record.trace_id
                parent_id = record.parent_id
                changed = False
                if trace_id is None or trace_id in orphan_traces:
                    trace_id = reparent.trace_id
                    changed = True
                if record.parent_id is None:
                    parent_id = reparent.span_id
                    changed = True
                if changed:
                    record = SpanRecord(
                        name=record.name, start=record.start,
                        duration=record.duration, parent=record.parent,
                        attrs=record.attrs, trace_id=trace_id,
                        span_id=record.span_id, parent_id=parent_id,
                        ops=record.ops)
                adopted.append(record)
            records = adopted
        dropped = int(snap.get("dropped", 0))
        with self._lock:
            self._dropped += dropped
            for record in records:
                if len(self._records) >= self.max_spans:
                    self._dropped += 1
                else:
                    self._records.append(record)

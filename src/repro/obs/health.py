"""Deterministic health evaluation over telemetry windows.

:class:`~repro.obs.rollup.TelemetryRollup` records *what happened* per
window; this module turns those records into *judgments*:

* :class:`AlertRule` / :class:`AlertEngine` -- a declarative rule
  engine (threshold / ratio / absence predicates over one window
  record, with ``for_windows`` hold-downs) that drives a
  firing -> resolved alert lifecycle, evaluated once per telemetry
  roll on the sim clock;
* :class:`HealthMonitor` -- a per-router state machine
  (healthy -> degraded -> critical) classified each window from live
  router signals (crash state, operator-channel loss, CRL/URL
  staleness, gossip version lag, handshake failure ratios, journal
  fsync losses) plus mesh-wide signals (verifier-pool worker
  restarts), exported as ``health.*`` gauges and a ``/health``-shaped
  snapshot dict that a future service-plane daemon can serve verbatim;
* :func:`correlate_incidents` -- joins the fault injector's
  ground-truth :class:`~repro.faults.injector.FaultEvent` log against
  health transitions and alert firings to produce per-incident
  timelines with detection latency (MTTD) and recovery time (MTTR).

Everything here is a pure function of the window records and signal
values it is fed -- no wall-clock reads feed any decision -- so a
seeded chaos run produces bit-identical alert streams, health
transitions, and incident timelines on every replay.  (The only
wall-clock touch is :attr:`AlertEngine.eval_seconds` /
:attr:`HealthMonitor.eval_seconds`, passive cost accounting for the
<= 3% evaluation-overhead gate in ``bench_health_detection``.)
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Alert predicate kinds understood by :class:`AlertRule`.
ALERT_KINDS = ("threshold", "ratio", "absence")

#: Alert severities, mildest first.
SEVERITIES = ("warning", "critical")

#: Health states, healthiest first (index = numeric gauge level).
HEALTH_STATES = ("healthy", "degraded", "critical")

_COMPARATORS = {
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
}


def window_value(window: Dict[str, object], metric: str
                 ) -> Optional[float]:
    """Resolve ``metric`` against one rollup window record.

    Lookup order: counter delta, then gauge level, then histogram
    field addressed as ``name:field`` (e.g. ``latency_seconds:p95``).
    ``metric`` may be a ``+``-joined sum of counter/gauge names --
    missing addends count as 0, but a sum where *every* addend is
    missing resolves to ``None`` (no signal this window).
    """
    parts = [p.strip() for p in metric.split("+")] if "+" in metric \
        else [metric]
    total = 0.0
    seen = False
    for part in parts:
        if ":" in part:
            name, fld = part.rsplit(":", 1)
            hist = window.get("histograms", {}).get(name)
            value = None if hist is None else hist.get(fld)
        else:
            value = window.get("counters", {}).get(part)
            if value is None:
                value = window.get("gauges", {}).get(part)
        if value is not None:
            total += float(value)
            seen = True
    return total if seen else None


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert predicate over window records.

    * ``threshold`` -- ``window_value(metric) <op> value``;
    * ``ratio`` -- ``numerator / denominator <op> value``, with no
      signal (predicate False) when the denominator resolves below
      ``min_denominator`` *and* the numerator is silent too (a loud
      numerator over a silent denominator is a 100% failure rate, not
      missing data);
    * ``absence`` -- true when ``metric`` resolves to ``None`` or 0
      this window (a heartbeat that stopped).

    ``for_windows`` is a hold-down: the predicate must hold for that
    many *consecutive* windows before the alert fires; one false
    window resets the streak and resolves a firing alert.
    """

    name: str
    kind: str = "threshold"
    metric: str = ""
    op: str = ">="
    value: float = 1.0
    numerator: str = ""
    denominator: str = ""
    min_denominator: float = 1.0
    for_windows: int = 1
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.kind not in ALERT_KINDS:
            raise SimulationError(
                f"unknown alert kind {self.kind!r} "
                f"(want one of {ALERT_KINDS})")
        if self.op not in _COMPARATORS:
            raise SimulationError(
                f"unknown alert comparator {self.op!r} "
                f"(want one of {tuple(_COMPARATORS)})")
        if self.severity not in SEVERITIES:
            raise SimulationError(
                f"unknown alert severity {self.severity!r} "
                f"(want one of {SEVERITIES})")
        if self.for_windows < 1:
            raise SimulationError("for_windows must be >= 1")
        if self.kind in ("threshold", "absence") and not self.metric:
            raise SimulationError(
                f"{self.kind} rule {self.name!r} needs a metric")
        if self.kind == "ratio" \
                and not (self.numerator and self.denominator):
            raise SimulationError(
                f"ratio rule {self.name!r} needs numerator "
                "and denominator")

    def holds(self, window: Dict[str, object]
              ) -> Tuple[bool, Optional[float]]:
        """Evaluate this rule's predicate against one window record;
        returns ``(holds, observed_value)``."""
        compare = _COMPARATORS[self.op]
        if self.kind == "absence":
            observed = window_value(window, self.metric)
            return (observed is None or observed == 0), observed
        if self.kind == "threshold":
            observed = window_value(window, self.metric)
            if observed is None:
                return False, None
            return compare(observed, self.value), observed
        numerator = window_value(window, self.numerator) or 0.0
        denominator = window_value(window, self.denominator) or 0.0
        if denominator < self.min_denominator:
            if numerator <= 0:
                return False, None
            denominator = max(denominator, numerator)
        ratio = numerator / denominator
        return compare(ratio, self.value), ratio


class AlertEngine:
    """Evaluates a rule pack once per window; owns alert lifecycle.

    :meth:`evaluate` returns the *new* lifecycle events of that window
    (``firing`` / ``resolved`` records as plain dicts); the full
    ordered history stays in :attr:`events` and the currently firing
    rule names in :meth:`firing`.
    """

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"duplicate alert rule names in pack: {sorted(names)}")
        self.rules = tuple(rules)
        self.events: List[Dict[str, object]] = []
        self.eval_seconds = 0.0
        self._streaks: Dict[str, int] = {rule.name: 0 for rule in rules}
        self._firing: Dict[str, bool] = {rule.name: False
                                         for rule in rules}

    def evaluate(self, window: Dict[str, object]
                 ) -> List[Dict[str, object]]:
        """Run every rule against one window record."""
        started = time.perf_counter()
        new_events: List[Dict[str, object]] = []
        for rule in self.rules:
            holds, observed = rule.holds(window)
            if holds:
                self._streaks[rule.name] += 1
                if not self._firing[rule.name] \
                        and self._streaks[rule.name] >= rule.for_windows:
                    self._firing[rule.name] = True
                    new_events.append(self._event("firing", rule,
                                                  window, observed))
            else:
                self._streaks[rule.name] = 0
                if self._firing[rule.name]:
                    self._firing[rule.name] = False
                    new_events.append(self._event("resolved", rule,
                                                  window, observed))
        self.events.extend(new_events)
        self.eval_seconds += time.perf_counter() - started
        return new_events

    @staticmethod
    def _event(lifecycle: str, rule: AlertRule,
               window: Dict[str, object],
               observed: Optional[float]) -> Dict[str, object]:
        return {"event": lifecycle, "rule": rule.name,
                "severity": rule.severity,
                "window": int(window.get("index", -1)),
                "t": float(window.get("t", 0.0)),
                "observed": observed}

    def firing(self) -> List[str]:
        """Names of the currently firing rules, rule-pack order."""
        return [rule.name for rule in self.rules
                if self._firing[rule.name]]

    def firing_count(self) -> int:
        return sum(1 for rule in self.rules if self._firing[rule.name])


def default_metro_rules() -> Tuple[AlertRule, ...]:
    """The metro rule pack: every rule is quiet on a fault-free run.

    The two ``health.routers_*`` thresholds piggyback on the
    :class:`HealthMonitor` gauges (exported *before* the window rolls,
    so the rule sees the same window that triggered the state), which
    is what keeps detection inside one telemetry window.
    """
    return (
        AlertRule(name="router-critical", kind="threshold",
                  metric="health.routers_critical", op=">=", value=1,
                  severity="critical"),
        AlertRule(name="router-degraded", kind="threshold",
                  metric="health.routers_degraded", op=">=", value=1,
                  severity="warning"),
        AlertRule(name="handshake-failures", kind="ratio",
                  numerator="router.degraded_refusals_total",
                  denominator="router.degraded_refusals_total"
                              "+user.handshakes_completed_total",
                  op=">=", value=0.5, min_denominator=4,
                  severity="warning"),
        AlertRule(name="journal-fsync-loss", kind="threshold",
                  metric="durable.fsync_lost_bytes", op=">=", value=1,
                  severity="warning"),
        AlertRule(name="pool-worker-restarts", kind="threshold",
                  metric="pool.worker_restarts", op=">=", value=1,
                  severity="warning"),
    )


@dataclass(frozen=True)
class RouterSignals:
    """One router's raw health inputs at one evaluation instant.

    Counts (``handshakes_*``, ``fsync_lost_bytes``) are *cumulative*;
    the monitor diffs them against its previous observation itself, so
    callers just report current totals.
    """

    router_id: str
    crashed: bool = False
    channel_up: bool = True
    lists_age: float = 0.0
    staleness_grace: float = 600.0
    versions_behind: int = 0
    handshakes_completed: float = 0.0
    handshakes_rejected: float = 0.0
    fsync_lost_bytes: float = 0.0


@dataclass(frozen=True)
class HealthPolicy:
    """Classification thresholds for :class:`HealthMonitor`."""

    failure_ratio_degraded: float = 0.5    # rejected / attempts
    failure_ratio_critical: float = 0.9
    min_handshake_samples: int = 4         # below: ratio has no signal
    versions_behind_degraded: int = 2      # gossip convergence lag
    stale_fraction_degraded: float = 0.5   # lists_age / staleness_grace


class HealthMonitor:
    """Per-router healthy/degraded/critical classification.

    Call :meth:`observe` once per telemetry window, *before* the
    rollup rolls, so the exported ``health.*`` gauges land in the same
    window record the :class:`AlertEngine` then evaluates.  State
    *changes* are appended to :attr:`transitions` (with the reasons
    that justified the new state); :attr:`last_snapshot` always holds
    the latest ``/health``-shaped dict.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self.states: Dict[str, str] = {}
        self.transitions: List[Dict[str, object]] = []
        self.last_snapshot: Optional[Dict[str, object]] = None
        self.eval_seconds = 0.0
        self._prev: Dict[str, RouterSignals] = {}
        self._prev_pool_restarts = 0.0

    # -- classification -------------------------------------------------

    def _classify(self, sig: RouterSignals
                  ) -> Tuple[str, List[str]]:
        """One router's state this window, plus why."""
        policy = self.policy
        prev = self._prev.get(sig.router_id)
        reasons: List[str] = []
        level = 0
        if sig.crashed:
            return "critical", ["router crashed"]
        if sig.lists_age > sig.staleness_grace:
            level = max(level, 2)
            reasons.append(
                f"CRL/URL past staleness grace "
                f"(age {sig.lists_age:.0f}s > "
                f"{sig.staleness_grace:.0f}s)")
        elif not sig.channel_up and sig.lists_age \
                > policy.stale_fraction_degraded * sig.staleness_grace:
            level = max(level, 1)
            reasons.append(
                f"CRL/URL staleness {sig.lists_age:.0f}s "
                "approaching grace with channel down")
        if not sig.channel_up:
            level = max(level, 1)
            reasons.append("operator channel severed (degraded mode)")
        if sig.versions_behind >= policy.versions_behind_degraded:
            level = max(level, 1)
            reasons.append(
                f"gossip convergence lag: {sig.versions_behind} "
                "list versions behind the operator")
        completed = sig.handshakes_completed \
            - (prev.handshakes_completed if prev else 0.0)
        rejected = sig.handshakes_rejected \
            - (prev.handshakes_rejected if prev else 0.0)
        attempts = completed + rejected
        if attempts >= policy.min_handshake_samples:
            ratio = rejected / attempts
            if ratio >= policy.failure_ratio_critical:
                level = max(level, 2)
                reasons.append(
                    f"handshake failure ratio {ratio:.2f} critical")
            elif ratio >= policy.failure_ratio_degraded:
                level = max(level, 1)
                reasons.append(
                    f"handshake failure ratio {ratio:.2f} degraded")
        fsync_lost = sig.fsync_lost_bytes \
            - (prev.fsync_lost_bytes if prev else 0.0)
        if fsync_lost > 0:
            level = max(level, 1)
            reasons.append(
                f"journal fsync loss ({fsync_lost:.0f} bytes this "
                "window)")
        return HEALTH_STATES[level], reasons

    # -- the per-window evaluation --------------------------------------

    def observe(self, now: float, window_index: int,
                signals: Iterable[RouterSignals],
                pool_worker_restarts: float = 0.0,
                registry=None) -> Dict[str, object]:
        """Classify every router; export gauges; return the snapshot.

        ``pool_worker_restarts`` is the mesh-wide cumulative restart
        counter (verification pools are shared infrastructure, not
        per-router); a restart during the window marks the *mesh*
        degraded even when every router is individually healthy.
        """
        started = time.perf_counter()
        routers: Dict[str, Dict[str, object]] = {}
        tally = {state: 0 for state in HEALTH_STATES}
        worst = 0
        for sig in sorted(signals, key=lambda s: s.router_id):
            state, reasons = self._classify(sig)
            self._prev[sig.router_id] = sig
            tally[state] += 1
            worst = max(worst, HEALTH_STATES.index(state))
            previous = self.states.get(sig.router_id, "healthy")
            if state != previous:
                self.transitions.append({
                    "router": sig.router_id, "from": previous,
                    "to": state, "t": float(now),
                    "window": int(window_index), "reasons": reasons})
            self.states[sig.router_id] = state
            routers[sig.router_id] = {"state": state,
                                      "reasons": reasons}
        pool_delta = pool_worker_restarts - self._prev_pool_restarts
        self._prev_pool_restarts = pool_worker_restarts
        mesh_reasons: List[str] = []
        if pool_delta > 0:
            worst = max(worst, 1)
            mesh_reasons.append(
                f"{pool_delta:.0f} verifier-pool worker restarts "
                "this window")
        snapshot: Dict[str, object] = {
            "status": HEALTH_STATES[worst],
            "t": float(now),
            "window": int(window_index),
            "routers": routers,
            "mesh": {"reasons": mesh_reasons,
                     "pool_worker_restarts": pool_delta},
        }
        self.last_snapshot = snapshot
        if registry is not None:
            for state in HEALTH_STATES:
                registry.gauge(f"health.routers_{state}", tally[state])
            for router_id, entry in routers.items():
                registry.gauge(
                    f"health.state.{router_id}",
                    HEALTH_STATES.index(str(entry["state"])))
            registry.gauge("health.status_level", worst)
        self.eval_seconds += time.perf_counter() - started
        return snapshot


# -- incident correlation ---------------------------------------------------

#: Ground-truth fault kinds that open an incident, mapped to the fault
#: kind whose later firing on the same target repairs it.
INCIDENT_KINDS = {"kill": "restart",
                  "sever_channel": "restore_channel"}


def _window_of(window_times: Sequence[float], t: float) -> int:
    """Index of the first telemetry window rolled at or after ``t``
    (the earliest window that *could* observe an event at ``t``)."""
    for index, when in enumerate(window_times):
        if when >= t:
            return index
    return len(window_times)


def correlate_incidents(fault_events: Sequence[object],
                        transitions: Sequence[Dict[str, object]],
                        alert_events: Sequence[Dict[str, object]],
                        window_times: Sequence[float]
                        ) -> List[Dict[str, object]]:
    """Join injected faults against observed detections.

    ``fault_events`` are :class:`~repro.faults.injector.FaultEvent`
    records (or equivalent dicts); every event whose kind is in
    :data:`INCIDENT_KINDS` opens one incident.  For each incident:

    * **detection** -- the target router's first transition *out of*
      ``healthy`` at ``t >= injected_at``; MTTD is reported both in
      seconds and in telemetry windows (1 = caught by the first window
      that could have seen it);
    * **recovery** -- the matching repair fault on the same target,
      and the router's first transition back to ``healthy`` at or
      after it; MTTR is ``recovered_at - injected_at``;
    * **timeline** -- every fault event, health transition, and global
      alert lifecycle event for this incident's span, time-ordered.

    Deterministic: order follows injection order, ties broken by
    target id; all inputs are already deterministic per seed.
    """
    events = [e if isinstance(e, dict) else e.to_dict()
              for e in fault_events]
    incidents: List[Dict[str, object]] = []
    for event in events:
        kind = str(event["kind"])
        if kind not in INCIDENT_KINDS:
            continue
        target = event.get("target")
        injected_at = float(event["t"])
        repair_kind = INCIDENT_KINDS[kind]
        repair = next(
            (e for e in events
             if e["kind"] == repair_kind and e.get("target") == target
             and float(e["t"]) >= injected_at), None)
        detection = next(
            (tr for tr in transitions
             if tr["router"] == target and tr["to"] != "healthy"
             and float(tr["t"]) >= injected_at), None)
        recovered = None
        if repair is not None:
            recovered = next(
                (tr for tr in transitions
                 if tr["router"] == target and tr["to"] == "healthy"
                 and float(tr["t"]) >= float(repair["t"])), None)
        closes_at = (float(recovered["t"]) if recovered is not None
                     else (window_times[-1] if window_times
                           else injected_at))
        timeline: List[Dict[str, object]] = [
            {"t": injected_at, "event": "fault_injected",
             "detail": kind}]
        if repair is not None:
            timeline.append({"t": float(repair["t"]),
                             "event": "repair_injected",
                             "detail": repair_kind})
        for tr in transitions:
            if tr["router"] == target \
                    and injected_at <= float(tr["t"]) <= closes_at:
                timeline.append({
                    "t": float(tr["t"]), "event": "health_transition",
                    "detail": f"{tr['from']} -> {tr['to']}",
                    "reasons": list(tr.get("reasons", ()))})
        for alert in alert_events:
            if injected_at <= float(alert["t"]) <= closes_at:
                timeline.append({
                    "t": float(alert["t"]),
                    "event": f"alert_{alert['event']}",
                    "detail": str(alert["rule"]),
                    "severity": str(alert["severity"])})
        timeline.sort(key=lambda entry: (float(entry["t"]),
                                         str(entry["event"])))
        incident: Dict[str, object] = {
            "incident": ("router-kill" if kind == "kill"
                         else "channel-sever"),
            "target": target,
            "injected_at": injected_at,
            "detected": detection is not None,
            "detected_at": (float(detection["t"])
                            if detection is not None else None),
            "mttd_seconds": (float(detection["t"]) - injected_at
                             if detection is not None else None),
            "mttd_windows": (
                int(detection["window"])
                - _window_of(window_times, injected_at) + 1
                if detection is not None else None),
            "recovered": recovered is not None,
            "recovered_at": (float(recovered["t"])
                             if recovered is not None else None),
            "mttr_seconds": (float(recovered["t"]) - injected_at
                             if recovered is not None else None),
            "timeline": timeline,
        }
        incidents.append(incident)
    incidents.sort(key=lambda inc: (float(inc["injected_at"]),
                                    str(inc["target"])))
    return incidents


def incidents_to_jsonl(incidents: Sequence[Dict[str, object]]) -> str:
    """One JSON object per incident, key-sorted (CI artifact format;
    read back with :func:`repro.obs.rollup.read_jsonl`)."""
    return "".join(json.dumps(incident, sort_keys=True) + "\n"
                   for incident in incidents)


def render_incidents(incidents: Sequence[Dict[str, object]]) -> str:
    """Human-readable per-incident timelines (the ``obs-report
    --format incidents`` output)."""
    if not incidents:
        return "no incidents\n"
    lines: List[str] = []
    for incident in incidents:
        mttd = incident.get("mttd_seconds")
        mttr = incident.get("mttr_seconds")
        lines.append(
            f"incident {incident['incident']} target="
            f"{incident['target']} injected_at="
            f"{float(incident['injected_at']):.1f}"  # type: ignore
            + (f" mttd={mttd:.1f}s"
               f"/{incident['mttd_windows']}w" if mttd is not None
               else " UNDETECTED")
            + (f" mttr={mttr:.1f}s" if mttr is not None else ""))
        for entry in incident.get("timeline", ()):   # type: ignore
            detail = entry.get("detail", "")
            extra = ""
            if entry.get("reasons"):
                extra = "  (" + "; ".join(entry["reasons"]) + ")"
            if entry.get("severity"):
                extra = f"  [{entry['severity']}]"
            lines.append(f"  [{float(entry['t']):10.1f}s] "
                         f"{entry['event']}: {detail}{extra}")
        lines.append("")
    return "\n".join(lines)

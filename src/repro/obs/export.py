"""Snapshot exporters: JSON and Prometheus text exposition format.

Both operate on the plain-data snapshot (``registry.snapshot()`` or
any merge of snapshots), never on a live registry, so exporting is
race-free and works on snapshots shipped across processes.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def to_json(snapshot: Dict[str, object], indent: int = 2) -> str:
    """Render a snapshot as JSON (NaN/inf-free, diff-friendly keys)."""

    def clean(value):
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {k: clean(v) for k, v in sorted(value.items())}
        if isinstance(value, (list, tuple)):
            return [clean(v) for v in value]
        return value

    return json.dumps(clean(snapshot), indent=indent, sort_keys=True)


def _sanitize(name: str, namespace: str) -> str:
    metric = _NAME_OK.sub("_", name)
    return f"{namespace}_{metric}" if namespace else metric


def _format_value(value: float) -> str:
    if value != value:                    # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted


def to_prometheus(snapshot: Dict[str, object],
                  namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; histograms emit the standard
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Spans are aggregated per name into a counter of
    occurrences and a total-duration counter (span-level detail stays
    in the JSON export; Prometheus is for aggregates).
    """
    lines = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f'{metric}_sum {_format_value(hist["sum"])}')
        lines.append(f'{metric}_count {hist["count"]}')

    span_totals: Dict[str, list] = {}
    for record in snapshot.get("spans", {}).get("records", ()):
        entry = span_totals.setdefault(str(record["name"]), [0, 0.0])
        entry[0] += 1
        entry[1] += float(record["duration"])
    for name, (count, total) in sorted(span_totals.items()):
        metric = _sanitize(f"span_{name}", namespace)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {count}")
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {_format_value(total)}")

    return "\n".join(lines) + ("\n" if lines else "")

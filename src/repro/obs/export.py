"""Snapshot exporters: JSON and Prometheus text exposition format.

Both operate on the plain-data snapshot (``registry.snapshot()`` or
any merge of snapshots), never on a live registry, so exporting is
race-free and works on snapshots shipped across processes.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules:
    backslash, double-quote, and newline must be escaped (in that
    order -- backslash first, or the other escapes double up)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def to_json(snapshot: Dict[str, object], indent: int = 2) -> str:
    """Render a snapshot as JSON (NaN/inf-free, diff-friendly keys)."""

    def clean(value):
        if isinstance(value, float) and not math.isfinite(value):
            return None
        if isinstance(value, dict):
            return {k: clean(v) for k, v in sorted(value.items())}
        if isinstance(value, (list, tuple)):
            return [clean(v) for v in value]
        return value

    return json.dumps(clean(snapshot), indent=indent, sort_keys=True)


def _sanitize(name: str, namespace: str) -> str:
    metric = _NAME_OK.sub("_", name)
    return f"{namespace}_{metric}" if namespace else metric


def _format_value(value: float) -> str:
    if value != value:                    # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    formatted = repr(float(value))
    return formatted


def to_prometheus(snapshot: Dict[str, object],
                  namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; histograms emit the standard
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Spans are aggregated per name into labelled series --
    ``<ns>_span_total{name="..."}``, ``<ns>_span_seconds_total{...}``,
    and per-op ``<ns>_span_ops_total{name="...",op="..."}`` -- with
    label values escaped per the exposition format (span-level detail
    stays in the JSON export; Prometheus is for aggregates).
    """
    lines = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _sanitize(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f'{metric}_sum {_format_value(hist["sum"])}')
        lines.append(f'{metric}_count {hist["count"]}')

    span_totals: Dict[str, list] = {}
    op_totals: Dict[tuple, int] = {}
    for record in snapshot.get("spans", {}).get("records", ()):
        name = str(record["name"])
        entry = span_totals.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += float(record["duration"])
        for op, amount in dict(record.get("ops") or ()).items():
            key = (name, str(op))
            op_totals[key] = op_totals.get(key, 0) + int(amount)
    if span_totals:
        base = _sanitize("span", namespace)
        lines.append(f"# TYPE {base}_total counter")
        lines.append(f"# TYPE {base}_seconds_total counter")
        for name, (count, total) in sorted(span_totals.items()):
            label = _escape_label_value(name)
            lines.append(f'{base}_total{{name="{label}"}} {count}')
            lines.append(f'{base}_seconds_total{{name="{label}"}} '
                         f"{_format_value(total)}")
        if op_totals:
            lines.append(f"# TYPE {base}_ops_total counter")
            for (name, op), amount in sorted(op_totals.items()):
                lines.append(
                    f'{base}_ops_total{{name="{_escape_label_value(name)}",'
                    f'op="{_escape_label_value(op)}"}} {amount}')

    return "\n".join(lines) + ("\n" if lines else "")

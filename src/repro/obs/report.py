"""Build an observability report from a short representative workload.

This is the library half of the ``python -m repro obs-report`` CLI
(:mod:`repro.__main__` owns the actual printing -- nothing in the
package body writes to stdout).  It runs a small but end-to-end
workload -- deployment setup, a handful of anonymous user-router
handshakes including a batch, session data, and a revocation rejection
-- under a fresh :class:`~repro.obs.registry.MetricsRegistry`, then
renders the collected metrics in the requested exporter format.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import obs

#: Formats understood by :func:`render_report`.
FORMATS = ("json", "prom", "traces", "folded")


def collect_demo_metrics(preset: str = "TEST", handshakes: int = 4,
                         registry: Optional["obs.MetricsRegistry"] = None,
                         seed: int = 7) -> "obs.MetricsRegistry":
    """Run the representative workload; return the filled registry."""
    from repro.core.deployment import Deployment   # deferred: heavy import
    from repro.errors import RevokedKeyError

    registry = registry or obs.MetricsRegistry()
    with obs.collecting(registry):
        with registry.span("obs-report.setup", preset=preset):
            deployment = Deployment.build(
                preset=preset, seed=seed,
                groups={"Company X": 4, "University Z": 4},
                users=[("alice", ["Company X"]),
                       ("bob", ["University Z"])],
                routers=["MR-1"])
        router = deployment.routers["MR-1"]
        names = ["alice", "bob"]
        for index in range(max(1, handshakes)):
            user = deployment.users[names[index % len(names)]]
            with registry.span("obs-report.handshake", n=index):
                beacon = router.make_beacon()
                request, pending = user.connect_to_router(beacon)
                confirm, router_session = router.process_request(request)
                session = user.complete_router_handshake(pending, confirm)
            router_session.receive(session.send(b"obs probe %d" % index))
        # One batch through the router's batch path, then a revocation
        # rejection so the reject counters are non-trivial.
        beacons = [router.make_beacon() for _ in range(2)]
        batch = [deployment.users[names[i % 2]]
                 .connect_to_router(beacons[i])[0]
                 for i in range(2)]
        router.process_request_batch(batch)
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        router.refresh_lists()
        try:
            deployment.connect("bob", "MR-1")
        except RevokedKeyError:
            pass
    return registry


def collect_scenario_metrics(routers: int = 2, users: int = 4,
                             seed: int = 11, duration: float = 40.0,
                             telemetry_window: float = 10.0,
                             area_side: float = 600.0):
    """Run a small seeded traced simulation; return the Scenario.

    The default shape (2 routers, 4 users, 600 m side) is the
    acceptance scenario from DESIGN.md: dense enough that several
    users complete the 3-message handshake, small enough to run in
    well under a second.  The returned scenario's ``registry`` holds
    the stitched handshake traces and ``telemetry_jsonl()`` the
    windowed rollups.
    """
    from repro.wmn.scenario import Scenario, ScenarioConfig
    from repro.wmn.topology import TopologyConfig

    grid = 1
    while grid * grid < max(1, routers):
        grid += 1
    config = ScenarioConfig(
        seed=seed,
        topology=TopologyConfig(area_side=area_side, router_grid=grid,
                                router_count=routers, user_count=users,
                                seed=seed),
        tracing=True, telemetry_window=telemetry_window)
    scenario = Scenario(config)
    scenario.run(duration)
    scenario.publish_metrics()
    return scenario


# -- causal trace reconstruction ------------------------------------------


def build_traces(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    """Group a snapshot's span records into per-trace structures.

    Returns one dict per trace id, sorted by root start time:
    ``trace_id``, ``spans`` (records sorted by start, then span id),
    ``root`` (the record with no in-trace parent; ties broken by
    earliest start), ``duration`` (the root's), and ``ops`` (per-op
    totals summed over every span in the trace -- by construction of
    the instrument bridge these reproduce the global counters).
    Records that never got a trace id (plain stack spans from
    non-traced code) are skipped.
    """
    by_trace: Dict[str, List[dict]] = {}
    for record in snapshot.get("spans", {}).get("records", ()):
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(str(trace_id), []).append(record)
    traces: List[Dict[str, object]] = []
    for trace_id, records in by_trace.items():
        records.sort(key=lambda r: (float(r["start"]),
                                    str(r.get("span_id") or "")))
        ids = {r.get("span_id") for r in records}
        roots = [r for r in records
                 if r.get("parent_id") is None
                 or r.get("parent_id") not in ids]
        root = roots[0] if roots else records[0]
        ops: Dict[str, int] = {}
        for record in records:
            for op, amount in dict(record.get("ops") or {}).items():
                ops[op] = ops.get(op, 0) + int(amount)
        traces.append({"trace_id": trace_id, "spans": records,
                       "root": root, "duration": float(root["duration"]),
                       "ops": ops})
    traces.sort(key=lambda t: (float(t["root"]["start"]), t["trace_id"]))
    return traces


def top_slowest(traces: Sequence[Dict[str, object]], n: int = 5
                ) -> List[Dict[str, object]]:
    """The ``n`` traces with the longest root duration, slowest first
    (ties broken by trace id for determinism)."""
    ranked = sorted(traces, key=lambda t: (-float(t["duration"]),
                                           str(t["trace_id"])))
    return ranked[:max(0, n)]


def _format_ops(ops: Dict[str, int]) -> str:
    return " ".join(f"{op}={amount}" for op, amount in sorted(ops.items()))


def _span_children(spans: Sequence[dict]) -> Dict[object, List[dict]]:
    """Map parent span id -> children, preserving start order; spans
    whose parent is outside the trace hang off ``None``."""
    ids = {record.get("span_id") for record in spans}
    children: Dict[object, List[dict]] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(record)
    return children


def render_waterfall(traces: Sequence[Dict[str, object]],
                     top: Optional[int] = None) -> str:
    """Text waterfall: one tree per trace, children indented under
    their parent, each line showing the start offset from the trace
    root, the span duration, attrs, and attributed op counts."""
    if top is not None:
        traces = top_slowest(traces, top)
    lines: List[str] = []
    for trace in traces:
        spans: List[dict] = trace["spans"]   # type: ignore[assignment]
        origin = float(trace["root"]["start"])
        ops = _format_ops(trace["ops"])      # type: ignore[arg-type]
        lines.append(f"trace {trace['trace_id']}  "
                     f"spans={len(spans)}  "
                     f"duration={float(trace['duration']):.6f}s"
                     + (f"  ops: {ops}" if ops else ""))
        children = _span_children(spans)

        def walk(record: dict, depth: int) -> None:
            offset = float(record["start"]) - origin
            attrs = dict(record.get("attrs") or {})
            attr_text = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            op_text = _format_ops(dict(record.get("ops") or {}))
            line = (f"  [+{offset:9.6f}s {float(record['duration']):9.6f}s] "
                    + "  " * depth + str(record["name"]))
            if attr_text:
                line += f"  {attr_text}"
            if op_text:
                line += f"  ops: {op_text}"
            lines.append(line)
            for child in children.get(record.get("span_id"), ()):
                if child is not record:
                    walk(child, depth + 1)

        for orphan in children.get(None, ()):
            walk(orphan, 0)
        lines.append("")
    return "\n".join(lines)


def to_folded(traces: Sequence[Dict[str, object]]) -> str:
    """Folded-stack (FlameGraph / speedscope "collapsed") output.

    One ``a;b;c weight`` line per distinct root-to-span path, weight
    in integer microseconds of *self* time (child time excluded).
    Under the sim clock nested stage spans often measure 0 virtual
    seconds; every span still contributes ``max(1, usec)`` so the
    causal structure survives into the flame graph.
    """
    stacks: Dict[str, int] = {}
    for trace in traces:
        spans: List[dict] = trace["spans"]   # type: ignore[assignment]
        children = _span_children(spans)

        def walk(record: dict, prefix: str) -> None:
            path = (f"{prefix};{record['name']}" if prefix
                    else str(record["name"]))
            child_time = 0.0
            for child in children.get(record.get("span_id"), ()):
                if child is record:
                    continue
                child_time += float(child["duration"])
                walk(child, path)
            self_seconds = max(0.0, float(record["duration"]) - child_time)
            weight = max(1, int(self_seconds * 1e6))
            stacks[path] = stacks.get(path, 0) + weight

        for orphan in children.get(None, ()):
            walk(orphan, "")
    return "".join(f"{path} {weight}\n"
                   for path, weight in sorted(stacks.items()))


def render_snapshot(snapshot, fmt: str = "json") -> str:
    """Render an already-collected snapshot in ``fmt``."""
    if fmt == "json":
        return obs.to_json(snapshot)
    if fmt == "prom":
        return obs.to_prometheus(snapshot)
    if fmt == "traces":
        return render_waterfall(build_traces(snapshot))
    if fmt == "folded":
        return to_folded(build_traces(snapshot))
    raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")


def render_report(fmt: str = "json", preset: str = "TEST",
                  handshakes: int = 4, seed: int = 7) -> str:
    """Collect the demo workload's metrics and render them."""
    if fmt not in FORMATS:
        raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")
    registry = collect_demo_metrics(preset=preset, handshakes=handshakes,
                                    seed=seed)
    return render_snapshot(registry.snapshot(), fmt)

"""Build an observability report from a short representative workload.

This is the library half of the ``python -m repro obs-report`` CLI
(:mod:`repro.__main__` owns the actual printing -- nothing in the
package body writes to stdout).  It runs a small but end-to-end
workload -- deployment setup, a handful of anonymous user-router
handshakes including a batch, session data, and a revocation rejection
-- under a fresh :class:`~repro.obs.registry.MetricsRegistry`, then
renders the collected metrics in the requested exporter format.
"""

from __future__ import annotations

from typing import Optional

from repro import obs

#: Formats understood by :func:`render_report`.
FORMATS = ("json", "prom")


def collect_demo_metrics(preset: str = "TEST", handshakes: int = 4,
                         registry: Optional["obs.MetricsRegistry"] = None,
                         seed: int = 7) -> "obs.MetricsRegistry":
    """Run the representative workload; return the filled registry."""
    from repro.core.deployment import Deployment   # deferred: heavy import
    from repro.errors import RevokedKeyError

    registry = registry or obs.MetricsRegistry()
    with obs.collecting(registry):
        with registry.span("obs-report.setup", preset=preset):
            deployment = Deployment.build(
                preset=preset, seed=seed,
                groups={"Company X": 4, "University Z": 4},
                users=[("alice", ["Company X"]),
                       ("bob", ["University Z"])],
                routers=["MR-1"])
        router = deployment.routers["MR-1"]
        names = ["alice", "bob"]
        for index in range(max(1, handshakes)):
            user = deployment.users[names[index % len(names)]]
            with registry.span("obs-report.handshake", n=index):
                beacon = router.make_beacon()
                request, pending = user.connect_to_router(beacon)
                confirm, router_session = router.process_request(request)
                session = user.complete_router_handshake(pending, confirm)
            router_session.receive(session.send(b"obs probe %d" % index))
        # One batch through the router's batch path, then a revocation
        # rejection so the reject counters are non-trivial.
        beacons = [router.make_beacon() for _ in range(2)]
        batch = [deployment.users[names[i % 2]]
                 .connect_to_router(beacons[i])[0]
                 for i in range(2)]
        router.process_request_batch(batch)
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        router.refresh_lists()
        try:
            deployment.connect("bob", "MR-1")
        except RevokedKeyError:
            pass
    return registry


def render_snapshot(snapshot, fmt: str = "json") -> str:
    """Render an already-collected snapshot in ``fmt``."""
    if fmt == "json":
        return obs.to_json(snapshot)
    if fmt == "prom":
        return obs.to_prometheus(snapshot)
    raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")


def render_report(fmt: str = "json", preset: str = "TEST",
                  handshakes: int = 4, seed: int = 7) -> str:
    """Collect the demo workload's metrics and render them."""
    if fmt not in FORMATS:
        raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")
    registry = collect_demo_metrics(preset=preset, handshakes=handshakes,
                                    seed=seed)
    return render_snapshot(registry.snapshot(), fmt)

"""Build an observability report from a short representative workload.

This is the library half of the ``python -m repro obs-report`` CLI
(:mod:`repro.__main__` owns the actual printing -- nothing in the
package body writes to stdout).  It runs a small but end-to-end
workload -- deployment setup, a handful of anonymous user-router
handshakes including a batch, session data, and a revocation rejection
-- under a fresh :class:`~repro.obs.registry.MetricsRegistry`, then
renders the collected metrics in the requested exporter format.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.obs.health import render_incidents

#: Formats understood by :func:`render_report`.
FORMATS = ("json", "prom", "traces", "folded", "health", "incidents")

#: Formats that need a chaos scenario run (health evaluation + fault
#: ground truth) rather than the plain demo workload.
SCENARIO_FORMATS = ("health", "incidents")


def collect_demo_metrics(preset: str = "TEST", handshakes: int = 4,
                         registry: Optional["obs.MetricsRegistry"] = None,
                         seed: int = 7) -> "obs.MetricsRegistry":
    """Run the representative workload; return the filled registry."""
    from repro.core.deployment import Deployment   # deferred: heavy import
    from repro.errors import RevokedKeyError

    registry = registry or obs.MetricsRegistry()
    with obs.collecting(registry):
        with registry.span("obs-report.setup", preset=preset):
            deployment = Deployment.build(
                preset=preset, seed=seed,
                groups={"Company X": 4, "University Z": 4},
                users=[("alice", ["Company X"]),
                       ("bob", ["University Z"])],
                routers=["MR-1"])
        router = deployment.routers["MR-1"]
        names = ["alice", "bob"]
        for index in range(max(1, handshakes)):
            user = deployment.users[names[index % len(names)]]
            with registry.span("obs-report.handshake", n=index):
                beacon = router.make_beacon()
                request, pending = user.connect_to_router(beacon)
                confirm, router_session = router.process_request(request)
                session = user.complete_router_handshake(pending, confirm)
            router_session.receive(session.send(b"obs probe %d" % index))
        # One batch through the router's batch path, then a revocation
        # rejection so the reject counters are non-trivial.
        beacons = [router.make_beacon() for _ in range(2)]
        batch = [deployment.users[names[i % 2]]
                 .connect_to_router(beacons[i])[0]
                 for i in range(2)]
        router.process_request_batch(batch)
        index = deployment.users["bob"].credentials["University Z"].index
        deployment.operator.revoke_user_key(index)
        router.refresh_lists()
        try:
            deployment.connect("bob", "MR-1")
        except RevokedKeyError:
            pass
    return registry


def collect_scenario_metrics(routers: int = 2, users: int = 4,
                             seed: int = 11, duration: float = 40.0,
                             telemetry_window: float = 10.0,
                             area_side: float = 600.0):
    """Run a small seeded traced simulation; return the Scenario.

    The default shape (2 routers, 4 users, 600 m side) is the
    acceptance scenario from DESIGN.md: dense enough that several
    users complete the 3-message handshake, small enough to run in
    well under a second.  The returned scenario's ``registry`` holds
    the stitched handshake traces and ``telemetry_jsonl()`` the
    windowed rollups.
    """
    from repro.wmn.scenario import Scenario, ScenarioConfig
    from repro.wmn.topology import TopologyConfig

    grid = 1
    while grid * grid < max(1, routers):
        grid += 1
    config = ScenarioConfig(
        seed=seed,
        topology=TopologyConfig(area_side=area_side, router_grid=grid,
                                router_count=routers, user_count=users,
                                seed=seed),
        tracing=True, telemetry_window=telemetry_window)
    scenario = Scenario(config)
    scenario.run(duration)
    scenario.publish_metrics()
    return scenario


def collect_incident_metrics(seed: int = 101, duration: float = 240.0,
                             telemetry_window: float = 30.0):
    """Run a seeded chaos scenario with health evaluation enabled.

    The workload is a compact version of the CI chaos driver: a
    durable 4-router city under 15% loss where one router is killed
    and restarted and another has its operator channel severed and
    restored.  Returns ``(scenario, injector)`` -- the scenario holds
    the health snapshot and alert history, the injector the
    ground-truth fault log that :func:`~repro.obs.health.
    correlate_incidents` joins against.
    """
    from repro.core.protocols.user_router import RetryPolicy
    from repro.faults import FaultInjector, FaultPlan, RouterFault
    from repro.wmn.scenario import Scenario, ScenarioConfig
    from repro.wmn.topology import TopologyConfig

    scenario = Scenario(ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=800.0, router_grid=2,
                                user_count=6, seed=seed,
                                access_range=600.0),
        group_sizes=(("Company X", 8),),
        beacon_interval=4.0,
        loss_probability=0.15,
        retry_policy=RetryPolicy(initial_timeout=2.0, backoff_factor=2.0,
                                 max_timeout=8.0, max_retries=4,
                                 jitter=0.1),
        durable=True,
        sharded_revocation=True,
        gossip_period=20.0,
        gossip_checkpoints=True,
        telemetry_window=telemetry_window,
        health=True))
    for user in scenario.sim_users.values():
        user.connect_timeout = 60.0
    ids = sorted(scenario.sim_routers)
    injector = FaultInjector(FaultPlan(
        seed=seed,
        router=(RouterFault("kill", at=40.0, router_id=ids[0]),
                RouterFault("restart", at=90.0, router_id=ids[0]),
                RouterFault("sever_channel", at=60.0,
                            router_id=ids[-1]),
                RouterFault("restore_channel", at=150.0,
                            router_id=ids[-1]))))
    injector.arm_scenario(scenario)
    scenario.run(duration)
    scenario.publish_metrics()
    return scenario, injector


# -- causal trace reconstruction ------------------------------------------


def build_traces(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    """Group a snapshot's span records into per-trace structures.

    Returns one dict per trace id, sorted by root start time:
    ``trace_id``, ``spans`` (records sorted by start, then span id),
    ``root`` (the record with no in-trace parent; ties broken by
    earliest start), ``duration`` (the root's), and ``ops`` (per-op
    totals summed over every span in the trace -- by construction of
    the instrument bridge these reproduce the global counters).
    Records that never got a trace id (plain stack spans from
    non-traced code) are skipped.
    """
    by_trace: Dict[str, List[dict]] = {}
    for record in snapshot.get("spans", {}).get("records", ()):
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(str(trace_id), []).append(record)
    traces: List[Dict[str, object]] = []
    for trace_id, records in by_trace.items():
        records.sort(key=lambda r: (float(r["start"]),
                                    str(r.get("span_id") or "")))
        ids = {r.get("span_id") for r in records}
        roots = [r for r in records
                 if r.get("parent_id") is None
                 or r.get("parent_id") not in ids]
        root = roots[0] if roots else records[0]
        ops: Dict[str, int] = {}
        for record in records:
            for op, amount in dict(record.get("ops") or {}).items():
                ops[op] = ops.get(op, 0) + int(amount)
        traces.append({"trace_id": trace_id, "spans": records,
                       "root": root, "duration": float(root["duration"]),
                       "ops": ops})
    traces.sort(key=lambda t: (float(t["root"]["start"]), t["trace_id"]))
    return traces


def top_slowest(traces: Sequence[Dict[str, object]], n: int = 5
                ) -> List[Dict[str, object]]:
    """The ``n`` traces with the longest root duration, slowest first
    (ties broken by trace id for determinism)."""
    ranked = sorted(traces, key=lambda t: (-float(t["duration"]),
                                           str(t["trace_id"])))
    return ranked[:max(0, n)]


def _format_ops(ops: Dict[str, int]) -> str:
    return " ".join(f"{op}={amount}" for op, amount in sorted(ops.items()))


def _span_children(spans: Sequence[dict]) -> Dict[object, List[dict]]:
    """Map parent span id -> children, preserving start order; spans
    whose parent is outside the trace hang off ``None``."""
    ids = {record.get("span_id") for record in spans}
    children: Dict[object, List[dict]] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(record)
    return children


def render_waterfall(traces: Sequence[Dict[str, object]],
                     top: Optional[int] = None) -> str:
    """Text waterfall: one tree per trace, children indented under
    their parent, each line showing the start offset from the trace
    root, the span duration, attrs, and attributed op counts."""
    if top is not None:
        traces = top_slowest(traces, top)
    lines: List[str] = []
    for trace in traces:
        spans: List[dict] = trace["spans"]   # type: ignore[assignment]
        origin = float(trace["root"]["start"])
        ops = _format_ops(trace["ops"])      # type: ignore[arg-type]
        lines.append(f"trace {trace['trace_id']}  "
                     f"spans={len(spans)}  "
                     f"duration={float(trace['duration']):.6f}s"
                     + (f"  ops: {ops}" if ops else ""))
        children = _span_children(spans)

        def walk(record: dict, depth: int) -> None:
            offset = float(record["start"]) - origin
            attrs = dict(record.get("attrs") or {})
            attr_text = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            op_text = _format_ops(dict(record.get("ops") or {}))
            line = (f"  [+{offset:9.6f}s {float(record['duration']):9.6f}s] "
                    + "  " * depth + str(record["name"]))
            if attr_text:
                line += f"  {attr_text}"
            if op_text:
                line += f"  ops: {op_text}"
            lines.append(line)
            for child in children.get(record.get("span_id"), ()):
                if child is not record:
                    walk(child, depth + 1)

        for orphan in children.get(None, ()):
            walk(orphan, 0)
        lines.append("")
    return "\n".join(lines)


def to_folded(traces: Sequence[Dict[str, object]]) -> str:
    """Folded-stack (FlameGraph / speedscope "collapsed") output.

    One ``a;b;c weight`` line per distinct root-to-span path, weight
    in integer microseconds of *self* time (child time excluded).
    Under the sim clock nested stage spans often measure 0 virtual
    seconds; every span still contributes ``max(1, usec)`` so the
    causal structure survives into the flame graph.
    """
    stacks: Dict[str, int] = {}
    for trace in traces:
        spans: List[dict] = trace["spans"]   # type: ignore[assignment]
        children = _span_children(spans)

        def walk(record: dict, prefix: str) -> None:
            path = (f"{prefix};{record['name']}" if prefix
                    else str(record["name"]))
            child_time = 0.0
            for child in children.get(record.get("span_id"), ()):
                if child is record:
                    continue
                child_time += float(child["duration"])
                walk(child, path)
            self_seconds = max(0.0, float(record["duration"]) - child_time)
            weight = max(1, int(self_seconds * 1e6))
            stacks[path] = stacks.get(path, 0) + weight

        for orphan in children.get(None, ()):
            walk(orphan, "")
    return "".join(f"{path} {weight}\n"
                   for path, weight in sorted(stacks.items()))


def render_health(snapshot: Dict[str, object],
                  alerts: Sequence[Dict[str, object]] = ()) -> str:
    """Human-readable ``/health`` judgment plus the alert history
    (the ``obs-report --format health`` output)."""
    lines = [f"status: {snapshot['status']}  "
             f"(t={float(snapshot['t']):.1f}, "     # type: ignore[arg-type]
             f"window {snapshot['window']})"]
    routers: Dict[str, dict] = snapshot["routers"]  # type: ignore[assignment]
    for router_id in sorted(routers):
        entry = routers[router_id]
        reasons = "; ".join(entry["reasons"]) or "-"
        lines.append(f"  {router_id}: {entry['state']:<9} {reasons}")
    mesh = dict(snapshot.get("mesh") or {})
    if mesh.get("reasons"):
        lines.append("  mesh: " + "; ".join(mesh["reasons"]))
    if alerts:
        lines.append("alerts:")
        for event in alerts:
            lines.append(
                f"  [{event['event']:>8}] {event['rule']} "
                f"({event['severity']}) window {event['window']} "
                f"t={float(event['t']):.1f} "       # type: ignore[arg-type]
                f"observed={event['observed']}")
    else:
        lines.append("alerts: none")
    return "\n".join(lines) + "\n"


def render_snapshot(snapshot, fmt: str = "json") -> str:
    """Render an already-collected snapshot in ``fmt``."""
    if fmt == "json":
        return obs.to_json(snapshot)
    if fmt == "prom":
        return obs.to_prometheus(snapshot)
    if fmt == "traces":
        return render_waterfall(build_traces(snapshot))
    if fmt == "folded":
        return to_folded(build_traces(snapshot))
    raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")


def render_report(fmt: str = "json", preset: str = "TEST",
                  handshakes: int = 4, seed: int = 7) -> str:
    """Collect the matching workload's metrics and render them.

    ``health``/``incidents`` run the chaos scenario
    (:func:`collect_incident_metrics`, seeded 101 unless ``seed`` is
    overridden away from the demo default); every other format runs
    the plain demo workload.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown report format {fmt!r}; pick from {FORMATS}")
    if fmt in SCENARIO_FORMATS:
        scenario, injector = collect_incident_metrics(
            seed=101 if seed == 7 else seed)
        if fmt == "health":
            return render_health(scenario.health_snapshot(),
                                 scenario.alert_events())
        return render_incidents(scenario.incidents(injector))
    registry = collect_demo_metrics(preset=preset, handshakes=handshakes,
                                    seed=seed)
    return render_snapshot(registry.snapshot(), fmt)

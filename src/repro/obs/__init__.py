"""Unified runtime observability: metrics, timers, and trace spans.

:mod:`repro.instrument` answers the paper's question -- "how many
abstract operations did this take?"  This package answers the
production question the ROADMAP's north star asks: *where does the
wall-clock time actually go, right now, on this host?*  One
:class:`MetricsRegistry` collects counters, gauges, fixed-bucket
histograms, and lightweight trace spans from every instrumented layer
(groupsig sign/verify stages, the crypto engine's caches, the verifier
pool's chunks, the router/user handshake engines, and the WMN
simulator), and exports them as a JSON snapshot or Prometheus text.

Usage mirrors :func:`repro.instrument.count_operations`::

    from repro import obs

    with obs.collecting() as registry:
        deployment.connect("alice", "MR-1")
    text = obs.to_prometheus(registry.snapshot())

Design rules, in order of importance:

1. **The disabled path is near-free.**  With no registry installed an
   instrumented hot path pays one function call returning ``None`` plus
   one ``is not None`` check per site -- the same discipline as the
   op-counter hooks.  Asserted in ``tests/test_obs.py``.
2. **Snapshots are plain data and mergeable.**  ``snapshot()`` returns
   nested dicts/lists of primitives; :func:`merge_snapshots` and
   :meth:`MetricsRegistry.merge_snapshot` fold snapshots from other
   threads or processes into one, bucket-wise and key-wise, so the
   multi-process verifier pool and the simulator's per-node tallies
   aggregate exactly.
3. **Time is injectable.**  The registry takes any ``Clock``-like
   object (``.now() -> float``) or bare callable; the default is the
   monotonic ``time.perf_counter``.  Simulator code can hand it the
   :class:`~repro.wmn.simclock.SimClock` and histogram virtual time.

Unlike the op counter the active registry is deliberately *global*,
not thread-local: a busy router's worker threads are expected to land
in one registry (every mutation takes the registry's lock).
"""

from repro.obs.export import to_json, to_prometheus
from repro.obs.health import (
    AlertEngine,
    AlertRule,
    HealthMonitor,
    HealthPolicy,
    RouterSignals,
    correlate_incidents,
    default_metro_rules,
    incidents_to_jsonl,
    render_incidents,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    active,
    collecting,
    counter,
    gauge,
    install,
    merge_snapshots,
    observe,
    span,
    timer,
    uninstall,
)
from repro.obs.spans import SpanRecord, TraceContext

__all__ = [
    "AlertEngine",
    "AlertRule",
    "DEFAULT_LATENCY_BUCKETS",
    "HealthMonitor",
    "HealthPolicy",
    "Histogram",
    "MetricsRegistry",
    "RouterSignals",
    "SpanRecord",
    "TraceContext",
    "active",
    "collecting",
    "correlate_incidents",
    "counter",
    "default_metro_rules",
    "gauge",
    "incidents_to_jsonl",
    "install",
    "merge_snapshots",
    "observe",
    "render_incidents",
    "span",
    "timer",
    "to_json",
    "to_prometheus",
    "uninstall",
]

"""Windowed time-series rollups over a :class:`MetricsRegistry`.

Counters and histograms in the registry are cumulative -- perfect for
end-of-run totals, useless for "what did latency do *during* the chaos
window".  A :class:`TelemetryRollup` closes that gap: ``roll(now)``
diffs the registry against the previous roll and appends one bounded
window record holding the per-window counter deltas, gauge levels, and
histogram delta statistics (count, sum, p50/p95/p99 estimated from the
bucket-count deltas).  Driven on the *sim clock* by
:class:`~repro.wmn.scenario.Scenario` (one roll per
``telemetry_window`` virtual seconds), so a seeded run produces a
deterministic, plottable latency/throughput trajectory.

Records are plain dicts; :func:`to_jsonl` / :func:`read_jsonl`
round-trip them as one JSON object per line (the format the CI chaos
job uploads).  Retention is bounded: past ``max_windows`` records the
oldest are discarded and counted in :attr:`TelemetryRollup.dropped`.

Percentiles are *bucket-resolution* estimates: nearest-rank over the
window's bucket-count deltas, reported as the matching bucket's upper
bound (samples beyond the last bound report that last bound).  Good
enough to see a latency regression trend; not a substitute for exact
quantiles.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.obs.registry import MetricsRegistry

#: Quantiles every histogram window reports.
ROLLUP_QUANTILES = (0.5, 0.95, 0.99)


def _quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                           q: float) -> Optional[float]:
    """Nearest-rank quantile from bucket counts; None on empty.

    Samples landing in the implicit overflow bucket (beyond the last
    finite bound) report that last bound -- never ``inf`` or ``None``
    (documented: bucket-resolution estimates, pinned in
    ``tests/test_obs_rollup.py``).
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = min(total, max(1, math.ceil(q * total)))
    seen = 0
    last = len(bounds) - 1
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return float(bounds[min(index, last)])
    return float(bounds[last])


class TelemetryRollup:
    """Per-window deltas of one registry, bounded, JSONL-exportable."""

    def __init__(self, registry: MetricsRegistry, max_windows: int = 512
                 ) -> None:
        self.registry = registry
        self.max_windows = max_windows
        self.dropped = 0
        self._windows: "deque" = deque(maxlen=max_windows)
        self._index = 0
        snap = registry.snapshot()
        self._last_counters: Dict[str, float] = dict(snap["counters"])
        self._last_hist: Dict[str, Dict[str, object]] = dict(
            snap["histograms"])

    def roll(self, now: float) -> Dict[str, object]:
        """Close one window at time ``now`` and append its record.

        Only metrics that *changed* during the window appear in the
        record, so quiet windows stay small.
        """
        snap = self.registry.snapshot()
        counters: Dict[str, float] = {}
        for name, value in snap["counters"].items():
            delta = value - self._last_counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms: Dict[str, Dict[str, object]] = {}
        for name, hist in snap["histograms"].items():
            last = self._last_hist.get(name)
            last_counts = last["counts"] if last is not None \
                else [0] * len(hist["counts"])
            delta_counts = [int(c) - int(p)
                            for c, p in zip(hist["counts"], last_counts)]
            delta_count = sum(delta_counts)
            if delta_count == 0:
                continue
            last_sum = float(last["sum"]) if last is not None else 0.0
            record: Dict[str, object] = {
                "count": delta_count,
                "sum": float(hist["sum"]) - last_sum,
            }
            for q in ROLLUP_QUANTILES:
                record[f"p{int(q * 100)}"] = _quantile_from_buckets(
                    hist["bounds"], delta_counts, q)
            histograms[name] = record
        window = {
            "index": self._index,
            "t": float(now),
            "counters": counters,
            "gauges": dict(snap["gauges"]),
            "histograms": histograms,
        }
        self._index += 1
        if len(self._windows) == self.max_windows:
            self.dropped += 1
        self._windows.append(window)
        self._last_counters = dict(snap["counters"])
        self._last_hist = dict(snap["histograms"])
        return window

    @property
    def next_index(self) -> int:
        """Index the next :meth:`roll` will assign (what health
        evaluation stamps on observations made just before a roll)."""
        return self._index

    def windows(self) -> List[Dict[str, object]]:
        """Retained window records, oldest first."""
        return list(self._windows)


def to_jsonl(windows: Sequence[Dict[str, object]]) -> str:
    """One JSON object per line, key-sorted (diff-friendly artifacts)."""
    return "".join(json.dumps(window, sort_keys=True) + "\n"
                   for window in windows)


def read_jsonl(text: str) -> List[Dict[str, object]]:
    """Inverse of :func:`to_jsonl`; ignores blank lines."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]

"""The metrics registry: counters, gauges, histograms, timers, spans.

See the package docstring for the contract.  Everything here is pure
Python with no imports from higher layers, so any module in the
package may report into the ambient registry.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro import instrument
from repro.obs.spans import SpanLog, TraceContext, _OpenSpan

#: Default histogram bucket upper bounds (seconds).  Geometric-ish
#: 1-2.5-5 ladder from 100 microseconds to 10 seconds: wide enough for
#: a TEST-preset sign (~ms) and an SS512 revocation scan (~100 ms)
#: to land mid-range, cheap enough (17 buckets) to merge constantly.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _as_callable(clock) -> Callable[[], float]:
    """Accept a ``Clock``-like (has ``.now()``), a callable, or None."""
    if clock is None:
        return time.perf_counter
    now = getattr(clock, "now", None)
    if now is not None and callable(now):
        return now
    if callable(clock):
        return clock
    raise TypeError("clock must expose .now() or be callable")


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    (``+Inf``) catches the rest, so ``len(counts) == len(bounds) + 1``
    and the bucket layout is mergeable iff the bounds match.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be sorted and unique")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.sum, "count": self.count,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None}

    def merge(self, snap: Dict[str, object]) -> None:
        if list(snap["bounds"]) != list(self.bounds):
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += int(c)
        self.sum += float(snap["sum"])
        self.count += int(snap["count"])
        if snap.get("min") is not None:
            self.min = min(self.min, float(snap["min"]))
        if snap.get("max") is not None:
            self.max = max(self.max, float(snap["max"]))


class MetricsRegistry:
    """Thread-safe collector for one observation session.

    ``clock`` drives timers and span timestamps: pass a
    :class:`repro.core.clock.Clock` (anything with ``.now()``) or a
    bare callable; ``None`` means wall-clock ``time.perf_counter``.
    """

    def __init__(self, clock=None,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 max_spans: int = 2048, span_id_prefix: str = "") -> None:
        self.clock: Callable[[], float] = _as_callable(clock)
        self.default_buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans = SpanLog(max_spans=max_spans, id_prefix=span_id_prefix)

    # -- updates --------------------------------------------------------

    def counter(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the monotonically increasing ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the last-write-wins level ``name``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Record one sample into the histogram ``name``.

        The bucket layout is fixed at the histogram's first
        observation; a later conflicting ``buckets`` argument is
        ignored (layout churn would break merging).
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(buckets or self.default_buckets)
                self._histograms[name] = histogram
            histogram.observe(value)

    @contextmanager
    def timer(self, name: str,
              buckets: Optional[Sequence[float]] = None):
        """Time a ``with`` block into the histogram ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            self.observe(name, self.clock() - start, buckets=buckets)

    def span(self, name: str, context: Optional[TraceContext] = None,
             trace_id: Optional[str] = None, **attrs: object) -> _OpenSpan:
        """Open a trace span (context manager) named ``name``.

        With ``context`` the span parents under that (possibly remote)
        span instead of this thread's innermost open span; with a bare
        ``trace_id`` a root-less span joins an existing trace.
        """
        return self._spans.span(self.clock, name, context=context,
                                trace_id=trace_id, **attrs)

    def start_span(self, name: str, context: Optional[TraceContext] = None,
                   trace_id: Optional[str] = None,
                   **attrs: object) -> _OpenSpan:
        """Open an *event-driven* span: started now, finished later via
        ``.finish()``, never on the thread stack (children must use its
        ``.context``).  For regions that open in one callback and close
        in another, e.g. a simulated handshake."""
        return self._spans.span(self.clock, name, context=context,
                                trace_id=trace_id, **attrs).start()

    # -- reads ----------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram_snapshot(self, name: str) -> Optional[Dict[str, object]]:
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.snapshot() if histogram else None

    def spans(self):
        """Finished :class:`~repro.obs.spans.SpanRecord` list, oldest first."""
        return self._spans.records()

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of everything collected so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
                "spans": self._spans.snapshot(),
            }

    # -- merging --------------------------------------------------------

    def merge_snapshot(self, snap: Dict[str, object],
                       reparent: Optional[TraceContext] = None) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges last-write-win, histograms merge
        bucket-wise (the layouts must match), spans concatenate under
        the bound.  This is how per-process and per-node observations
        aggregate into one report.  ``reparent`` adopts orphan span
        records (no trace identity) under the given context -- used to
        stitch worker-process spans beneath the submitting trace.
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snap.get("gauges", {}))
            for name, histogram_snap in snap.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = Histogram(histogram_snap["bounds"])
                    self._histograms[name] = histogram
                histogram.merge(histogram_snap)
        self._spans.merge_snapshot(snap.get("spans", {}), reparent=reparent)

    def merge_spans(self, span_snap: Dict[str, object],
                    reparent: Optional[TraceContext] = None) -> None:
        """Merge just a span-log snapshot (``{"records": ..., "dropped":
        ...}``), optionally re-parenting orphans -- the shape shipped
        back by verifier-pool workers."""
        self._spans.merge_snapshot(span_snap, reparent=reparent)


def merge_snapshots(snaps: Iterable[Dict[str, object]],
                    clock=None) -> MetricsRegistry:
    """Build one registry holding the union of ``snaps``."""
    registry = MetricsRegistry(clock=clock)
    for snap in snaps:
        registry.merge_snapshot(snap)
    return registry


# ---------------------------------------------------------------------------
# The ambient registry (the hot-path hook surface)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` (collection disabled).

    This is THE hot-path hook: instrumented code does
    ``reg = obs.active()`` once, then guards every further touch with
    ``if reg is not None`` -- so the disabled path costs one call and
    one comparison per instrumented site.
    """
    return _ACTIVE


def install(registry: Optional[MetricsRegistry]
            ) -> Optional[MetricsRegistry]:
    """Make ``registry`` ambient; returns the previous one (restorable).

    Installing also points the :mod:`repro.instrument` span sink at the
    registry's span log, so op-count events attribute to the innermost
    open span (the instrument->span bridge); uninstalling clears it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    instrument.set_span_sink(
        registry._spans.note_op if registry is not None else None)
    return previous


def uninstall() -> None:
    """Disable collection (idempotent)."""
    install(None)


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None, clock=None):
    """Install a registry for the dynamic extent; yields it.

    With no argument a fresh :class:`MetricsRegistry` is created.  The
    previously installed registry (if any) is restored on exit, so
    scopes nest the way :func:`repro.instrument.count_operations` does.
    """
    registry = registry if registry is not None \
        else MetricsRegistry(clock=clock)
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)


# -- no-op-safe conveniences (for warm paths, not inner loops) ----------

class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def counter(name: str, amount: float = 1) -> None:
    """Ambient counter add; no-op when collection is disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name, amount)


def gauge(name: str, value: float) -> None:
    """Ambient gauge set; no-op when collection is disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name, value)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    """Ambient histogram sample; no-op when collection is disabled."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, buckets=buckets)


def span(name: str, context: Optional[TraceContext] = None,
         **attrs: object):
    """Ambient trace span; a shared do-nothing manager when disabled."""
    registry = _ACTIVE
    if registry is None:
        return _NULL_SPAN
    return registry.span(name, context=context, **attrs)


@contextmanager
def timer(name: str):
    """Ambient timer; near-free when disabled (no clock reads)."""
    registry = _ACTIVE
    if registry is None:
        yield
        return
    start = registry.clock()
    try:
        yield
    finally:
        registry.observe(name, registry.clock() - start)

"""``python -m repro`` -- a 30-second guided demo of PEACE.

Runs the full lifecycle on the fast TEST parameters: setup, anonymous
handshake, session data, audit, law-authority trace, and revocation.
Pass a preset name to run on stronger parameters::

    python -m repro            # TEST parameters (instant)
    python -m repro SS512      # ~80-bit security (a few seconds)

The ``obs-report`` subcommand instead runs a short instrumented
workload and dumps the collected metrics::

    python -m repro obs-report                    # JSON snapshot
    python -m repro obs-report --format prom      # Prometheus text
    python -m repro obs-report --preset SS512 --handshakes 8
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import RevokedKeyError


def _obs_report(argv) -> int:
    from repro.obs.report import FORMATS, render_report

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-report",
        description="Run a short instrumented workload and print its "
                    "metrics snapshot.")
    parser.add_argument("--format", choices=FORMATS, default="json")
    parser.add_argument("--preset", default="TEST")
    parser.add_argument("--handshakes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    print(render_report(fmt=args.format, preset=args.preset,
                        handshakes=args.handshakes, seed=args.seed))
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "obs-report":
        return _obs_report(argv[1:])
    preset = argv[0] if argv else "TEST"
    print(f"PEACE demo on the {preset} parameter set")
    start = time.perf_counter()

    deployment = Deployment.build(
        preset=preset, seed=1,
        groups={"Company X": 4, "University Z": 4},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1"])
    print(f"  [setup]  NO + TTP + 2 GMs + 2 users + 1 router "
          f"({time.perf_counter() - start:.1f}s)")

    user_session, router_session = deployment.connect("alice", "MR-1")
    print(f"  [auth]   anonymous 3-way handshake, session "
          f"{user_session.session_id.hex()[:12]}")
    router_session.receive(user_session.send(b"hello"))
    print("  [data]   MAC-authenticated packet delivered")

    audit = audit_by_session(deployment.operator, deployment.network_log,
                             user_session.session_id)
    print(f"  [audit]  NO sees only: {audit.describe()}")
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        user_session.session_id)
    print(f"  [trace]  law authority (NO+GM jointly): "
          f"{trace.identity.name}")

    index = deployment.users["bob"].credentials["University Z"].index
    deployment.operator.revoke_user_key(index)
    deployment.routers["MR-1"].refresh_lists()
    try:
        deployment.connect("bob", "MR-1")
        print("  [revoke] ERROR: revoked user connected")
        return 1
    except RevokedKeyError:
        print("  [revoke] bob's revoked key rejected network-wide")
    print(f"total {time.perf_counter() - start:.1f}s -- see examples/ "
          "and EXPERIMENTS.md for more")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

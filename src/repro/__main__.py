"""``python -m repro`` -- a 30-second guided demo of PEACE.

Runs the full lifecycle on the fast TEST parameters: setup, anonymous
handshake, session data, audit, law-authority trace, and revocation.
Pass a preset name to run on stronger parameters::

    python -m repro            # TEST parameters (instant)
    python -m repro SS512      # ~80-bit security (a few seconds)

The ``obs-report`` subcommand instead runs a short instrumented
workload and dumps the collected metrics::

    python -m repro obs-report                    # JSON snapshot
    python -m repro obs-report --format prom      # Prometheus text
    python -m repro obs-report --preset SS512 --handshakes 8

With ``--workload scenario`` it runs a seeded traced simulation and
can render the stitched causal handshake traces::

    python -m repro obs-report --workload scenario --format traces
    python -m repro obs-report --workload scenario --format traces --top 3
    python -m repro obs-report --workload scenario --format folded \
        --rollup-out rollup.jsonl --folded-out stacks.folded

The ``health`` and ``incidents`` formats run a seeded chaos scenario
(router kill/restart + operator-channel sever/restore) with the health
observatory enabled and print the ``/health`` judgment or the
fault-correlated incident timelines with MTTD/MTTR::

    python -m repro obs-report --format health
    python -m repro obs-report --format incidents --seed 202 \
        --incidents-out incidents.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import RevokedKeyError


def _obs_report(argv) -> int:
    from repro.obs import report as obs_report

    parser = argparse.ArgumentParser(
        prog="python -m repro obs-report",
        description="Run a short instrumented workload and print its "
                    "metrics snapshot, causal traces, or folded stacks.")
    parser.add_argument("--format", choices=obs_report.FORMATS,
                        default="json")
    parser.add_argument("--workload", choices=("demo", "scenario"),
                        default="demo",
                        help="demo: direct API handshakes; scenario: "
                             "seeded traced WMN simulation")
    parser.add_argument("--preset", default="TEST")
    parser.add_argument("--handshakes", type=int, default=4)
    parser.add_argument("--seed", type=int, default=None,
                        help="default: 7 for demo, 11 for scenario, "
                             "101 for health/incidents")
    parser.add_argument("--duration", type=float, default=None,
                        help="scenario: virtual seconds to simulate "
                             "(default: 40, or 240 for "
                             "health/incidents)")
    parser.add_argument("--routers", type=int, default=2)
    parser.add_argument("--users", type=int, default=4)
    parser.add_argument("--window", type=float, default=None,
                        help="scenario: telemetry rollup window in "
                             "virtual seconds (default: 10, or 30 for "
                             "health/incidents)")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="traces format: only the N slowest traces")
    parser.add_argument("--rollup-out", metavar="PATH",
                        help="scenario: write telemetry rollup JSONL")
    parser.add_argument("--folded-out", metavar="PATH",
                        help="also write folded stacks to PATH")
    parser.add_argument("--incidents-out", metavar="PATH",
                        help="health/incidents: write incident "
                             "timelines as JSONL")
    args = parser.parse_args(argv)

    if args.format in obs_report.SCENARIO_FORMATS:
        scenario, injector = obs_report.collect_incident_metrics(
            seed=101 if args.seed is None else args.seed,
            duration=240.0 if args.duration is None else args.duration,
            telemetry_window=30.0 if args.window is None
            else args.window)
        if args.rollup_out:
            with open(args.rollup_out, "w") as handle:
                handle.write(scenario.telemetry_jsonl())
        if args.incidents_out:
            with open(args.incidents_out, "w") as handle:
                handle.write(scenario.incidents_jsonl(injector))
        if args.format == "health":
            print(obs_report.render_health(scenario.health_snapshot(),
                                           scenario.alert_events()),
                  end="")
        else:
            print(obs_report.render_incidents(
                scenario.incidents(injector)), end="")
        return 0
    if args.incidents_out:
        parser.error("--incidents-out needs --format health|incidents")

    if args.workload == "scenario":
        scenario = obs_report.collect_scenario_metrics(
            routers=args.routers, users=args.users,
            seed=11 if args.seed is None else args.seed,
            duration=40.0 if args.duration is None else args.duration,
            telemetry_window=10.0 if args.window is None
            else args.window)
        snapshot = scenario.registry.snapshot()
        if args.rollup_out:
            with open(args.rollup_out, "w") as handle:
                handle.write(scenario.telemetry_jsonl())
    else:
        registry = obs_report.collect_demo_metrics(
            preset=args.preset, handshakes=args.handshakes,
            seed=7 if args.seed is None else args.seed)
        snapshot = registry.snapshot()
        if args.rollup_out:
            parser.error("--rollup-out needs --workload scenario")

    if args.folded_out:
        with open(args.folded_out, "w") as handle:
            handle.write(obs_report.to_folded(
                obs_report.build_traces(snapshot)))
    if args.format == "traces" and args.top is not None:
        print(obs_report.render_waterfall(
            obs_report.build_traces(snapshot), top=args.top))
    else:
        print(obs_report.render_snapshot(snapshot, args.format))
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "obs-report":
        return _obs_report(argv[1:])
    preset = argv[0] if argv else "TEST"
    print(f"PEACE demo on the {preset} parameter set")
    start = time.perf_counter()

    deployment = Deployment.build(
        preset=preset, seed=1,
        groups={"Company X": 4, "University Z": 4},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1"])
    print(f"  [setup]  NO + TTP + 2 GMs + 2 users + 1 router "
          f"({time.perf_counter() - start:.1f}s)")

    user_session, router_session = deployment.connect("alice", "MR-1")
    print(f"  [auth]   anonymous 3-way handshake, session "
          f"{user_session.session_id.hex()[:12]}")
    router_session.receive(user_session.send(b"hello"))
    print("  [data]   MAC-authenticated packet delivered")

    audit = audit_by_session(deployment.operator, deployment.network_log,
                             user_session.session_id)
    print(f"  [audit]  NO sees only: {audit.describe()}")
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        user_session.session_id)
    print(f"  [trace]  law authority (NO+GM jointly): "
          f"{trace.identity.name}")

    index = deployment.users["bob"].credentials["University Z"].index
    deployment.operator.revoke_user_key(index)
    deployment.routers["MR-1"].refresh_lists()
    try:
        deployment.connect("bob", "MR-1")
        print("  [revoke] ERROR: revoked user connected")
        return 1
    except RevokedKeyError:
        print("  [revoke] bob's revoked key rejected network-wide")
    print(f"total {time.perf_counter() - start:.1f}s -- see examples/ "
          "and EXPERIMENTS.md for more")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro`` -- a 30-second guided demo of PEACE.

Runs the full lifecycle on the fast TEST parameters: setup, anonymous
handshake, session data, audit, law-authority trace, and revocation.
Pass a preset name to run on stronger parameters::

    python -m repro            # TEST parameters (instant)
    python -m repro SS512      # ~80-bit security (a few seconds)
"""

from __future__ import annotations

import sys
import time

from repro import Deployment
from repro.core.audit import audit_by_session
from repro.errors import RevokedKeyError


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    preset = argv[0] if argv else "TEST"
    print(f"PEACE demo on the {preset} parameter set")
    start = time.perf_counter()

    deployment = Deployment.build(
        preset=preset, seed=1,
        groups={"Company X": 4, "University Z": 4},
        users=[("alice", ["Company X"]), ("bob", ["University Z"])],
        routers=["MR-1"])
    print(f"  [setup]  NO + TTP + 2 GMs + 2 users + 1 router "
          f"({time.perf_counter() - start:.1f}s)")

    user_session, router_session = deployment.connect("alice", "MR-1")
    print(f"  [auth]   anonymous 3-way handshake, session "
          f"{user_session.session_id.hex()[:12]}")
    router_session.receive(user_session.send(b"hello"))
    print("  [data]   MAC-authenticated packet delivered")

    audit = audit_by_session(deployment.operator, deployment.network_log,
                             user_session.session_id)
    print(f"  [audit]  NO sees only: {audit.describe()}")
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        user_session.session_id)
    print(f"  [trace]  law authority (NO+GM jointly): "
          f"{trace.identity.name}")

    index = deployment.users["bob"].credentials["University Z"].index
    deployment.operator.revoke_user_key(index)
    deployment.routers["MR-1"].refresh_lists()
    try:
        deployment.connect("bob", "MR-1")
        print("  [revoke] ERROR: revoked user connected")
        return 1
    except RevokedKeyError:
        print("  [revoke] bob's revoked key rejected network-wide")
    print(f"total {time.perf_counter() - start:.1f}s -- see examples/ "
          "and EXPERIMENTS.md for more")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Pure-Python AES (FIPS 197) block cipher with CTR mode.

Only encryption of single blocks is required -- CTR mode turns the block
cipher into a stream cipher, and decryption is the same keystream XOR.
Key sizes 128/192/256 are supported; the S-box is generated at import
time from the AES finite-field definition rather than pasted as a magic
table, which doubles as a self-check of the field arithmetic.

This implementation favours clarity over speed and is NOT constant-time;
it exists because the offline environment has no cryptography package.
Performance is adequate for the simulator's session traffic.
"""

from __future__ import annotations

from typing import List

from repro import instrument
from repro.errors import ParameterError

_NB = 4  # state columns (fixed by FIPS 197)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial 0x11B."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (schoolbook)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    """Derive the S-box: multiplicative inverse + affine transform."""
    # Build inverses via exponentiation tables on generator 3.
    exp = [0] * 512
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    for i in range(255, 512):
        exp[i] = exp[i - 255]
    sbox = [0] * 256
    for byte in range(256):
        inv = 0 if byte == 0 else exp[255 - log[byte]]
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit) ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        sbox[byte] = transformed
    return sbox


_SBOX = _build_sbox()
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


class AES:
    """AES block cipher bound to a key; exposes ECB single-block and CTR."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ParameterError("AES key must be 16, 24, or 32 bytes")
        self._nk = len(key) // 4
        self._nr = self._nk + 6
        self._round_keys = self._expand_key(key)

    # -- key schedule ----------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        words: List[List[int]] = [list(key[4 * i:4 * i + 4])
                                  for i in range(self._nk)]
        for i in range(self._nk, _NB * (self._nr + 1)):
            temp = list(words[i - 1])
            if i % self._nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // self._nk - 1]
            elif self._nk > 6 and i % self._nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - self._nk][j] ^ temp[j] for j in range(4)])
        return words

    # -- block encryption ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (AES forward cipher)."""
        if len(block) != 16:
            raise ParameterError("AES block must be 16 bytes")
        instrument.note("aes_block")
        state = [list(block[i::4]) for i in range(4)]  # column-major
        self._add_round_key(state, 0)
        for round_index in range(1, self._nr):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, round_index)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._nr)
        return bytes(state[row][col] for col in range(4) for row in range(4))

    def _add_round_key(self, state, round_index: int) -> None:
        words = self._round_keys[4 * round_index:4 * round_index + 4]
        for col in range(4):
            for row in range(4):
                state[row][col] ^= words[col][row]

    @staticmethod
    def _sub_bytes(state) -> None:
        for row in state:
            for col in range(4):
                row[col] = _SBOX[row[col]]

    @staticmethod
    def _shift_rows(state) -> None:
        for row in range(1, 4):
            state[row] = state[row][row:] + state[row][:row]

    @staticmethod
    def _mix_columns(state) -> None:
        for col in range(4):
            a = [state[row][col] for row in range(4)]
            state[0][col] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
            state[1][col] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
            state[2][col] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
            state[3][col] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)

    # -- CTR mode --------------------------------------------------------

    def ctr_keystream(self, nonce: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes for a 16-byte initial counter."""
        if len(nonce) != 16:
            raise ParameterError("CTR nonce/counter block must be 16 bytes")
        counter = int.from_bytes(nonce, "big")
        out = bytearray()
        while len(out) < length:
            out += self.encrypt_block(counter.to_bytes(16, "big"))
            counter = (counter + 1) % (1 << 128)
        return bytes(out[:length])

    def ctr_xor(self, nonce: bytes, data: bytes) -> bytes:
        """CTR encryption/decryption (self-inverse)."""
        stream = self.ctr_keystream(nonce, len(data))
        return bytes(x ^ y for x, y in zip(data, stream))

"""HKDF (RFC 5869) and PEACE session-key derivation.

The user-router and user-user protocols agree on a Diffie-Hellman group
element ``K = g^(r_R * r_j)``; this module turns that element into the
directional encryption and MAC keys of a data session.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict

_HASH_LEN = 32


def hkdf(ikm: bytes, length: int, salt: bytes = b"",
         info: bytes = b"") -> bytes:
    """HKDF-SHA256 extract-and-expand."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    prk = hmac.new(salt or b"\x00" * _HASH_LEN, ikm, hashlib.sha256).digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac.new(prk, block + info + bytes([counter]),
                         hashlib.sha256).digest()
        okm += block
        counter += 1
    return okm[:length]


def derive_session_keys(shared_point: bytes, session_id: bytes) -> Dict[str, bytes]:
    """Derive the four session keys from the DH shared element.

    Returns enc/mac keys for each direction; the session identifier
    (the pair of fresh DH public values, per the paper) salts the
    derivation so re-used randomness can never collide across sessions.
    """
    okm = hkdf(shared_point, 4 * 16 + 2 * 32, salt=session_id,
               info=b"repro/peace/session")
    return {
        "enc_i2r": okm[0:16],
        "enc_r2i": okm[16:32],
        "mac_i2r": okm[32:64],
        "mac_r2i": okm[64:96],
        "aead": okm[96:96 + 32],
    }

"""Symmetric cryptography substrate.

Pure-Python AES (with CTR mode), an encrypt-then-MAC AEAD built from
AES-CTR + HMAC-SHA256, an HKDF key-derivation function, and the
Juels-Brainard client puzzles used by PEACE's DoS defense.
"""

from repro.crypto.aes import AES
from repro.crypto.aead import AeadKey, seal, open_sealed
from repro.crypto.kdf import hkdf, derive_session_keys
from repro.crypto.puzzles import Puzzle, PuzzleSolution, solve_puzzle

__all__ = [
    "AES",
    "AeadKey",
    "Puzzle",
    "PuzzleSolution",
    "derive_session_keys",
    "hkdf",
    "open_sealed",
    "seal",
    "solve_puzzle",
]

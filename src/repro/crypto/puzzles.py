"""Juels-Brainard client puzzles (the paper's DoS countermeasure, V.A).

When a mesh router suspects a connection-depletion attack it attaches a
puzzle to its beacon (M.1); users must attach a solution to their access
request (M.2) before the router spends pairing operations on signature
verification.  Solving requires a brute-force search over a
``difficulty_bits``-bit space on average; verification is one hash.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.errors import PuzzleError

_DOMAIN = b"repro/peace/puzzle"


@dataclass(frozen=True)
class Puzzle:
    """A puzzle challenge as broadcast by a mesh router."""

    server_nonce: bytes
    difficulty_bits: int

    def encode(self) -> bytes:
        return bytes([self.difficulty_bits]) + self.server_nonce

    @classmethod
    def decode(cls, data: bytes) -> "Puzzle":
        if len(data) < 2:
            raise PuzzleError("puzzle encoding too short")
        return cls(server_nonce=data[1:], difficulty_bits=data[0])

    @classmethod
    def fresh(cls, difficulty_bits: int) -> "Puzzle":
        if not 0 <= difficulty_bits <= 40:
            raise PuzzleError("unreasonable puzzle difficulty")
        return cls(secrets.token_bytes(16), difficulty_bits)


@dataclass(frozen=True)
class PuzzleSolution:
    """A claimed solution, bound to the requester's first message."""

    counter: int

    def encode(self) -> bytes:
        return self.counter.to_bytes(8, "big")

    @classmethod
    def decode(cls, data: bytes) -> "PuzzleSolution":
        if len(data) != 8:
            raise PuzzleError("puzzle solution must be 8 bytes")
        return cls(int.from_bytes(data, "big"))


def _digest(puzzle: Puzzle, binding: bytes, counter: int) -> int:
    h = hashlib.sha256()
    h.update(_DOMAIN)
    h.update(puzzle.server_nonce)
    h.update(binding)
    h.update(counter.to_bytes(8, "big"))
    return int.from_bytes(h.digest(), "big")


def _meets_difficulty(value: int, bits: int) -> bool:
    return value >> (256 - bits) == 0 if bits else True


def solve_puzzle(puzzle: Puzzle, binding: bytes,
                 max_attempts: int = 1 << 34) -> PuzzleSolution:
    """Brute-force a solution; ``binding`` ties it to the client request.

    Expected work is ``2^difficulty_bits`` hash evaluations.  Raises
    :class:`PuzzleError` if ``max_attempts`` is exhausted (only plausible
    when the caller caps attempts for simulation purposes).
    """
    for counter in range(max_attempts):
        if _meets_difficulty(_digest(puzzle, binding, counter),
                             puzzle.difficulty_bits):
            return PuzzleSolution(counter)
    raise PuzzleError("puzzle attempts exhausted")


def verify_solution(puzzle: Puzzle, binding: bytes,
                    solution: PuzzleSolution) -> bool:
    """Single-hash verification of a claimed solution."""
    return _meets_difficulty(_digest(puzzle, binding, solution.counter),
                             puzzle.difficulty_bits)


def expected_attempts(difficulty_bits: int) -> int:
    """Average brute-force attempts for a given difficulty."""
    return 1 << difficulty_bits

"""Authenticated encryption: AES-128-CTR + HMAC-SHA256, encrypt-then-MAC.

This is the ``E_K(.)`` of the paper's messages (M.3), (M-tilde.3) and of
all session data traffic.  The 32-byte AEAD key is split into a cipher
key and a MAC key by HKDF; the MAC covers nonce, associated data, and
ciphertext, with unambiguous length framing.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro import instrument
from repro.crypto.aes import AES
from repro.crypto.kdf import hkdf
from repro.errors import SessionError

NONCE_BYTES = 16
TAG_BYTES = 16  # truncated HMAC-SHA256


class AeadKey:
    """A bound AEAD key offering ``seal`` / ``open``."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise SessionError("AEAD key must be 32 bytes")
        okm = hkdf(key, 16 + 32, info=b"repro/peace/aead-split")
        self._aes = AES(okm[:16])
        self._mac_key = okm[16:]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        instrument.note("mac")
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()[:TAG_BYTES]

    def seal(self, plaintext: bytes, aad: bytes = b"",
             nonce: bytes = None) -> bytes:
        """Encrypt and authenticate; returns nonce || ciphertext || tag."""
        instrument.note("sym_encrypt")
        nonce = nonce if nonce is not None else secrets.token_bytes(NONCE_BYTES)
        if len(nonce) != NONCE_BYTES:
            raise SessionError("AEAD nonce must be 16 bytes")
        ciphertext = self._aes.ctr_xor(nonce, plaintext)
        return nonce + ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`SessionError` on any forgery."""
        instrument.note("sym_decrypt")
        if len(sealed) < NONCE_BYTES + TAG_BYTES:
            raise SessionError("sealed blob too short")
        nonce = sealed[:NONCE_BYTES]
        ciphertext = sealed[NONCE_BYTES:-TAG_BYTES]
        tag = sealed[-TAG_BYTES:]
        expected = self._tag(nonce, aad, ciphertext)
        if not hmac.compare_digest(tag, expected):
            raise SessionError("AEAD tag mismatch")
        return self._aes.ctr_xor(nonce, ciphertext)


def seal(key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """One-shot convenience wrapper around :class:`AeadKey`."""
    return AeadKey(key).seal(plaintext, aad)


def open_sealed(key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """One-shot convenience wrapper around :class:`AeadKey`."""
    return AeadKey(key).open(sealed, aad)

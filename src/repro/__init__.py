"""PEACE: a Privacy-Enhanced yet Accountable seCurity framEwork for
metropolitan wireless mesh networks.

A full reproduction of Ren & Lou (ICDCS 2008), built from scratch in
pure Python: a Type-1 bilinear pairing substrate, the paper's variation
of the Boneh-Shacham short group signature with verifier-local
revocation, the five system entities (network operator, TTP, group
managers, users, mesh routers), the three-way authentication / key
agreement protocols, the audit and law-authority tracing machinery,
and a discrete-event WMN simulator with adversary models that turns the
paper's analytic evaluation into measurable experiments.

Quickstart::

    from repro import Deployment

    deployment = Deployment.build(
        preset="TEST", seed=7,
        groups={"Company X": 8},
        users=[("alice", ["Company X"])],
        routers=["MR-1"])
    user_session, router_session = deployment.connect("alice", "MR-1")
    packet = user_session.send(b"hello metropolitan mesh")
    assert router_session.receive(packet) == b"hello metropolitan mesh"

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro import errors
from repro.core.audit import LawAuthority, NetworkLog, audit_by_session
from repro.core.deployment import Deployment
from repro.core.group_manager import GroupManager
from repro.core.groupsig import (
    GroupPrivateKey,
    GroupPublicKey,
    GroupSignature,
    RevocationToken,
    sign,
    verify,
)
from repro.core.identity import RoleAttribute, UserIdentity
from repro.core.operator_entity import NetworkOperator
from repro.core.router import MeshRouter
from repro.core.ttp import TrustedThirdParty
from repro.core.user import NetworkUser
from repro.core.wallet import open_wallet, seal_wallet
from repro.pairing import PairingGroup

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "GroupManager",
    "GroupPrivateKey",
    "GroupPublicKey",
    "GroupSignature",
    "LawAuthority",
    "MeshRouter",
    "NetworkLog",
    "NetworkOperator",
    "NetworkUser",
    "PairingGroup",
    "RevocationToken",
    "RoleAttribute",
    "TrustedThirdParty",
    "UserIdentity",
    "audit_by_session",
    "errors",
    "open_wallet",
    "seal_wallet",
    "sign",
    "verify",
    "__version__",
]

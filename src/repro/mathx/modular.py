"""Modular arithmetic helpers.

Python's builtin ``pow`` covers modular exponentiation and (since 3.8)
modular inversion; this module adds the handful of operations the pairing
and signature code needs on top: square roots modulo ``p = 3 (mod 4)``,
Legendre / Jacobi symbols, and a two-modulus CRT used by RSA signing.
"""

from __future__ import annotations

from repro.errors import ParameterError


def inv_mod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` when the inverse does not exist, with a
    message naming both operands (``ValueError`` from builtin ``pow`` is
    translated so callers only deal with the package hierarchy).
    """
    try:
        return pow(a, -1, m)
    except ValueError as exc:
        raise ParameterError(f"{a} is not invertible modulo {m}") from exc


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol (a|p) in {-1, 0, 1} for an odd prime p."""
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return -1 if result == p - 1 else 1


def jacobi_symbol(a: int, n: int) -> int:
    """Return the Jacobi symbol (a|n) for odd ``n > 0``.

    Generalizes the Legendre symbol to composite moduli; used by the
    primality tests and by parameter sanity checks.
    """
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol requires a positive odd modulus")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod_p34(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo a prime ``p = 3 (mod 4)``.

    For such primes the root is ``a^((p+1)/4) mod p``; the supersingular
    pairing curves in this package always choose ``p = 3 (mod 4)`` so the
    general Tonelli-Shanks algorithm is unnecessary.

    Raises :class:`ParameterError` when ``a`` is not a quadratic residue.
    """
    if p % 4 != 3:
        raise ParameterError("sqrt_mod_p34 requires p = 3 (mod 4)")
    a %= p
    root = pow(a, (p + 1) // 4, p)
    if root * root % p != a:
        raise ParameterError("value is not a quadratic residue")
    return root


def wnaf_digits(scalar: int, width: int) -> "list[int]":
    """Width-``w`` non-adjacent form of a non-negative scalar.

    Returns little-endian digits, each either zero or odd with
    ``|digit| < 2^(width-1)``; at most one of any ``width`` consecutive
    digits is non-zero.  ``sum(d * 2^i) == scalar`` exactly.  Used by
    the interleaved multi-scalar multiplication and the unitary GT
    exponentiation in :mod:`repro.pairing`.
    """
    if scalar < 0:
        raise ParameterError("wNAF recoding requires a non-negative scalar")
    if width < 2:
        raise ParameterError("wNAF width must be at least 2")
    modulus = 1 << width
    half = modulus >> 1
    digits = []
    while scalar:
        if scalar & 1:
            digit = scalar & (modulus - 1)
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def signed_window_digits(scalar: int, width: int) -> "list[int]":
    """Signed radix-``2^width`` decomposition of a non-negative scalar.

    Returns little-endian digits in ``[-2^(width-1), 2^(width-1) - 1]``
    with ``sum(d_j * 2^(width*j)) == scalar``.  Unlike wNAF there is one
    digit per window position, which is what a fixed-base precomputation
    table indexes by; the signed range halves the table (negative digits
    reuse the positive entries via point negation).
    """
    if scalar < 0:
        raise ParameterError("signed recoding requires a non-negative scalar")
    if width < 2:
        raise ParameterError("window width must be at least 2")
    modulus = 1 << width
    half = modulus >> 1
    digits = []
    while scalar:
        digit = scalar & (modulus - 1)
        if digit >= half:
            digit -= modulus
        scalar = (scalar - digit) >> width
        digits.append(digit)
    return digits


def batch_inverse(values: "list[int]", m: int) -> "list[int]":
    """Invert many values modulo ``m`` with one modular exponentiation.

    Montgomery's trick: multiply the values into a running prefix
    product, invert the total once, then peel the individual inverses
    off backwards -- ``3*(n-1)`` multiplications plus a single ``pow``
    instead of ``n`` of them.  The pairing fast paths batch hundreds of
    slope denominators through this.

    Raises :class:`ParameterError` when any value is not invertible
    (the failing batch is reported as a whole; callers that need to
    localize a zero should pre-filter).
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i in range(n):
        acc = acc * values[i] % m
        prefix[i] = acc
    try:
        inv = pow(acc, -1, m)
    except ValueError as exc:
        raise ParameterError(
            "batch_inverse: some value is not invertible") from exc
    out = [0] * n
    for i in range(n - 1, 0, -1):
        out[i] = prefix[i - 1] * inv % m
        inv = inv * values[i] % m
    out[0] = inv
    return out


def crt_pair(r_p: int, p: int, r_q: int, q: int) -> int:
    """Combine residues ``r_p mod p`` and ``r_q mod q`` via the CRT.

    ``p`` and ``q`` must be coprime.  Returns the unique value in
    ``[0, p*q)`` congruent to both residues; this is the classic RSA-CRT
    speedup used by :mod:`repro.sig.rsa`.
    """
    q_inv = inv_mod(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return (r_q + h * q) % (p * q)

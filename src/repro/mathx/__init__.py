"""Number-theoretic substrate used by every cryptographic module.

This package is dependency-free and intentionally small: modular
arithmetic helpers, probabilistic primality testing / prime generation,
and canonical integer <-> byte-string codecs.
"""

from repro.mathx.encoding import (
    bytes_to_int,
    byte_length,
    i2osp,
    int_to_bytes,
    os2ip,
)
from repro.mathx.modular import (
    batch_inverse,
    crt_pair,
    inv_mod,
    jacobi_symbol,
    legendre_symbol,
    signed_window_digits,
    sqrt_mod_p34,
    wnaf_digits,
)
from repro.mathx.primes import (
    is_probable_prime,
    next_prime,
    random_prime,
    small_factors,
)

__all__ = [
    "batch_inverse",
    "byte_length",
    "bytes_to_int",
    "crt_pair",
    "i2osp",
    "int_to_bytes",
    "inv_mod",
    "is_probable_prime",
    "jacobi_symbol",
    "legendre_symbol",
    "next_prime",
    "os2ip",
    "random_prime",
    "signed_window_digits",
    "small_factors",
    "sqrt_mod_p34",
    "wnaf_digits",
]

"""Probabilistic primality testing and prime generation.

Miller-Rabin with a deterministic small-prime pre-filter.  The witness
count defaults to 40 rounds, which gives an error probability below
2^-80 for random candidates -- more than adequate for the key sizes in
this package.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

_SMALL_PRIMES: List[int] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def small_factors(n: int, bound: int = 10_000) -> List[int]:
    """Return the prime factors of ``n`` below ``bound`` (with multiplicity).

    Used by parameter validation to confirm cofactor structure; not a
    general-purpose factoring routine.
    """
    factors: List[int] = []
    candidate = 2
    while candidate < bound and candidate * candidate <= n:
        while n % candidate == 0:
            factors.append(candidate)
            n //= candidate
        candidate += 1 if candidate == 2 else 2
    if 1 < n < bound:
        factors.append(n)   # residual cofactor is itself a small prime
    return factors


def is_probable_prime(n: int, rounds: int = 40,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    ``rng`` may be supplied for reproducible witness selection in tests;
    by default a module-level PRNG seeded from entropy is used.  The test
    never errs on primes (it is one-sided): a ``False`` answer is always
    correct.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    rng = rng or random
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: Optional[random.Random] = None,
                 congruence: Optional[Iterable[int]] = None) -> int:
    """Return a random prime of exactly ``bits`` bits.

    ``congruence`` may be ``(residue, modulus)`` to constrain the result,
    e.g. ``(3, 4)`` for the pairing field primes.  The top and bottom bits
    are forced so the result has the requested length and is odd.
    """
    if bits < 2:
        raise ValueError("need at least 2 bits for a prime")
    rng = rng or random
    residue_modulus = tuple(congruence) if congruence is not None else None
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if residue_modulus is not None:
            residue, modulus = residue_modulus
            candidate += (residue - candidate) % modulus
            if candidate.bit_length() != bits or candidate % 2 == 0:
                continue
        if is_probable_prime(candidate):
            return candidate


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate

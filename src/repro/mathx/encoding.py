"""Canonical integer <-> byte-string codecs (I2OSP / OS2IP of RFC 8017).

Every wire format in the package serializes big integers through these
two functions so sizes are deterministic and byte accounting in the
benchmarks matches what actually travels over the simulated radio.
"""

from __future__ import annotations

from repro.errors import EncodingError


def byte_length(n: int) -> int:
    """Return the minimal number of bytes needed to encode ``n >= 0``."""
    if n < 0:
        raise EncodingError("cannot size a negative integer")
    return max(1, (n.bit_length() + 7) // 8)


def int_to_bytes(n: int, length: int) -> bytes:
    """Encode ``n`` big-endian into exactly ``length`` bytes (I2OSP)."""
    if n < 0:
        raise EncodingError("cannot encode a negative integer")
    try:
        return n.to_bytes(length, "big")
    except OverflowError as exc:
        raise EncodingError(
            f"integer needs {byte_length(n)} bytes, given {length}") from exc


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into an integer (OS2IP)."""
    return int.from_bytes(data, "big")


# RFC 8017 names, for readers cross-checking against the spec.
i2osp = int_to_bytes
os2ip = bytes_to_int

"""Scripted attack campaigns over the simulator (experiments E5-E7).

Each campaign builds a small city, injects one adversary class, runs it
for a configured duration, and returns a structured result that the
corresponding benchmark formats and the test suite asserts on.  The
security claims of Section V.A become these observables:

* E5 (DoS):   legitimate connection success and delay under flood,
              with and without the client-puzzle defense.
* E6 (bogus injection): acceptance counts per attacker class -- the
              paper claims *all* bogus traffic is filtered.
* E7 (phishing): how long a revoked router keeps collecting victims --
              the paper bounds it by the CRL update period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.protocols.dos import DosPolicy
from repro.wmn.adversary import (
    DosFlooder,
    Eavesdropper,
    OutsiderInjector,
    ReplayAttacker,
    RevokedRouterPhisher,
    RoguePhisher,
)
from repro.wmn.scenario import Scenario, ScenarioConfig
from repro.wmn.topology import TopologyConfig


def _small_city(seed: int, user_count: int,
                dos_policy_factory=None,
                data_interval: Optional[float] = None,
                list_refresh_period: float = 600.0,
                beacon_interval: float = 5.0) -> Scenario:
    """One router, a handful of users -- the standard campaign arena."""
    config = ScenarioConfig(
        preset="TEST", seed=seed,
        topology=TopologyConfig(area_side=400.0, router_grid=1,
                                user_count=user_count, seed=seed,
                                access_range=400.0),
        group_sizes=(("Company X", max(8, user_count)),
                     ("University Z", max(8, user_count))),
        beacon_interval=beacon_interval,
        data_interval=data_interval,
        dos_policy_factory=dos_policy_factory,
        list_refresh_period=list_refresh_period)
    return Scenario(config)


# ---------------------------------------------------------------------------
# E6: bogus data injection
# ---------------------------------------------------------------------------


@dataclass
class InjectionResult:
    """Outcome of the bogus-injection campaign."""

    legit_accepted: int
    legit_attempted: int
    outsider_injected: int
    outsider_accepted: int
    replays_sent: int
    replays_accepted: int
    revoked_attempts: int
    revoked_accepted: int
    bogus_data_frames: int
    bogus_data_accepted: int


def injection_campaign(seed: int = 11, user_count: int = 4,
                       duration: float = 120.0) -> InjectionResult:
    """Run the E6 campaign and return a fully reconciled result."""
    scenario = _small_city(seed, user_count)
    loop, radio = scenario.loop, scenario.radio
    group = scenario.deployment.group
    router_id = next(iter(scenario.sim_routers))
    sim_router = scenario.sim_routers[router_id]

    outsider = OutsiderInjector("ATK-outsider", (10.0, 10.0), loop, radio,
                                group, rng=random.Random(seed + 100))
    replayer = ReplayAttacker("ATK-replay", (20.0, 20.0), loop, radio,
                              replay_delay=45.0)

    victim_id = next(iter(scenario.sim_users))
    victim = scenario.sim_users[victim_id]
    credential = victim.user.credentials[victim.context]
    scenario.deployment.operator.revoke_user_key(credential.index)
    for router in scenario.deployment.routers.values():
        router.refresh_lists()
    victim.connect_timeout = 20.0

    from repro.core.messages import DataPacket
    from repro.wmn.radio import Frame
    bogus_data = {"sent": 0}

    def inject_data() -> None:
        packet = DataPacket(session_id=b"\x00" * 16,
                            sequence=bogus_data["sent"],
                            sealed=b"\x00" * 48)
        bogus_data["sent"] += 1
        radio.transmit(Frame("DAT", packet.encode(), src="ATK-outsider",
                             dst=router_id))

    loop.schedule_every(10.0, inject_data)
    data_before = sim_router.metrics["data_delivered"]
    scenario.run(duration)

    legit_users = [u for uid, u in scenario.sim_users.items()
                   if uid != victim_id]
    legit_connected = sum(u.metrics["connected"] for u in legit_users)
    completed = int(sim_router.metrics["handshakes_completed"])
    return InjectionResult(
        legit_accepted=legit_connected,
        legit_attempted=sum(u.metrics["connect_attempts"]
                            for u in legit_users),
        outsider_injected=outsider.injected,
        outsider_accepted=max(0, completed - legit_connected),
        replays_sent=replayer.replayed,
        replays_accepted=max(0, completed - legit_connected),
        revoked_attempts=victim.metrics["connect_attempts"],
        revoked_accepted=victim.metrics["connected"],
        bogus_data_frames=bogus_data["sent"],
        bogus_data_accepted=int(sim_router.metrics["data_delivered"]
                                - data_before
                                - sum(u.metrics["data_sent"]
                                      for u in scenario.sim_users.values())),
    )


# ---------------------------------------------------------------------------
# E7: phishing window of a revoked router
# ---------------------------------------------------------------------------


@dataclass
class PhishingResult:
    """Outcome of the revoked-router phishing campaign."""

    crl_update_period: float
    revoked_at: float
    last_victim_at: Optional[float]
    victims_before_revocation: int
    victims_after_revocation: int
    observed_window: float          # time after revocation still phishing
    paper_bound: float              # <= one CRL update period
    rogue_victims: int              # fresh rogue router (must be 0)


def phishing_campaign(crl_update_period: float = 120.0,
                      revoke_at: float = 100.0,
                      duration: float = 600.0,
                      seed: int = 23,
                      user_count: int = 4) -> PhishingResult:
    """A provisioned router turns rogue after NO revokes it.

    Users keep probing (short sessions); the phisher never completes a
    handshake (it has no interest in M.3) so users time out and retry,
    re-evaluating the increasingly stale CRL each time.
    """
    scenario = _small_city(seed, user_count,
                           list_refresh_period=crl_update_period / 2)
    scenario.deployment.operator.crl_update_period = crl_update_period
    loop, radio = scenario.loop, scenario.radio
    start = loop.now

    # Users probe aggressively and drop sessions quickly.
    for user in scenario.sim_users.values():
        user.connect_timeout = 10.0
        loop.schedule_every(15.0, user.disconnect, jitter_rng=scenario.rng)

    # The second router is provisioned, then revoked mid-run.
    from repro.core.router import MeshRouter as CoreRouter
    phish_core = CoreRouter("MR-phish", scenario.deployment.operator,
                            clock=scenario.clock,
                            rng=random.Random(seed + 5))
    phish_core.refresh_lists()
    # Beacon faster than the honest router so idle probers regularly
    # answer the phisher first (worst case for the defenders).
    phisher = RevokedRouterPhisher(phish_core, (50.0, 50.0), loop, radio,
                                   beacon_interval=2.0,
                                   rng=random.Random(seed + 6))
    rogue = RoguePhisher("MR-rogue", (350.0, 350.0), loop, radio,
                         scenario.deployment.group,
                         rng=random.Random(seed + 7))

    def revoke() -> None:
        scenario.deployment.operator.revoke_router("MR-phish")
        phish_core.sever_operator_channel()

    loop.schedule(revoke_at, revoke)
    scenario.run(duration)

    revoked_wall = start + revoke_at
    before = sum(1 for t in phisher.victim_times if t < revoked_wall)
    after_times = [t for t in phisher.victim_times if t >= revoked_wall]
    last_victim = max(after_times) if after_times else None
    window = (last_victim - revoked_wall) if last_victim else 0.0
    return PhishingResult(
        crl_update_period=crl_update_period,
        revoked_at=revoke_at,
        last_victim_at=last_victim,
        victims_before_revocation=before,
        victims_after_revocation=len(after_times),
        observed_window=window,
        paper_bound=crl_update_period,
        rogue_victims=len(rogue.victims))


# ---------------------------------------------------------------------------
# E5: DoS flood with and without puzzles
# ---------------------------------------------------------------------------


@dataclass
class DosResult:
    """Outcome of one DoS campaign configuration."""

    flood_rate: float
    puzzles_enabled: bool
    puzzle_difficulty: int
    legit_users: int
    legit_connected: int
    mean_auth_delay: float
    requests_dropped_queue: int
    attacker_sent: int
    attacker_puzzle_limited: int
    router_cpu_busy: float
    duration: float

    @property
    def legit_success_rate(self) -> float:
        return (self.legit_connected / self.legit_users
                if self.legit_users else 0.0)


def dos_campaign(flood_rate: float = 40.0, puzzles: bool = False,
                 difficulty: int = 14, attacker_hash_rate: float = 50_000.0,
                 duration: float = 90.0, seed: int = 31,
                 user_count: int = 4) -> DosResult:
    """Flood one router; measure what happens to legitimate users."""
    policy_factory = None
    if puzzles:
        def policy_factory() -> DosPolicy:
            return DosPolicy(rate_threshold=5.0, window=10.0,
                             base_difficulty=difficulty,
                             max_difficulty=difficulty, adaptive=False)

    scenario = _small_city(seed, user_count,
                           dos_policy_factory=policy_factory,
                           beacon_interval=3.0)
    loop, radio = scenario.loop, scenario.radio
    router_id = next(iter(scenario.sim_routers))
    sim_router = scenario.sim_routers[router_id]
    for user in scenario.sim_users.values():
        user.connect_timeout = 20.0     # retry under overload

    flooder = DosFlooder("ATK-flood", (30.0, 30.0), loop, radio,
                         scenario.deployment.group, router_id,
                         rate=flood_rate, hash_rate=attacker_hash_rate,
                         rng=random.Random(seed + 9))

    scenario.run(duration)

    from repro.wmn.metrics import mean
    users = list(scenario.sim_users.values())
    delays = [d for u in users for d in u.auth_delays]
    return DosResult(
        flood_rate=flood_rate, puzzles_enabled=puzzles,
        puzzle_difficulty=difficulty if puzzles else 0,
        legit_users=len(users),
        legit_connected=sum(1 for u in users if u.state == "connected"),
        mean_auth_delay=mean(delays) if delays else float("nan"),
        requests_dropped_queue=int(
            sim_router.metrics["requests_dropped_queue"]),
        attacker_sent=flooder.sent,
        attacker_puzzle_limited=flooder.puzzle_limited,
        router_cpu_busy=sim_router.metrics["cpu_busy_seconds"],
        duration=duration)

"""Signature and message size accounting (experiment E1, Section V.C).

The paper's communication-overhead argument: with the MNT curves of
[15], ``p`` is a 170-bit prime and G1 elements are 171 bits, so the
group signature -- two G1 elements and five Z_p elements -- is

    2 * 171 + 5 * 170 = 1,192 bits = 149 bytes,

"almost the same" as a 1,024-bit (128-byte) RSA signature.  This module
reproduces that arithmetic exactly, and measures the real encoded sizes
of this package's own instantiation for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.groupsig import GroupSignature
from repro.pairing.group import PairingGroup
from repro.sig.curves import SECP160R1, SECP256R1


@dataclass(frozen=True)
class CurveSizeModel:
    """Abstract bit sizes of one pairing instantiation."""

    name: str
    scalar_bits: int   # |Z_p| (group order)
    g1_bits: int       # one (compressed) G1 element

    def group_signature_bits(self) -> int:
        """2 G1 + 5 Z_p, the paper's formula."""
        return 2 * self.g1_bits + 5 * self.scalar_bits

    def group_signature_bytes(self) -> int:
        return math.ceil(self.group_signature_bits() / 8)


#: The paper's parameter choice ([15], MNT curves).
PAPER_MNT170 = CurveSizeModel(name="MNT-170 (paper)", scalar_bits=170,
                              g1_bits=171)

RSA_1024_BYTES = 128
RSA_1024_BITS = 1024


def size_model_for(group: PairingGroup) -> CurveSizeModel:
    """Abstract size model of one of this package's presets."""
    params = group.params
    return CurveSizeModel(name=f"{params.name} (this impl)",
                          scalar_bits=params.scalar_bytes * 8,
                          g1_bits=params.point_bytes * 8)


@dataclass(frozen=True)
class SchemeSizes:
    """One row of the E1 size table."""

    scheme: str
    signature_bytes: int
    signature_bits: int
    note: str = ""


def paper_signature_accounting() -> SchemeSizes:
    """The paper's headline number: 1,192 bits / 149 bytes."""
    model = PAPER_MNT170
    return SchemeSizes(scheme="PEACE group signature (MNT-170, paper)",
                       signature_bytes=model.group_signature_bytes(),
                       signature_bits=model.group_signature_bits(),
                       note="2*|G1| + 5*|Zp| with |G1|=171, |Zp|=170")


def signature_size_table(group: PairingGroup) -> List[SchemeSizes]:
    """All rows of the E1 table: paper numbers + this implementation."""
    ours = size_model_for(group)
    rows = [
        paper_signature_accounting(),
        SchemeSizes(
            scheme="RSA-1024 (paper baseline)",
            signature_bytes=RSA_1024_BYTES,
            signature_bits=RSA_1024_BITS,
            note="standard 1024-bit RSA signature"),
        SchemeSizes(
            scheme=f"PEACE group signature ({group.params.name}, measured)",
            signature_bytes=GroupSignature.encoded_size(group),
            signature_bits=8 * GroupSignature.encoded_size(group),
            note="len(sig.encode()) of a real signature"),
        SchemeSizes(
            scheme=f"PEACE group signature ({group.params.name}, formula)",
            signature_bytes=ours.group_signature_bytes(),
            signature_bits=ours.group_signature_bits(),
            note="2*|G1| + 5*|Zp| with serialized widths"),
        SchemeSizes(
            scheme="ECDSA-160 (router/NO signatures)",
            signature_bytes=2 * SECP160R1.scalar_bytes,
            signature_bits=16 * SECP160R1.scalar_bytes,
            note="r || s over secp160r1"),
        SchemeSizes(
            scheme="ECDSA-256 (modern comparison)",
            signature_bytes=2 * SECP256R1.scalar_bytes,
            signature_bits=16 * SECP256R1.scalar_bytes,
            note="r || s over secp256r1"),
    ]
    return rows


def message_size_report(messages: Dict[str, bytes]) -> Dict[str, int]:
    """Byte sizes of encoded protocol messages (used by E4)."""
    return {name: len(blob) for name, blob in messages.items()}

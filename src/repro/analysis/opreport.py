"""Operation-count verification (experiments E2 / E3, Section V.C).

The paper states abstract costs; this module measures the real ones by
running the scheme under :mod:`repro.instrument` and returns both so
benchmarks print paper-vs-measured side by side.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import instrument
from repro.core import groupsig
from repro.core.groupsig import (
    GroupPrivateKey,
    GroupPublicKey,
    RevocationToken,
)
from repro.errors import RevokedKeyError


@dataclass(frozen=True)
class OpCost:
    """Operation counts (and optionally wall time) of one operation."""

    exponentiations: int
    pairings: int
    gt_exponentiations: int = 0
    wall_seconds: float = 0.0


def expected_sign_cost() -> OpCost:
    """Paper V.C: 'signature generation requires about 8 exponentiations
    ... and 2 bilinear map computations'."""
    return OpCost(exponentiations=8, pairings=2)


def expected_verify_cost(url_size: int) -> OpCost:
    """Paper V.C: 'signature verification takes 6 exponentiations and
    3 + 2|URL| computations of the bilinear map'."""
    return OpCost(exponentiations=6, pairings=3 + 2 * url_size)


def expected_fast_verify_cost() -> OpCost:
    """Paper V.C: the |URL|-independent variant: 6 exp + 5 pairings."""
    return OpCost(exponentiations=6, pairings=5)


def measure_sign_cost(gpk: GroupPublicKey, gsk: GroupPrivateKey,
                      message: bytes = b"op-report",
                      rng: Optional[random.Random] = None) -> OpCost:
    """Sign once under instrumentation."""
    rng = rng or random.Random(0)
    start = time.perf_counter()
    with instrument.count_operations() as ops:
        groupsig.sign(gpk, gsk, message, rng=rng)
    return OpCost(exponentiations=ops.exponentiations(),
                  pairings=ops.pairings(),
                  gt_exponentiations=ops.total("exp_gt"),
                  wall_seconds=time.perf_counter() - start)


def measure_verify_cost(gpk: GroupPublicKey, gsk: GroupPrivateKey,
                        url: Sequence[RevocationToken] = (),
                        message: bytes = b"op-report",
                        rng: Optional[random.Random] = None) -> OpCost:
    """Sign, then verify once under instrumentation (counts verify only).

    The signer must not be on ``url`` -- a revocation hit would abort
    the scan early and undercount.
    """
    rng = rng or random.Random(0)
    signature = groupsig.sign(gpk, gsk, message, rng=rng)
    start = time.perf_counter()
    with instrument.count_operations() as ops:
        groupsig.verify(gpk, message, signature, url=url)
    return OpCost(exponentiations=ops.exponentiations(),
                  pairings=ops.pairings(),
                  gt_exponentiations=ops.total("exp_gt"),
                  wall_seconds=time.perf_counter() - start)


def measure_fast_verify_cost(gpk: GroupPublicKey, gsk: GroupPrivateKey,
                             url: Sequence[RevocationToken],
                             period: bytes = b"period-0",
                             message: bytes = b"op-report",
                             rng: Optional[random.Random] = None) -> OpCost:
    """The precomputed-table variant: verify + O(1) revocation check."""
    rng = rng or random.Random(0)
    signature = groupsig.sign(gpk, gsk, message, rng=rng, period=period)
    table = groupsig.PeriodRevocationTable(gpk, url, period)  # precomputed
    start = time.perf_counter()
    with instrument.count_operations() as ops:
        groupsig.verify(gpk, message, signature, url=(), period=period)
        if table.is_revoked(message, signature):
            raise RevokedKeyError("unexpected revocation hit")
    return OpCost(exponentiations=ops.exponentiations(),
                  pairings=ops.pairings(),
                  gt_exponentiations=ops.total("exp_gt"),
                  wall_seconds=time.perf_counter() - start)


def url_scaling_table(gpk: GroupPublicKey, gsk: GroupPrivateKey,
                      decoys: Sequence[RevocationToken],
                      url_sizes: Sequence[int],
                      rng: Optional[random.Random] = None
                      ) -> List[Dict[str, float]]:
    """Verify cost across URL sizes (experiment E3)."""
    rows = []
    for size in url_sizes:
        if size > len(decoys):
            raise ValueError("not enough decoy tokens for requested size")
        cost = measure_verify_cost(gpk, gsk, url=list(decoys[:size]),
                                   rng=rng)
        expected = expected_verify_cost(size)
        rows.append({
            "url_size": size,
            "pairings_measured": cost.pairings,
            "pairings_expected": expected.pairings,
            "exponentiations_measured": cost.exponentiations,
            "exponentiations_expected": expected.exponentiations,
            "wall_seconds": cost.wall_seconds,
        })
    return rows

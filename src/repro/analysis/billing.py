"""Privacy-preserving billing at user-group granularity.

The paper motivates PEACE partly by billing: "for both billing purpose
and avoiding abuse of network resources, it is also essential to
prohibit free riders".  Its privacy model implies how billing must
work: the operator can attribute sessions to *user groups* (who
subscribe "on behalf of [their] users") but never to individuals -- so
NO bills each society entity for its members' aggregate usage, exactly
like the audit path but in bulk.

:func:`build_billing_report` runs the audit over every logged session
and aggregates per group.  Nothing beyond nonessential attribute
information is touched; the report provably contains no uid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.audit import NetworkLog
from repro.core.operator_entity import NetworkOperator
from repro.core.protocols.user_router import AuthLogEntry
from repro.errors import AuditError


@dataclass
class GroupUsage:
    """One user group's aggregate, billable usage."""

    group_name: str
    sessions: int = 0
    distinct_keys: int = 0
    first_seen: Optional[float] = None
    last_seen: Optional[float] = None
    _tokens: set = field(default_factory=set, repr=False)

    def record(self, entry: AuthLogEntry, token_bytes: bytes) -> None:
        self.sessions += 1
        self._tokens.add(token_bytes)
        self.distinct_keys = len(self._tokens)
        if self.first_seen is None or entry.timestamp < self.first_seen:
            self.first_seen = entry.timestamp
        if self.last_seen is None or entry.timestamp > self.last_seen:
            self.last_seen = entry.timestamp


@dataclass
class BillingReport:
    """Per-group usage plus the sessions nobody claims (free riders)."""

    usage: Dict[str, GroupUsage]
    unattributed_sessions: int

    def invoice_lines(self, price_per_session: float = 1.0
                      ) -> List[str]:
        """Render invoice lines, one per subscribing entity."""
        lines = []
        for name in sorted(self.usage):
            record = self.usage[name]
            lines.append(
                f"{name}: {record.sessions} sessions x "
                f"{price_per_session:.2f} = "
                f"{record.sessions * price_per_session:.2f} "
                f"({record.distinct_keys} active keys)")
        return lines

    @property
    def total_sessions(self) -> int:
        return sum(r.sessions for r in self.usage.values())


def build_billing_report(operator: NetworkOperator,
                         log: NetworkLog) -> BillingReport:
    """Attribute every logged session to its user group and aggregate.

    Sessions whose signature opens to no issued key are counted as
    ``unattributed`` -- with PEACE's access control these should be
    zero, and a nonzero count is itself an audit signal (a router
    accepted something it should not have).
    """
    usage: Dict[str, GroupUsage] = {}
    unattributed = 0
    for entry in log:
        try:
            result = operator.audit_session(entry.signed_payload,
                                            entry.group_signature)
        except AuditError:
            unattributed += 1
            continue
        record = usage.setdefault(result.group_name,
                                  GroupUsage(result.group_name))
        record.record(entry, result.token.encode())
    return BillingReport(usage=usage, unattributed_sessions=unattributed)

"""Analysis harness: the machinery behind EXPERIMENTS.md.

Byte-accurate size accounting (E1), operation-count verification (E2,
E3), privacy / unlinkability games (E8), and scripted attack campaigns
over the simulator (E5-E7).
"""

from repro.analysis.sizes import (
    PAPER_MNT170,
    SchemeSizes,
    paper_signature_accounting,
    signature_size_table,
)
from repro.analysis.opreport import (
    expected_sign_cost,
    expected_verify_cost,
    measure_sign_cost,
    measure_verify_cost,
)
from repro.analysis.attack_eval import (
    dos_campaign,
    injection_campaign,
    phishing_campaign,
)
from repro.analysis.billing import BillingReport, build_billing_report
from repro.analysis.privacy_games import (
    linking_with_token_rate,
    run_unlinkability_game,
    view_disclosure_report,
)

__all__ = [
    "BillingReport",
    "PAPER_MNT170",
    "SchemeSizes",
    "build_billing_report",
    "dos_campaign",
    "injection_campaign",
    "phishing_campaign",
    "expected_sign_cost",
    "expected_verify_cost",
    "linking_with_token_rate",
    "measure_sign_cost",
    "measure_verify_cost",
    "paper_signature_accounting",
    "run_unlinkability_game",
    "signature_size_table",
    "view_disclosure_report",
]

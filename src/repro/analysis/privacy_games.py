"""Privacy and accountability games (experiment E8, Sections IV.D / V.B).

The paper's privacy claims are statements about what different parties
can and cannot compute.  Each claim becomes a game with a measurable
success rate:

* **Unlinkability game** -- a challenger signs two messages, either
  with the same key or with different keys (fair coin); an adversary
  (several strategies, including one holding *other* members' private
  keys) guesses.  Claim: advantage ~ 0.
* **Token linking** -- the same game given the signer's revocation
  token ``A``.  Claim: success rate 1 (this is exactly how NO achieves
  accountability, and why *only* NO can).
* **View disclosure report** -- runs a full deployment session and
  records what every party (adversary, GM, TTP, NO, law authority)
  learns about the signer, mirroring the three-tier privacy model.
* **Period-mode linkability** -- quantifies the documented privacy
  sacrifice of the fast revocation-check variant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core import groupsig
from repro.core.groupsig import (
    GroupPrivateKey,
    GroupPublicKey,
    GroupSignature,
    RevocationToken,
)

#: An adversary strategy: given the public key, two (message, signature)
#: pairs, and any auxiliary input, output True for "same signer".
Strategy = Callable[
    [GroupPublicKey, bytes, GroupSignature, bytes, GroupSignature, object],
    bool]


@dataclass(frozen=True)
class GameResult:
    """Outcome of a distinguishing game."""

    trials: int
    correct: int

    @property
    def success_rate(self) -> float:
        return self.correct / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        """|success - 1/2| * 2, in [0, 1]."""
        return abs(self.success_rate - 0.5) * 2


# ---------------------------------------------------------------------------
# Adversary strategies
# ---------------------------------------------------------------------------


def strategy_compare_encodings(gpk, msg1, sig1, msg2, sig2, _aux) -> bool:
    """Naive: same signer iff any signature component bytes repeat."""
    return (sig1.t1 == sig2.t1 or sig1.t2 == sig2.t2
            or sig1.r == sig2.r)


def strategy_t2_ratio(gpk, msg1, sig1, msg2, sig2, _aux) -> bool:
    """Algebraic attempt: test whether T2/T2' looks like v^a / v'^a'.

    Without knowing the alphas this reduces to comparing two random
    group elements -- included to show a 'smarter' strategy fares no
    better than coin flipping.
    """
    return (sig1.t2 / sig2.t2).is_identity()


def strategy_insider_keys(gpk, msg1, sig1, msg2, sig2, aux) -> bool:
    """Insider: holds OTHER members' private keys (aux = list of gsk).

    Per the threat model, compromising users/routers yields group
    private keys -- but testing a signature against a key requires its
    ``A`` (Eq.3), and none of the compromised As match the challenge
    signer.  The strategy falls back to guessing 'different'.
    """
    for gsk in aux or ():
        token = RevocationToken(gsk.a)
        if (groupsig.signature_matches_token(gpk, msg1, sig1, token)
                and groupsig.signature_matches_token(gpk, msg2, sig2,
                                                     token)):
            return True
    return False


def strategy_with_token(gpk, msg1, sig1, msg2, sig2, aux) -> bool:
    """NO's view: aux is the full grt (all revocation tokens)."""
    def owner(msg, sig) -> Optional[int]:
        for position, token in enumerate(aux):
            if groupsig.signature_matches_token(gpk, msg, sig, token):
                return position
        return None
    owner1 = owner(msg1, sig1)
    return owner1 is not None and owner1 == owner(msg2, sig2)


# ---------------------------------------------------------------------------
# Games
# ---------------------------------------------------------------------------


def run_unlinkability_game(gpk: GroupPublicKey,
                           keys: Sequence[GroupPrivateKey],
                           strategy: Strategy,
                           trials: int = 50,
                           rng: Optional[random.Random] = None,
                           aux: object = None,
                           period: Optional[bytes] = None) -> GameResult:
    """Same-signer-or-not distinguishing game.

    Each trial flips a fair coin: heads, both signatures come from one
    randomly chosen key; tails, from two distinct keys.  The strategy's
    guess is scored against the truth.
    """
    if len(keys) < 2:
        raise ValueError("need at least two keys for the game")
    rng = rng or random.Random(0)
    correct = 0
    for trial in range(trials):
        same = rng.random() < 0.5
        key1 = rng.choice(keys)
        if same:
            key2 = key1
        else:
            others = [key for key in keys if key is not key1]
            key2 = rng.choice(others)
        msg1 = b"game-msg-1-%d" % trial
        msg2 = b"game-msg-2-%d" % trial
        sig1 = groupsig.sign(gpk, key1, msg1, rng=rng, period=period)
        sig2 = groupsig.sign(gpk, key2, msg2, rng=rng, period=period)
        guess = strategy(gpk, msg1, sig1, msg2, sig2, aux)
        if guess == same:
            correct += 1
    return GameResult(trials=trials, correct=correct)


def linking_with_token_rate(gpk: GroupPublicKey,
                            keys: Sequence[GroupPrivateKey],
                            trials: int = 20,
                            rng: Optional[random.Random] = None) -> float:
    """Accountability side: with grt, linking succeeds every time."""
    rng = rng or random.Random(0)
    grt = [RevocationToken(key.a) for key in keys]
    result = run_unlinkability_game(gpk, keys, strategy_with_token,
                                    trials=trials, rng=rng, aux=grt)
    return result.success_rate


def period_linkability_rate(gpk: GroupPublicKey,
                            keys: Sequence[GroupPrivateKey],
                            trials: int = 20,
                            rng: Optional[random.Random] = None,
                            period: bytes = b"epoch-1") -> float:
    """The fast-revocation trade-off: within one period, the revocation
    tag links signatures by the same signer *without any token*."""
    rng = rng or random.Random(0)

    def tag_strategy(gpk_, msg1, sig1, msg2, sig2, _aux) -> bool:
        tag1 = groupsig.revocation_tag(gpk_, msg1, sig1, period=period)
        tag2 = groupsig.revocation_tag(gpk_, msg2, sig2, period=period)
        return tag1 == tag2

    result = run_unlinkability_game(gpk, keys, tag_strategy, trials=trials,
                                    rng=rng, period=period)
    return result.success_rate


# ---------------------------------------------------------------------------
# Deployment-level disclosure report
# ---------------------------------------------------------------------------


def view_disclosure_report(deployment, user_name: str, router_id: str,
                           context: Optional[str] = None) -> Dict[str, str]:
    """Run a session and report what each party learns about the signer.

    Returns a mapping ``party -> disclosed information`` matching the
    three-tier privacy model:  adversary/GM/TTP learn nothing beyond
    "a legitimate member", NO learns the user group, and the law
    authority (NO + GM jointly) learns the full identity.
    """
    from repro.core.audit import audit_by_session

    user_session, _router_session = deployment.connect(
        user_name, router_id, context=context)
    session_id = user_session.session_id

    audit = audit_by_session(deployment.operator, deployment.network_log,
                             session_id)
    trace = deployment.law_authority.trace_session(
        deployment.operator, deployment.network_log, deployment.gms,
        session_id)

    return {
        "adversary": "a legitimate, unrevoked network user "
                     "(fresh session identifier, no linkable state)",
        "group_manager": "nothing (holds no A values; cannot test Eq.3)",
        "ttp": "nothing (holds only A XOR x blindings)",
        "network_operator": f"member of user group "
                            f"{audit.group_name!r} -- nonessential "
                            f"attribute information only",
        "law_authority": f"full identity: {trace.identity.name} "
                         f"(uid {trace.identity.uid.hex()[:8]})",
    }

"""Discrete-event loop and the simulated clock.

A classic calendar queue: events are ``(time, sequence, callback)``
triples ordered by time (sequence breaks ties FIFO, keeping runs
deterministic).  :class:`SimClock` adapts the loop to the
:class:`repro.core.clock.Clock` interface so every PEACE entity --
timestamp checks, certificate expiry, CRL staleness -- runs on virtual
time.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.clock import Clock
from repro.errors import SimulationError

Callback = Callable[[], None]


class EventLoop:
    """Deterministic discrete-event scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._sequence = 0
        self._queue: List[Tuple[float, int, Callback]] = []
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self._now + delay, self._sequence, callback))
        self._sequence += 1

    def schedule_at(self, when: float, callback: Callback) -> None:
        """Run ``callback`` at absolute time ``when``."""
        self.schedule(when - self._now, callback)

    def schedule_every(self, period: float, callback: Callback,
                       jitter_rng=None, until: Optional[float] = None
                       ) -> None:
        """Repeat ``callback`` every ``period`` seconds.

        ``jitter_rng`` (a ``random.Random``) desynchronizes periodic
        sources by up to 10% of the period; ``until`` stops the series.
        """
        if period <= 0:
            raise SimulationError("period must be positive")

        def fire() -> None:
            if until is not None and self._now > until:
                return
            callback()
            delay = period
            if jitter_rng is not None:
                delay *= 1 + 0.1 * (jitter_rng.random() - 0.5)
            self.schedule(delay, fire)

        first_delay = 0.0
        if jitter_rng is not None:
            first_delay = period * jitter_rng.random()
        self.schedule(first_delay, fire)

    def run_until(self, end: float, max_events: int = 10_000_000) -> None:
        """Process events up to (and including) simulated time ``end``."""
        processed = 0
        while self._queue and self._queue[0][0] <= end:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={end}")
        self._now = max(self._now, end)
        self.events_processed += processed

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely."""
        processed = 0
        while self._queue:
            when, _seq, callback = heapq.heappop(self._queue)
            self._now = when
            callback()
            processed += 1
            if processed > max_events:
                raise SimulationError("event explosion in run_all")
        self.events_processed += processed

    @property
    def pending(self) -> int:
        return len(self._queue)


class SimClock(Clock):
    """Clock view of an :class:`EventLoop` for protocol entities."""

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop

    def now(self) -> float:
        return self._loop.now

"""Epidemic CRL/URL distribution between mesh routers.

The operator publishes revocation lists, but at metropolitan scale not
every router has a live backhaul every update period -- degraded
routers (fiber cut, NO outage) would otherwise age out of their
``staleness_grace`` and refuse service even though a neighbour one hop
away holds a fresher list.  :class:`ListGossip` runs classic
push-pull anti-entropy on the sim clock:

* every ``round_period`` each participating router contacts ``fanout``
  peers chosen from its peer set by the seeded rng;
* the exchange opens with a *digest* -- ``(crl_version, url_version)``
  -- and only a version gap moves data;
* the fresher side serves a :class:`~repro.core.certs.CrlDelta` /
  :class:`~repro.core.certs.UrlDelta` when the stale side's version is
  still in its bounded history, else the full signed list; the
  receiver reconstructs and *validates the NO signature* before
  adopting (:meth:`MeshRouter.adopt_lists`), so a corrupted or forged
  delta can never take effect;
* each exchange is lost with probability ``loss_probability`` (seeded,
  replayable), modelling the lossy mesh links the paper's setting
  assumes.

**Shard-checkpoint warm-up** (``checkpoints=True``): after the list
reconcile, each side offers its signed
:class:`~repro.core.revocation.TagCheckpoint` to a peer whose epoch-tag
cache is cold (a restarted or newly joined router), so the peer warms
its :class:`~repro.core.revocation.RevocationTagCache` from one
exchange instead of re-deriving |URL| pairings.  Adoption runs the full
PKI chain at the receiving router (certificate validity, CRL, ECDSA
over the entry set); a tampered checkpoint raises ``CertificateError``
-- counted in ``gossip.checkpoint.rejected`` -- and the receiver falls
back to full tag re-derivation.  ``_cut_off`` routers neither serve
nor adopt checkpoints (E7 again).

Composition with the fault model: routers can be *isolated* from the
gossip overlay and later *rejoin* (:class:`repro.faults.plan.GossipFault`
armed through :meth:`repro.faults.injector.FaultInjector.arm_gossip`);
a revoked (``_cut_off``) router keeps its stale lists -- adoption is
refused at the router, preserving the E7 phishing-window behaviour.
A killed/restarted router is swapped in with
:meth:`ListGossip.replace_router`.  Counters: ``gossip.rounds_total``,
``gossip.exchanges_total``, ``gossip.deltas_applied_total``,
``gossip.full_syncs_total``, ``gossip.losses_total``, plus the
``gossip.checkpoint.*`` family.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.router import MeshRouter
from repro.errors import CertificateError, SimulationError
from repro.wmn.simclock import EventLoop


class ListGossip:
    """Anti-entropy distribution of CRL/URL versions over a router set."""

    def __init__(self, loop: EventLoop, routers: Sequence[MeshRouter],
                 round_period: float = 30.0, fanout: int = 2,
                 loss_probability: float = 0.0,
                 rng: Optional[random.Random] = None,
                 peers: Optional[Dict[str, List[str]]] = None,
                 checkpoints: bool = False) -> None:
        if round_period <= 0:
            raise SimulationError("gossip round_period must be positive")
        if fanout < 1:
            raise SimulationError("gossip fanout must be >= 1")
        if not 0.0 <= loss_probability < 1.0:
            raise SimulationError("gossip loss probability must be in [0,1)")
        self.loop = loop
        self.routers: Dict[str, MeshRouter] = {
            router.router_id: router for router in routers}
        if len(self.routers) != len(routers):
            raise SimulationError("duplicate router ids in gossip set")
        self.round_period = round_period
        self.fanout = fanout
        self.loss_probability = loss_probability
        self.rng = rng or random.Random()
        # Overlay topology: router id -> candidate peer ids.  Default is
        # a complete graph (uniform peer sampling, the textbook model);
        # a scenario passes its backbone adjacency for mesh-shaped
        # spread.
        self._peers: Dict[str, List[str]] = {}
        for router_id in self.routers:
            if peers is not None:
                candidates = [peer for peer in peers.get(router_id, ())
                              if peer in self.routers and peer != router_id]
            else:
                candidates = [peer for peer in self.routers
                              if peer != router_id]
            self._peers[router_id] = sorted(candidates)
        self._isolated: set = set()
        self.checkpoints = checkpoints
        #: Chaos hook: callable mutating a checkpoint in flight
        #: (tamper-in-transit tests); None passes it through verbatim.
        self.checkpoint_filter = None
        self.rounds = 0
        self.exchanges = 0
        self.deltas_applied = 0
        self.full_syncs = 0
        self.losses = 0
        self.checkpoints_offered = 0
        self.checkpoints_adopted = 0
        self.checkpoints_rejected = 0

    # -- fault hooks --------------------------------------------------------

    def replace_router(self, router: MeshRouter) -> None:
        """Swap in a restarted router object under its existing id
        (the overlay topology and isolation state are unchanged)."""
        if router.router_id not in self.routers:
            raise SimulationError(
                f"unknown gossip router {router.router_id!r}")
        self.routers[router.router_id] = router

    def isolate(self, router_id: str) -> None:
        """Sever a router from the overlay (both directions)."""
        if router_id not in self.routers:
            raise SimulationError(f"unknown gossip router {router_id!r}")
        self._isolated.add(router_id)
        obs.counter("gossip.isolated_total")

    def rejoin(self, router_id: str) -> None:
        """Restore a severed router to the overlay."""
        if router_id not in self.routers:
            raise SimulationError(f"unknown gossip router {router_id!r}")
        self._isolated.discard(router_id)
        obs.counter("gossip.rejoined_total")

    def isolated(self, router_id: str) -> bool:
        return router_id in self._isolated

    # -- scheduling ---------------------------------------------------------

    def start(self, until: Optional[float] = None) -> None:
        """Arm one anti-entropy round every ``round_period`` on the loop."""
        self.loop.schedule_every(self.round_period, self.run_round,
                                 until=until)

    # -- the protocol -------------------------------------------------------

    def run_round(self) -> None:
        """One synchronous anti-entropy round: everyone gossips once."""
        self.rounds += 1
        obs.counter("gossip.rounds_total")
        # Deterministic iteration order: dict order is insertion order,
        # and the router set is fixed at construction.
        for router_id in self.routers:
            if router_id in self._isolated:
                continue
            candidates = [peer for peer in self._peers[router_id]
                          if peer not in self._isolated]
            if not candidates:
                continue
            count = min(self.fanout, len(candidates))
            for peer_id in self.rng.sample(candidates, count):
                self._exchange(router_id, peer_id)

    def _exchange(self, initiator_id: str, peer_id: str) -> None:
        """One push-pull digest exchange; lossy, symmetric."""
        self.exchanges += 1
        obs.counter("gossip.exchanges_total")
        if (self.loss_probability
                and self.rng.random() < self.loss_probability):
            self.losses += 1
            obs.counter("gossip.losses_total")
            return
        initiator = self.routers[initiator_id]
        peer = self.routers[peer_id]
        # Push: initiator lifts the peer where it is fresher...
        self._reconcile(source=initiator, target=peer)
        # ...pull: and the peer lifts the initiator back.
        self._reconcile(source=peer, target=initiator)
        if self.checkpoints:
            self._offer_checkpoint(source=initiator, target=peer)
            self._offer_checkpoint(source=peer, target=initiator)

    def _reconcile(self, source: MeshRouter, target: MeshRouter) -> None:
        """Move ``source``'s fresher lists into ``target``.

        Tries the delta first (source still remembers the target's
        version), falling back to the full signed list.  A delta whose
        reconstruction fails NO validation is discarded and the full
        list is sent instead -- tampering degrades to the slow path,
        never to adoption.
        """
        src_crl, src_url = source.list_versions()
        dst_crl, dst_url = target.list_versions()
        crl = url = None
        used_delta = False
        if src_crl > dst_crl:
            delta = source.crl_delta_for(dst_crl)
            if delta is not None:
                try:
                    crl = delta.apply(target.crl)
                    used_delta = True
                except CertificateError:
                    crl = None
            if crl is None:
                crl = source.crl
        if src_url > dst_url:
            delta = source.url_delta_for(dst_url)
            if delta is not None:
                try:
                    url = delta.apply(target.url)
                    used_delta = True
                except CertificateError:
                    url = None
            if url is None:
                url = source.url
        if crl is None and url is None:
            return
        try:
            adopted = target.adopt_lists(crl=crl, url=url)
        except CertificateError:
            # Reconstruction (or a forged full list) failed signature
            # validation; retry with the authoritative full lists.
            obs.counter("gossip.delta_rejected_total")
            try:
                adopted = target.adopt_lists(
                    crl=source.crl if crl is not None else None,
                    url=source.url if url is not None else None)
            except CertificateError:
                return
            used_delta = False
        if adopted:
            if used_delta:
                self.deltas_applied += 1
                obs.counter("gossip.deltas_applied_total")
            else:
                self.full_syncs += 1
                obs.counter("gossip.full_syncs_total")

    def _offer_checkpoint(self, source: MeshRouter,
                          target: MeshRouter) -> None:
        """Warm ``target``'s tag cache from ``source``'s checkpoint.

        Offered only when both ends run the sharded path on the same
        epoch and the target's cache is actually cold -- a checkpoint
        is pure optimization, so an up-to-date peer costs nothing.
        The target performs the full verification chain; rejection
        (``CertificateError``) leaves its cache untouched and the next
        shard build re-derives the tags it is missing.
        """
        src_state = source.revocation_state
        dst_state = target.revocation_state
        if src_state is None or dst_state is None:
            return
        if src_state.epoch != dst_state.epoch:
            return
        if target.tag_warm_fraction() >= 1.0:
            return
        checkpoint = source.make_tag_checkpoint()
        if checkpoint is None:
            return
        if self.checkpoint_filter is not None:
            checkpoint = self.checkpoint_filter(checkpoint)
        self.checkpoints_offered += 1
        obs.counter("gossip.checkpoint.offered")
        try:
            adopted = target.adopt_tag_checkpoint(checkpoint)
        except CertificateError:
            # The router already counted gossip.checkpoint.rejected.
            self.checkpoints_rejected += 1
            return
        if adopted:
            self.checkpoints_adopted += 1

    # -- convergence --------------------------------------------------------

    def converged(self, crl_version: Optional[int] = None,
                  url_version: Optional[int] = None,
                  include_isolated: bool = False) -> bool:
        """True when every reachable router holds the target versions.

        Defaults to the maximum version any participant holds.  Revoked
        (``_cut_off``) routers never converge by design and are always
        excluded; isolated routers are excluded unless asked for.
        """
        participants = [router for router_id, router in self.routers.items()
                        if not router._cut_off
                        and (include_isolated
                             or router_id not in self._isolated)]
        if not participants:
            return True
        if crl_version is None:
            crl_version = max(r.list_versions()[0] for r in participants)
        if url_version is None:
            url_version = max(r.list_versions()[1] for r in participants)
        return all(router.list_versions() >= (crl_version, url_version)
                   for router in participants)

    def run_until_converged(self, max_rounds: int,
                            crl_version: Optional[int] = None,
                            url_version: Optional[int] = None) -> int:
        """Drive rounds directly (no loop) until convergence.

        Returns the number of rounds taken; raises
        :class:`~repro.errors.SimulationError` past ``max_rounds`` --
        the bound the scale benchmark holds epidemic spread to.
        """
        for round_index in range(max_rounds):
            if self.converged(crl_version, url_version):
                return round_index
            self.run_round()
        if self.converged(crl_version, url_version):
            return max_rounds
        raise SimulationError(
            f"gossip failed to converge within {max_rounds} rounds")

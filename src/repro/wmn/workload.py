"""Synthetic metropolitan workload generation.

The paper's motivating scenario is a city's worth of residents using
the mesh "from everywhere within the community such as offices, homes,
restaurants, hospitals, hotels, shopping malls, and even vehicles" --
i.e. a diurnal activity pattern.  This module generates that load:

* :class:`DiurnalProfile` -- a 24-hour activity envelope (relative
  session-arrival intensity per hour), with a plausible city default
  (morning ramp, lunchtime bump, evening peak, night trough);
* :func:`poisson_arrivals` -- a non-homogeneous Poisson arrival
  sequence over the profile, by thinning;
* :class:`WorkloadDriver` -- schedules those arrivals onto a
  :class:`~repro.wmn.scenario.Scenario`, making randomly chosen users
  start short sessions (connect, send a burst, disconnect).

Used by the diurnal example and available to scale handshake-load
experiments with realistic burstiness instead of fixed intervals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.errors import SimulationError

#: Relative hourly intensity of a residential metro network: quiet
#: nights, commute ramps, lunch bump, strong evening peak.
CITY_DEFAULT_PROFILE = (
    0.15, 0.10, 0.08, 0.08, 0.10, 0.20,   # 00-05
    0.40, 0.70, 0.90, 0.80, 0.70, 0.75,   # 06-11
    0.85, 0.80, 0.70, 0.70, 0.75, 0.90,   # 12-17
    1.00, 0.95, 0.85, 0.70, 0.45, 0.25,   # 18-23
)


@dataclass(frozen=True)
class DiurnalProfile:
    """A 24-hour relative-intensity envelope."""

    hourly: Sequence[float] = CITY_DEFAULT_PROFILE

    def __post_init__(self) -> None:
        if len(self.hourly) != 24:
            raise SimulationError("profile needs exactly 24 hourly values")
        if min(self.hourly) < 0 or max(self.hourly) <= 0:
            raise SimulationError("profile values must be >= 0, not all 0")

    def intensity_at(self, seconds_of_day: float) -> float:
        """Relative intensity at a time of day, linearly interpolated."""
        hours = (seconds_of_day / 3600.0) % 24.0
        low = int(hours) % 24
        high = (low + 1) % 24
        frac = hours - int(hours)
        return self.hourly[low] * (1 - frac) + self.hourly[high] * frac

    @property
    def peak(self) -> float:
        return max(self.hourly)


def poisson_arrivals(profile: DiurnalProfile, peak_rate: float,
                     start: float, duration: float,
                     rng: Optional[random.Random] = None,
                     day_anchor: float = 0.0) -> List[float]:
    """Non-homogeneous Poisson arrivals via Lewis-Shedler thinning.

    ``peak_rate`` is the arrival rate (events/second) at the profile's
    peak; the instantaneous rate is ``peak_rate * intensity / peak``.
    ``day_anchor`` is the absolute time corresponding to midnight (the
    simulator's clock rarely starts at a day boundary).  Returns
    absolute event times within ``[start, start + duration)``.
    """
    if peak_rate <= 0 or duration <= 0:
        raise SimulationError("peak_rate and duration must be positive")
    rng = rng or random.Random()
    arrivals: List[float] = []
    t = start
    end = start + duration
    while True:
        t += rng.expovariate(peak_rate)
        if t >= end:
            return arrivals
        acceptance = profile.intensity_at(t - day_anchor) / profile.peak
        if rng.random() < acceptance:
            arrivals.append(t)


class WorkloadDriver:
    """Schedules diurnal session activity onto a scenario."""

    def __init__(self, scenario, profile: Optional[DiurnalProfile] = None,
                 peak_rate: float = 0.2,
                 session_duration: float = 60.0,
                 burst_packets: int = 3,
                 day_anchor: Optional[float] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.scenario = scenario
        self.profile = profile or DiurnalProfile()
        self.peak_rate = peak_rate
        self.session_duration = session_duration
        self.burst_packets = burst_packets
        # Default anchor: "the simulation started at midnight".
        self.day_anchor = (scenario.loop.now if day_anchor is None
                           else day_anchor)
        self.rng = rng or random.Random(0)
        self.sessions_started = 0
        self.bursts_sent = 0
        # The driver owns connection timing: users sit dormant until an
        # arrival activates them.
        for user in scenario.sim_users.values():
            user.auto_connect = False

    def schedule(self, duration: float) -> int:
        """Lay out arrivals for the next ``duration`` simulated seconds.

        Each arrival picks an idle user to connect; once connected the
        user sends a short packet burst and disconnects after the
        session duration.  Returns the number of scheduled arrivals.
        """
        loop = self.scenario.loop
        arrivals = poisson_arrivals(self.profile, self.peak_rate,
                                    loop.now, duration, rng=self.rng,
                                    day_anchor=self.day_anchor)
        for when in arrivals:
            loop.schedule_at(when, self._start_session)
        obs.counter("wmn.arrivals_total", len(arrivals))
        return len(arrivals)

    def _start_session(self) -> None:
        # Eligible: dormant users not already activated by an earlier
        # arrival still waiting for its beacon.
        idle = [user for user in self.scenario.sim_users.values()
                if user.state == "idle" and not user.auto_connect]
        if not idle:
            return
        user = self.rng.choice(idle)
        user.auto_connect = True     # picks up the next beacon
        self.sessions_started += 1
        obs.counter("wmn.sessions_started_total")
        self.scenario.loop.schedule(self.session_duration / 2,
                                    lambda: self._burst(user))

        def finish() -> None:
            user.disconnect()
            user.auto_connect = False

        self.scenario.loop.schedule(self.session_duration, finish)

    def _burst(self, user) -> None:
        if user.state != "connected":
            return
        for _ in range(self.burst_packets):
            user._send_data()
        self.bursts_sent += 1
        obs.counter("wmn.bursts_total")

"""Multi-hop uplink relaying over authenticated peer sessions (IV.C).

Users beyond a router's reach forward their traffic through peers.  In
PEACE every adjacent pair first runs the user-user handshake; data then
travels hop-by-hop, each hop protected by that pair's session key (the
MAC-based hybrid phase).  :class:`RelayUser` extends the basic
:class:`~repro.wmn.nodes.SimUser` with:

* answering peer hellos (M~.1 -> M~.2 -> M~.3) over the radio;
* a relay envelope format carrying the remaining path; and
* hop-by-hop unseal / re-seal forwarding.

The handshake itself is done at boosted power straight to the router
(paper footnote 3); only *data* is relayed, matching the paper's model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.messages import Beacon, PeerConfirm, PeerHello, PeerResponse
from repro.core.protocols.session import SecureSession
from repro.core.protocols.user_user import PeerAuthEngine
from repro.core.wire import Reader, Writer
from repro.errors import ProtocolError, ReproError, SimulationError
from repro.wmn.nodes import SimUser
from repro.wmn.radio import Frame


def _pack_envelope(path: List[str], router_id: str, inner: bytes) -> bytes:
    writer = Writer().u32(len(path))
    for hop in path:
        writer.string(hop)
    writer.string(router_id)
    writer.var(inner)
    return writer.done()


def _unpack_envelope(data: bytes):
    reader = Reader(data)
    hops = [reader.string() for _ in range(reader.u32())]
    router_id = reader.string()
    inner = reader.var()
    reader.expect_end()
    return hops, router_id, inner


class RelayUser(SimUser):
    """A user that also relays for authenticated peers."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.peer_sessions: Dict[str, SecureSession] = {}
        self._peer_engine: Optional[PeerAuthEngine] = None
        self._pending_peers: Dict[str, object] = {}
        self.last_beacon_g = None
        self.relay_metrics = {"peer_handshakes": 0, "relayed": 0,
                              "relay_rejected": 0}

    # -- engine -----------------------------------------------------------

    def _engine(self) -> PeerAuthEngine:
        if self._peer_engine is None:
            self._peer_engine = self.user.peer_engine(self.context)
        return self._peer_engine

    def current_url(self):
        """URL for peer revocation checks, from the freshest beacon."""
        if self._last_url is None:
            raise ProtocolError("no beacon heard yet; URL unknown")
        return self._last_url

    _last_url = None

    # -- frame intake -------------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        if frame.kind == "M.1" and frame.dst is None:
            try:
                beacon = Beacon.decode(self.user.group,
                                       self.user.operator_public_key.curve,
                                       frame.payload)
                self.last_beacon_g = beacon.g
                self._last_url = beacon.url
            except ReproError:
                pass
            super().deliver(frame)
        elif frame.kind == "N.1" and frame.dst == self.node_id:
            self._on_peer_hello(frame)
        elif frame.kind == "N.2" and frame.dst == self.node_id:
            self._on_peer_response(frame)
        elif frame.kind == "N.3" and frame.dst == self.node_id:
            self._on_peer_confirm(frame)
        elif frame.kind == "RLY" and frame.dst == self.node_id:
            self._on_relay(frame)
        else:
            super().deliver(frame)

    # -- peer handshake (both roles) ---------------------------------------

    def initiate_peer(self, peer_node_id: str) -> None:
        """Start the user-user handshake toward a neighbor."""
        if self.last_beacon_g is None:
            raise ProtocolError("cannot initiate: no beacon g known")
        hello, pending = self._engine().initiate(self.last_beacon_g)
        self._pending_peers[peer_node_id] = pending
        self.send(Frame("N.1", hello.encode(), src=self.node_id,
                        dst=peer_node_id))

    def _on_peer_hello(self, frame: Frame) -> None:
        try:
            hello = PeerHello.decode(self.user.group, frame.payload)
            response, pending = self._engine().respond(
                hello, self.current_url())
        except ReproError:
            self.relay_metrics["relay_rejected"] += 1
            return
        self._pending_peers[frame.src] = pending
        self.send(Frame("N.2", response.encode(), src=self.node_id,
                        dst=frame.src))

    def _on_peer_response(self, frame: Frame) -> None:
        pending = self._pending_peers.get(frame.src)
        if pending is None or pending.role != "initiator":
            return
        try:
            response = PeerResponse.decode(self.user.group, frame.payload)
            confirm, session = self._engine().complete(
                pending, response, self.current_url())
        except ReproError:
            self.relay_metrics["relay_rejected"] += 1
            return
        self.peer_sessions[frame.src] = session
        self.relay_metrics["peer_handshakes"] += 1
        del self._pending_peers[frame.src]
        self.send(Frame("N.3", confirm.encode(), src=self.node_id,
                        dst=frame.src))

    def _on_peer_confirm(self, frame: Frame) -> None:
        pending = self._pending_peers.get(frame.src)
        if pending is None or pending.role != "responder":
            return
        try:
            confirm = PeerConfirm.decode(self.user.group, frame.payload)
            session = self._engine().finalize(pending, confirm)
        except ReproError:
            self.relay_metrics["relay_rejected"] += 1
            return
        self.peer_sessions[frame.src] = session
        self.relay_metrics["peer_handshakes"] += 1
        del self._pending_peers[frame.src]

    # -- relayed uplink --------------------------------------------------------

    def send_relayed(self, path: List[str], router_id: str,
                     inner: bytes) -> None:
        """Send ``inner`` (an encoded DAT frame payload) along ``path``."""
        if not path:
            raise SimulationError("relay path is empty")
        first = path[0]
        session = self.peer_sessions.get(first)
        if session is None:
            raise ProtocolError(f"no peer session with {first}")
        envelope = _pack_envelope(path[1:], router_id, inner)
        packet = session.send(envelope)
        self.send(Frame("RLY", packet.encode(), src=self.node_id,
                        dst=first))

    def _on_relay(self, frame: Frame) -> None:
        session = self.peer_sessions.get(frame.src)
        if session is None:
            self.relay_metrics["relay_rejected"] += 1
            return
        try:
            from repro.core.messages import DataPacket
            packet = DataPacket.decode(frame.payload)
            envelope = session.receive(packet)
            hops, router_id, inner = _unpack_envelope(envelope)
        except ReproError:
            self.relay_metrics["relay_rejected"] += 1
            return
        self.relay_metrics["relayed"] += 1
        if hops:
            next_hop = hops[0]
            next_session = self.peer_sessions.get(next_hop)
            if next_session is None:
                self.relay_metrics["relay_rejected"] += 1
                return
            repacked = next_session.send(
                _pack_envelope(hops[1:], router_id, inner))
            self.send(Frame("RLY", repacked.encode(), src=self.node_id,
                            dst=next_hop))
        else:
            # Last relay hop: hand the inner DAT frame to the router.
            self.send(Frame("DAT", inner, src=self.node_id,
                            dst=router_id))

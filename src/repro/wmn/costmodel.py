"""Computational cost model for simulated nodes.

The simulator advances virtual time when a node performs expensive
cryptography, so resource-exhaustion effects (the DoS experiment) are
first-class.  Costs default to values calibrated from this package's
own SS512 measurements on a commodity core; they are configuration, not
measurements -- benchmark E9 reports the real numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual CPU costs, in seconds."""

    pairing: float = 0.020
    exponentiation: float = 0.0025
    hash_op: float = 2e-6
    ecdsa_sign: float = 0.001
    ecdsa_verify: float = 0.002
    aead_per_kb: float = 0.0005

    def group_sign(self) -> float:
        """8 exponentiations + 2 pairings (paper V.C)."""
        return 8 * self.exponentiation + 2 * self.pairing

    def group_verify(self, url_size: int) -> float:
        """6 exponentiations + (3 + 2|URL|) pairings (paper V.C)."""
        return (6 * self.exponentiation
                + (3 + 2 * url_size) * self.pairing)

    def group_verify_fast_revocation(self) -> float:
        """6 exponentiations + 5 pairings (the O(1) variant, V.C)."""
        return 6 * self.exponentiation + 5 * self.pairing

    def puzzle_solve(self, difficulty_bits: int) -> float:
        """Expected brute-force time: 2^bits hash evaluations."""
        return (1 << difficulty_bits) * self.hash_op

    def puzzle_verify(self) -> float:
        return self.hash_op

    def beacon_cost(self) -> float:
        """Router-side beacon signing."""
        return self.ecdsa_sign

    def beacon_check(self) -> float:
        """User-side beacon validation: cert + CRL + URL + beacon sigs."""
        return 4 * self.ecdsa_verify

    @classmethod
    def calibrate(cls, preset: str = "SS512",
                  repeats: int = 3) -> "CostModel":
        """Build a cost model from THIS host's measured primitives.

        Runs each primitive ``repeats`` times and takes the minimum, so
        simulated router CPU budgets reflect the machine the benchmarks
        actually ran on rather than the shipped defaults.
        """
        import hashlib
        import random

        from repro.pairing import PairingGroup
        from repro.sig.curves import SECP160R1
        from repro.sig.ecdsa import ecdsa_generate

        group = PairingGroup(preset)
        rng = random.Random(0xCA11B)
        scalar = group.random_scalar(rng)

        def best(fn) -> float:
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        pairing = best(lambda: group.pair(group.g1, group.g2))
        exponentiation = best(lambda: group.g1 ** scalar)
        hash_op = best(lambda: hashlib.sha256(b"calibrate").digest())
        keypair = ecdsa_generate(SECP160R1, rng=rng)
        signature = keypair.sign(b"calibrate")
        ecdsa_sign = best(lambda: keypair.sign(b"calibrate"))
        ecdsa_verify = best(
            lambda: keypair.public.verify(b"calibrate", signature))
        return cls(pairing=pairing, exponentiation=exponentiation,
                   hash_op=hash_op, ecdsa_sign=ecdsa_sign,
                   ecdsa_verify=ecdsa_verify)

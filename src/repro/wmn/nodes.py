"""Simulator nodes wrapping the PEACE entities.

:class:`SimMeshRouter` and :class:`SimUser` connect the pure protocol
engines to the radio medium and the event loop.  Two times coexist:

* **wall time** -- the real cryptography actually runs (accept/reject
  decisions are genuine), but its host-machine duration is irrelevant;
* **virtual CPU time** -- routers charge their simulated CPU according
  to the :class:`~repro.wmn.costmodel.CostModel` (operation counts from
  the paper), which is what the DoS experiment measures.

Routers serve requests from a bounded FIFO through a single virtual
CPU; a flood of expensive-to-verify requests therefore delays or drops
legitimate ones exactly as Section V.A describes.
"""

from __future__ import annotations

import random
from collections import deque
from contextlib import nullcontext
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.core.messages import (
    AccessConfirm,
    AccessRequest,
    Beacon,
    DataPacket,
)
from repro.core.protocols.session import SecureSession
from repro.core.protocols.user_router import Retransmitter, RetryPolicy
from repro.core.router import MeshRouter
from repro.core.user import NetworkUser
from repro.errors import DegradedModeError, ProtocolError, ReproError, \
    SessionError, SimulationError
from repro.wmn.costmodel import CostModel
from repro.wmn.radio import Frame, Position, RadioMedium
from repro.wmn.simclock import EventLoop


# -- session-payload envelopes -------------------------------------------
#
# Inside every session DataPacket travels a one-byte-tagged envelope:
# ENV_UPLINK is Internet-bound traffic terminating at the router's
# wired side; ENV_TO_SESSION asks the serving router to forward to
# another user's (anonymous) session, possibly across the backbone;
# ENV_FROM_SESSION is the matching downlink the destination user sees.

ENV_UPLINK = 0
ENV_TO_SESSION = 1
ENV_FROM_SESSION = 2


def pack_uplink(payload: bytes) -> bytes:
    from repro.core.wire import Writer
    return Writer().u8(ENV_UPLINK).var(payload).done()


def pack_to_session(dst_session: bytes, payload: bytes) -> bytes:
    from repro.core.wire import Writer
    return (Writer().u8(ENV_TO_SESSION).var(dst_session)
            .var(payload).done())


def pack_from_session(src_session: bytes, payload: bytes) -> bytes:
    from repro.core.wire import Writer
    return (Writer().u8(ENV_FROM_SESSION).var(src_session)
            .var(payload).done())


def unpack_envelope(envelope: bytes):
    """Return ``(kind, fields)``: payload for UPLINK, (peer session,
    payload) tuples for the session-addressed kinds."""
    from repro.core.wire import Reader
    reader = Reader(envelope)
    kind = reader.u8()
    if kind == ENV_UPLINK:
        payload = reader.var()
        reader.expect_end()
        return kind, payload
    if kind in (ENV_TO_SESSION, ENV_FROM_SESSION):
        peer_session = reader.var()
        payload = reader.var()
        reader.expect_end()
        return kind, (peer_session, payload)
    raise ProtocolError(f"unknown envelope kind {kind}")


class SimNode:
    """Base class: a positioned, radio-attached node."""

    def __init__(self, node_id: str, position: Position,
                 loop: EventLoop, radio: RadioMedium,
                 tx_range: Optional[float] = None) -> None:
        self.node_id = node_id
        self.position = position
        self.loop = loop
        self.radio = radio
        radio.attach(self, tx_range=tx_range)

    def deliver(self, frame: Frame) -> None:  # pragma: no cover - override
        raise NotImplementedError

    def send(self, frame: Frame, tx_range: Optional[float] = None) -> None:
        self.radio.transmit(frame, tx_range=tx_range)


class SimMeshRouter(SimNode):
    """A mesh router: beacons, handshakes, uplink data sink."""

    def __init__(self, router: MeshRouter, position: Position,
                 loop: EventLoop, radio: RadioMedium,
                 cost_model: Optional[CostModel] = None,
                 beacon_interval: float = 5.0,
                 list_refresh_period: float = 600.0,
                 queue_limit: int = 64,
                 access_range: float = 350.0,
                 backbone=None, directory=None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(router.router_id, position, loop, radio,
                         tx_range=access_range)
        self.router = router
        self.cost_model = cost_model or CostModel()
        self.beacon_interval = beacon_interval
        self.queue_limit = queue_limit
        self.backbone = backbone
        self.directory = directory
        self.rng = rng or random.Random(1)
        self._queue: Deque[Tuple[Frame, float]] = deque()
        self._cpu_draining = False
        self._session_nodes: Dict[bytes, str] = {}
        self.metrics = {
            "beacons_sent": 0, "beacons_suppressed": 0,
            "requests_enqueued": 0,
            "requests_dropped_queue": 0, "handshakes_completed": 0,
            "handshakes_rejected": 0, "duplicate_requests": 0,
            "data_delivered": 0,
            "data_rejected": 0, "cpu_busy_seconds": 0.0,
            "forwarded_local": 0, "forwarded_backbone": 0,
            "forward_failed": 0, "downlinks_sent": 0,
        }
        self.handshake_waits: List[float] = []
        self.crashed = False
        loop.schedule_every(beacon_interval, self._beacon,
                            jitter_rng=self.rng)
        # NOT ``self.router.refresh_lists``: a restart swaps the router
        # object, and a bound method would keep refreshing the dead one.
        loop.schedule_every(list_refresh_period, self._refresh_lists,
                            jitter_rng=self.rng)
        if backbone is not None:
            backbone.attach_router(self.node_id, self._on_backbone_frame)

    # -- crash / restart lifecycle ----------------------------------------

    def crash(self) -> None:
        """Kill this router: radio deaf, CPU dark, queue gone.

        The ``MeshRouter`` object is abandoned (its in-memory sessions,
        caches, and duplicate-suppression state die with it); whatever
        it journaled through its durable store is all a restart gets.
        """
        self.crashed = True
        self._queue.clear()
        self._cpu_draining = False
        self._session_nodes.clear()
        self.metrics["crashes"] = self.metrics.get("crashes", 0) + 1

    def restart(self, router: MeshRouter) -> None:
        """Boot back up with ``router`` (recovered from durable state)."""
        if router.router_id != self.node_id:
            raise SimulationError(
                f"restarting {self.node_id} with router object "
                f"{router.router_id!r}")
        self.router = router
        self.crashed = False
        self.metrics["restarts"] = self.metrics.get("restarts", 0) + 1

    def _refresh_lists(self) -> None:
        if not self.crashed:
            self.router.refresh_lists()

    # -- beaconing ------------------------------------------------------

    def _beacon(self) -> None:
        if self.crashed:
            return
        try:
            beacon = self.router.make_beacon()
        except DegradedModeError:
            # Past the staleness grace window: stop advertising rather
            # than invite handshakes we would refuse anyway.
            self.metrics["beacons_suppressed"] += 1
            return
        self.metrics["beacons_sent"] += 1
        self.send(Frame("M.1", beacon.encode(), src=self.node_id))

    # -- frame intake ---------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        if self.crashed:
            return
        if frame.dst not in (None, self.node_id):
            return
        if frame.kind == "M.2":
            if len(self._queue) >= self.queue_limit:
                self.metrics["requests_dropped_queue"] += 1
                return
            self._queue.append((frame, self.loop.now))
            self.metrics["requests_enqueued"] += 1
            self._drain_cpu()
        elif frame.kind == "DAT":
            self._handle_data(frame)

    # -- virtual CPU ------------------------------------------------------

    def _drain_cpu(self) -> None:
        if self._cpu_draining or not self._queue:
            return
        self._cpu_draining = True
        frame, enqueued_at = self._queue.popleft()
        service_time = self._service_request(frame, enqueued_at)
        self.metrics["cpu_busy_seconds"] += service_time

        def finish() -> None:
            self._cpu_draining = False
            self._drain_cpu()

        self.loop.schedule(service_time, finish)

    def _service_request(self, frame: Frame, enqueued_at: float) -> float:
        """Process one M.2; returns the virtual CPU time consumed.

        A frame carrying a :class:`~repro.obs.spans.TraceContext` gets
        a ``router.service`` span parented under the *sender's*
        handshake span -- the cross-node stitch; the engine's
        precheck/verify/accept spans nest inside via the thread stack.
        """
        reg = obs.active()
        if reg is None or frame.trace is None:
            return self._service_one(frame, enqueued_at)
        with reg.span("router.service", context=frame.trace,
                      router=self.node_id):
            return self._service_one(frame, enqueued_at)

    def _service_one(self, frame: Frame, enqueued_at: float) -> float:
        policy = self.router.engine.dos_policy
        puzzle_active = (policy is not None
                         and policy.under_attack(self.loop.now))
        try:
            request = AccessRequest.decode(self.router.operator.group,
                                           frame.payload)
        except ReproError:
            self.metrics["handshakes_rejected"] += 1
            return self.cost_model.hash_op
        dup_before = self.router.engine.stats["duplicate_requests"]
        try:
            confirm, _session = self.router.process_request(request)
        except ReproError as exc:
            self.metrics["handshakes_rejected"] += 1
            # A failed puzzle check is cheap; a failed signature is not.
            from repro.errors import PuzzleError, ReplayError
            if isinstance(exc, (DegradedModeError, PuzzleError,
                                ReplayError)):
                return self.cost_model.puzzle_verify()
            return self.cost_model.group_verify(
                len(self.router.url.tokens))
        if self.router.engine.stats["duplicate_requests"] > dup_before:
            # Retransmitted (M.2): re-serve the cached (M.3) without a
            # second handshake, second session, or verification charge.
            self.metrics["duplicate_requests"] += 1
            self.send(Frame("M.3", confirm.encode(), src=self.node_id,
                            dst=frame.src, trace=frame.trace))
            return self.cost_model.hash_op
        self.metrics["handshakes_completed"] += 1
        self.handshake_waits.append(self.loop.now - enqueued_at)
        cost = self.cost_model.group_verify(len(self.router.url.tokens))
        if puzzle_active:
            cost += self.cost_model.puzzle_verify()
        self._session_nodes[_session.session_id] = frame.src
        if self.directory is not None:
            self.directory.publish(_session.session_id, self.node_id)
        self.send(Frame("M.3", confirm.encode(), src=self.node_id,
                        dst=frame.src, trace=frame.trace))
        return cost

    # -- data plane ---------------------------------------------------------

    def _handle_data(self, frame: Frame) -> None:
        try:
            packet = DataPacket.decode(frame.payload)
            session = self.router.engine.sessions.get(packet.session_id)
            if session is None:
                raise SessionError("unknown session")
            envelope = session.receive(packet)
            kind, fields = unpack_envelope(envelope)
        except ReproError:
            self.metrics["data_rejected"] += 1
            return
        if kind == ENV_UPLINK:
            # Terminal at the wired side: counts as delivered uplink.
            self.metrics["data_delivered"] += 1
        elif kind == ENV_TO_SESSION:
            dst_session, payload = fields
            self.metrics["data_delivered"] += 1
            self._forward_to_session(packet.session_id, dst_session,
                                     payload)
        else:
            self.metrics["data_rejected"] += 1

    def _forward_to_session(self, src_session: bytes, dst_session: bytes,
                            payload: bytes) -> None:
        """User-to-user traffic: local downlink or backbone forward."""
        if dst_session in self.router.engine.sessions:
            self.metrics["forwarded_local"] += 1
            self._downlink(dst_session, src_session, payload)
            return
        if self.backbone is None or self.directory is None:
            self.metrics["forward_failed"] += 1
            return
        location = self.directory.locate(dst_session)
        if location is None or location == self.node_id:
            self.metrics["forward_failed"] += 1
            return
        from repro.wmn.backbone import BackboneFrame
        from repro.core.wire import Writer
        inner = (Writer().var(dst_session).var(src_session)
                 .var(payload).done())
        if self.backbone.send(BackboneFrame(self.node_id, location,
                                            inner)):
            self.metrics["forwarded_backbone"] += 1
        else:
            self.metrics["forward_failed"] += 1

    def _on_backbone_frame(self, frame) -> None:
        if self.crashed:
            self.metrics["forward_failed"] += 1
            return
        from repro.core.wire import Reader
        try:
            reader = Reader(frame.payload)
            dst_session = reader.var()
            src_session = reader.var()
            payload = reader.var()
            reader.expect_end()
        except ReproError:
            self.metrics["forward_failed"] += 1
            return
        if dst_session not in self.router.engine.sessions:
            self.metrics["forward_failed"] += 1
            return
        self._downlink(dst_session, src_session, payload)

    def _downlink(self, dst_session: bytes, src_session: bytes,
                  payload: bytes) -> None:
        """One-hop downlink to the user holding ``dst_session``."""
        node_id = self._session_nodes.get(dst_session)
        session = self.router.engine.sessions.get(dst_session)
        if node_id is None or session is None:
            self.metrics["forward_failed"] += 1
            return
        envelope = pack_from_session(src_session, payload)
        packet = session.send(envelope)
        self.metrics["downlinks_sent"] += 1
        self.send(Frame("DAT", packet.encode(), src=self.node_id,
                        dst=node_id))


class SimUser(SimNode):
    """A mobile user: connects, sends uplink data, can relay for peers."""

    def __init__(self, user: NetworkUser, node_id: str, position: Position,
                 loop: EventLoop, radio: RadioMedium,
                 cost_model: Optional[CostModel] = None,
                 context: Optional[str] = None,
                 auto_connect: bool = True,
                 data_interval: Optional[float] = None,
                 data_payload: bytes = b"x" * 256,
                 user_range: float = 150.0,
                 boost_range: float = 400.0,
                 connect_timeout: Optional[float] = 30.0,
                 reconnect_interval: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=user_range)
        self.user = user
        self.cost_model = cost_model or CostModel()
        self.context = context
        self.auto_connect = auto_connect
        self.data_interval = data_interval
        self.data_payload = data_payload
        self.user_range = user_range
        self.boost_range = boost_range
        self.connect_timeout = connect_timeout
        self.retry_policy = retry_policy
        self._retx: Optional[Retransmitter] = None
        self.rng = rng or random.Random(2)
        if reconnect_interval is not None:
            loop.schedule_every(reconnect_interval, self.disconnect,
                                jitter_rng=self.rng)

        self.state = "idle"            # idle | connecting | connected
        self.router_id: Optional[str] = None
        self.session: Optional[SecureSession] = None
        self._pending = None
        self.inbox: List[Tuple[bytes, bytes]] = []   # (src session, data)
        self.metrics = {
            "beacons_heard": 0, "beacons_rejected": 0,
            "connect_attempts": 0, "connected": 0,
            "retransmits": 0, "retry_give_ups": 0,
            "data_sent": 0, "data_received": 0,
            "auth_delay_sum": 0.0, "puzzles_solved": 0,
        }
        self.auth_delays: List[float] = []
        self._attempt_started = 0.0
        # Causal tracing: one root span per handshake *attempt*, opened
        # on the beacon that triggers it and finished on connect /
        # timeout / give-up.  Child spans on this node nest under it
        # via explicit contexts (the event loop interleaves nodes, so
        # the thread stack cannot be trusted across callbacks); the M.2
        # frame carries its context to the router.
        self._hs_span = None
        self._attempt_seq = 0

    # -- frame intake --------------------------------------------------------

    def deliver(self, frame: Frame) -> None:
        if frame.kind == "M.1" and frame.dst is None:
            self._on_beacon(frame)
        elif frame.kind == "M.3" and frame.dst == self.node_id:
            self._on_confirm(frame)
        elif frame.kind == "DAT" and frame.dst == self.node_id:
            self._on_downlink(frame)

    # -- handshake ------------------------------------------------------------

    def _on_beacon(self, frame: Frame) -> None:
        self.metrics["beacons_heard"] += 1
        if not self.auto_connect or self.state != "idle":
            return
        reg = obs.active()
        root = None
        if reg is not None:
            # Deterministic per-attempt trace id: replayable runs yield
            # replayable trace names.
            self._attempt_seq += 1
            root = reg.start_span(
                "handshake",
                trace_id=f"{self.node_id}#{self._attempt_seq}",
                user=self.node_id)
        try:
            with (reg.span("user.process_beacon", context=root.context)
                  if root is not None else nullcontext()):
                beacon = Beacon.decode(self.user.group,
                                       self.user.operator_public_key.curve,
                                       frame.payload)
                request, pending = self.user.connect_to_router(
                    beacon, self.context)
        except ReproError:
            self.metrics["beacons_rejected"] += 1
            if root is not None:
                root.set_attr("outcome", "beacon_rejected")
                root.finish()
            return
        if root is not None:
            root.set_attr("router", beacon.router_id)
            self._hs_span = root
        if beacon.puzzle is not None:
            self.metrics["puzzles_solved"] += 1
        self._pending = pending
        self.router_id = beacon.router_id
        self.state = "connecting"
        self.metrics["connect_attempts"] += 1
        self._attempt_started = self.loop.now
        # Solving the puzzle costs the user virtual time before sending.
        delay = (self.cost_model.group_sign()
                 + self.cost_model.beacon_check())
        if beacon.puzzle is not None:
            delay += self.cost_model.puzzle_solve(
                beacon.puzzle.difficulty_bits)
        payload = request.encode()
        router_id = self.router_id
        m2_trace = root.context if root is not None else None

        def send_m2() -> None:
            self.send(Frame("M.2", payload, src=self.node_id,
                            dst=router_id, trace=m2_trace),
                      tx_range=self.boost_range)

        if self.retry_policy is None:
            self.loop.schedule(delay, send_m2)
        else:
            # Retransmit the identical wire bytes on timeout; the
            # router's duplicate cache makes late copies idempotent.
            retx = Retransmitter(
                send=send_m2, schedule=self.loop.schedule,
                policy=self.retry_policy, rng=self.rng,
                on_retry=self._note_retransmit,
                on_give_up=self._note_give_up)
            self._retx = retx

            def start() -> None:
                # The attempt may have been abandoned (timeout or a
                # newer beacon) while the crypto delay elapsed.
                if self.state == "connecting" and self._retx is retx:
                    retx.start()

            self.loop.schedule(delay, start)
        if self.connect_timeout is not None:
            attempt = self._attempt_started
            self.loop.schedule(self.connect_timeout,
                               lambda: self._maybe_timeout(attempt))

    def _note_retransmit(self) -> None:
        self.metrics["retransmits"] += 1
        if self._hs_span is not None:
            reg = obs.active()
            if reg is not None:
                # Instantaneous marker span: the retry itself takes no
                # virtual time, but the trace should show the attempt.
                retries = self._retx.retries if self._retx is not None \
                    else 0
                reg.start_span("handshake.retransmit",
                               context=self._hs_span.context,
                               attempt=retries).finish()

    def _finish_handshake_span(self, outcome: str) -> None:
        """Close the attempt's root span with its outcome (idempotent)."""
        if self._hs_span is not None:
            self._hs_span.set_attr("outcome", outcome)
            self._hs_span.finish()
            self._hs_span = None

    def _note_give_up(self) -> None:
        """Retry budget exhausted: abandon the attempt cleanly."""
        self.metrics["retry_give_ups"] += 1
        self._finish_handshake_span("give_up")
        if self.state == "connecting":
            self.disconnect()

    def _maybe_timeout(self, attempt_started: float) -> None:
        """Abandon a handshake that never completed (phisher, overload)."""
        if (self.state == "connecting"
                and self._attempt_started == attempt_started):
            self.metrics.setdefault("connect_timeouts", 0)
            self.metrics["connect_timeouts"] += 1
            self._finish_handshake_span("timeout")
            self.disconnect()

    def _on_confirm(self, frame: Frame) -> None:
        if self.state != "connecting" or self._pending is None:
            return
        reg = obs.active()
        try:
            with (reg.span("user.confirm", context=self._hs_span.context)
                  if reg is not None and self._hs_span is not None
                  else nullcontext()):
                confirm = AccessConfirm.decode(self.user.group,
                                               frame.payload)
                session = self.user.complete_router_handshake(
                    self._pending, confirm)
        except ReproError:
            return
        if self._retx is not None:
            self._retx.ack()
            self._retx = None
        self.session = session
        self.state = "connected"
        self.metrics["connected"] += 1
        delay = self.loop.now - self._attempt_started
        self.auth_delays.append(delay)
        self.metrics["auth_delay_sum"] += delay
        obs.counter("wmn.handshakes_total")
        obs.observe("wmn.auth_delay_seconds", delay)
        self._finish_handshake_span("connected")
        self._pending = None
        if self.data_interval is not None:
            self.loop.schedule_every(self.data_interval, self._send_data,
                                     jitter_rng=self.rng)

    # -- data plane ------------------------------------------------------------

    def _send_data(self) -> None:
        if self.state != "connected" or self.session is None:
            return
        packet = self.session.send(pack_uplink(self.data_payload))
        self.metrics["data_sent"] += 1
        self.send(Frame("DAT", packet.encode(), src=self.node_id,
                        dst=self.router_id),
                  tx_range=self.boost_range)

    def send_to_session(self, dst_session_id: bytes,
                        payload: bytes) -> None:
        """User-to-user traffic via the serving router (paper III.A:
        all traffic goes through a mesh router).  The destination is an
        anonymous session handle, never an identity."""
        if self.state != "connected" or self.session is None:
            raise ProtocolError(f"{self.node_id} has no router session")
        packet = self.session.send(
            pack_to_session(dst_session_id, payload))
        self.metrics["data_sent"] += 1
        self.send(Frame("DAT", packet.encode(), src=self.node_id,
                        dst=self.router_id),
                  tx_range=self.boost_range)

    def _on_downlink(self, frame: Frame) -> None:
        if self.session is None:
            return
        try:
            packet = DataPacket.decode(frame.payload)
            envelope = self.session.receive(packet)
            kind, fields = unpack_envelope(envelope)
        except ReproError:
            return
        if kind == ENV_FROM_SESSION:
            src_session, payload = fields
            self.inbox.append((src_session, payload))
            self.metrics["data_received"] += 1

    # -- helpers -----------------------------------------------------------

    def disconnect(self) -> None:
        """Drop the current session and return to idle."""
        if self._retx is not None:
            self._retx.cancel()
            self._retx = None
        self._finish_handshake_span("disconnected")
        self.state = "idle"
        self.session = None
        self._pending = None
        self.router_id = None

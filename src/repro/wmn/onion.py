"""Layered anonymous forwarding over PEACE peer sessions.

The paper closes by noting PEACE "lays a solid background for designing
other upper layer security and privacy solutions, e.g., anonymous
communication".  This module builds that upper layer: an onion-style
circuit over the pairwise session keys users already share after their
anonymous mutual authentication (Section IV.C).

Each hop of a circuit holds one symmetric layer key, agreed hop-by-hop
through the existing peer sessions (so key agreement inherits PEACE's
anonymity: a hop knows its predecessor and successor *radios*, never
identities).  A message is wrapped once per hop, innermost layer first;
every relay peels exactly one layer, learning only the next hop.  The
entry node never appears in the exit payload, and no single relay sees
both endpoints -- the standard onion property, here bootstrapped
entirely from PEACE credentials.

The implementation is transport-agnostic: :class:`OnionCircuit` does
the cryptography, and :func:`route_through` drives it over in-memory
hops (used by tests and the example).  Wiring it over the simulated
radio is a straight composition with :class:`~repro.wmn.relay.RelayUser`.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.wire import Reader, Writer
from repro.crypto.aead import AeadKey
from repro.crypto.kdf import hkdf
from repro.errors import ProtocolError, SessionError


@dataclass(frozen=True)
class HopSpec:
    """One relay of a circuit: an address and the layer key."""

    node_id: str
    layer_key: bytes   # 32 bytes


def derive_layer_key(session_key_material: bytes,
                     circuit_id: bytes) -> bytes:
    """Derive a circuit layer key from a hop's peer-session secret.

    In deployment the initiator sends each hop a fresh layer-key seed
    through the authenticated peer session; deriving from the session's
    own key material models that without another wire format.
    """
    return hkdf(session_key_material, 32, salt=circuit_id,
                info=b"repro/peace/onion-layer")


class OnionCircuit:
    """Initiator-side circuit: wrap outbound, unwrap replies."""

    def __init__(self, hops: Sequence[HopSpec],
                 circuit_id: Optional[bytes] = None) -> None:
        if not hops:
            raise ProtocolError("a circuit needs at least one hop")
        self.hops = list(hops)
        self.circuit_id = (circuit_id if circuit_id is not None
                           else secrets.token_bytes(8))
        self._keys = [AeadKey(hop.layer_key) for hop in self.hops]

    # -- outbound -----------------------------------------------------------

    def wrap(self, destination: str, payload: bytes) -> bytes:
        """Build the onion: innermost = exit layer, outermost = hop 1.

        Each layer seals ``(next_hop, inner)`` so a relay learns only
        where to send the peeled remainder.  The exit layer carries the
        final destination and the cleartext payload.
        """
        blob = (Writer().string(destination).var(payload).done())
        # Work from the exit hop inward to the first hop.
        for position in range(len(self.hops) - 1, -1, -1):
            next_hop = (self.hops[position + 1].node_id
                        if position + 1 < len(self.hops) else "")
            body = Writer().string(next_hop).var(blob).done()
            blob = self._keys[position].seal(
                body, aad=self._aad(position))
        return blob

    def unwrap_reply(self, blob: bytes) -> bytes:
        """Open a reply that each hop sealed on the way back (hop 1
        outermost, exit innermost)."""
        for position, key in enumerate(self._keys):
            try:
                blob = key.open(blob, aad=self._aad(position,
                                                    reply=True))
            except SessionError as exc:
                raise SessionError(
                    f"reply layer {position} failed") from exc
        return blob

    def _aad(self, position: int, reply: bool = False) -> bytes:
        direction = b"reply" if reply else b"fwd"
        return (Writer().raw(b"onion").var(self.circuit_id)
                .u32(position).raw(direction).done())


class OnionRelay:
    """One relay's view: a single layer key per circuit."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self._circuits: Dict[bytes, Tuple[AeadKey, int]] = {}
        self.peeled = 0

    def install_circuit(self, circuit_id: bytes, layer_key: bytes,
                        position: int) -> None:
        """Accept a circuit layer (arrives via the peer session)."""
        self._circuits[circuit_id] = (AeadKey(layer_key), position)

    def peel(self, circuit_id: bytes, blob: bytes) -> Tuple[str, bytes]:
        """Remove this relay's layer; returns (next_hop, remainder).

        ``next_hop == ""`` means this relay is the exit and the
        remainder is the (destination, payload) record.
        """
        entry = self._circuits.get(circuit_id)
        if entry is None:
            raise ProtocolError(
                f"{self.node_id} holds no key for this circuit")
        key, position = entry
        body = key.open(blob, aad=(Writer().raw(b"onion")
                                   .var(circuit_id).u32(position)
                                   .raw(b"fwd").done()))
        reader = Reader(body)
        next_hop = reader.string()
        remainder = reader.var()
        reader.expect_end()
        self.peeled += 1
        return next_hop, remainder

    def seal_reply(self, circuit_id: bytes, blob: bytes) -> bytes:
        """Add this relay's layer to a reply heading back."""
        entry = self._circuits.get(circuit_id)
        if entry is None:
            raise ProtocolError(
                f"{self.node_id} holds no key for this circuit")
        key, position = entry
        return key.seal(blob, aad=(Writer().raw(b"onion")
                                   .var(circuit_id).u32(position)
                                   .raw(b"reply").done()))


def open_exit_record(remainder: bytes) -> Tuple[str, bytes]:
    """Parse the exit layer's (destination, payload) record."""
    reader = Reader(remainder)
    destination = reader.string()
    payload = reader.var()
    reader.expect_end()
    return destination, payload


def build_circuit(initiator_sessions: Dict[str, bytes],
                  path: Sequence[str],
                  relays: Dict[str, OnionRelay],
                  circuit_id: Optional[bytes] = None) -> OnionCircuit:
    """Establish a circuit along ``path``.

    ``initiator_sessions`` maps hop node-id -> that peer session's key
    material (32 bytes) as held by the initiator; each relay installs
    the layer key derived from the same material on its side --
    modelling the in-band layer-key agreement over the authenticated
    peer sessions.
    """
    circuit_id = (circuit_id if circuit_id is not None
                  else secrets.token_bytes(8))
    hops = []
    for position, node_id in enumerate(path):
        material = initiator_sessions.get(node_id)
        if material is None:
            raise ProtocolError(
                f"no peer session with hop {node_id}")
        layer_key = derive_layer_key(material, circuit_id)
        relay = relays.get(node_id)
        if relay is None:
            raise ProtocolError(f"unknown relay {node_id}")
        relay.install_circuit(circuit_id, layer_key, position)
        hops.append(HopSpec(node_id=node_id, layer_key=layer_key))
    return OnionCircuit(hops, circuit_id=circuit_id)


def route_through(circuit: OnionCircuit,
                  relays: Dict[str, OnionRelay],
                  destination: str, payload: bytes,
                  deliver: Callable[[str, bytes], bytes]
                  ) -> Tuple[bytes, List[str]]:
    """Drive a message through the circuit and a reply back.

    ``deliver(destination, payload)`` is the exit-side application (it
    returns the reply bytes).  Returns ``(reply_plaintext, trail)``
    where ``trail`` lists the relays traversed, for assertions about
    what each hop could observe.
    """
    blob = circuit.wrap(destination, payload)
    trail: List[str] = []
    position = 0
    node_id = circuit.hops[0].node_id
    while True:
        relay = relays[node_id]
        trail.append(node_id)
        next_hop, blob = relay.peel(circuit.circuit_id, blob)
        if next_hop == "":
            final_destination, clear_payload = open_exit_record(blob)
            reply = deliver(final_destination, clear_payload)
            break
        node_id = next_hop
        position += 1
    # Reply path: layers added exit-first, then each hop outward.
    for hop_id in reversed(trail):
        reply = relays[hop_id].seal_reply(circuit.circuit_id, reply)
    return circuit.unwrap_reply(reply), trail

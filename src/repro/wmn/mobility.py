"""Random-waypoint mobility for layer-3 users.

Users pick a uniformly random destination in the area, walk toward it
at a speed drawn from ``[speed_min, speed_max]``, pause, and repeat.
Position updates are driven by the event loop at ``tick`` granularity.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional, Tuple

from repro.wmn.simclock import EventLoop

Position = Tuple[float, float]


class RandomWaypoint:
    """One user's movement process."""

    def __init__(self, loop: EventLoop, area_side: float,
                 get_position: Callable[[], Position],
                 set_position: Callable[[Position], None],
                 speed_min: float = 0.5, speed_max: float = 2.0,
                 pause: float = 20.0, tick: float = 1.0,
                 rng: Optional[random.Random] = None) -> None:
        self.loop = loop
        self.area_side = area_side
        self.get_position = get_position
        self.set_position = set_position
        self.speed_min = speed_min
        self.speed_max = speed_max
        self.pause = pause
        self.tick = tick
        self.rng = rng or random.Random(0)
        self._target: Optional[Position] = None
        self._speed = 0.0
        self._paused_until = 0.0
        self.distance_travelled = 0.0

    def start(self) -> None:
        """Begin the movement process."""
        self._choose_target()
        self.loop.schedule(self.tick, self._step)

    def _choose_target(self) -> None:
        self._target = (self.rng.uniform(0, self.area_side),
                        self.rng.uniform(0, self.area_side))
        self._speed = self.rng.uniform(self.speed_min, self.speed_max)

    def _step(self) -> None:
        now = self.loop.now
        if now >= self._paused_until:
            position = self.get_position()
            target = self._target
            gap = math.dist(position, target)
            stride = self._speed * self.tick
            if gap <= stride:
                self.set_position(target)
                self.distance_travelled += gap
                self._paused_until = now + self.pause
                self._choose_target()
            else:
                frac = stride / gap
                self.set_position((
                    position[0] + (target[0] - position[0]) * frac,
                    position[1] + (target[1] - position[1]) * frac))
                self.distance_travelled += stride
        self.loop.schedule(self.tick, self._step)

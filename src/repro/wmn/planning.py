"""Coverage analysis and router-placement planning.

Section III.A assumes NO "deploys a number of APs and mesh routers and
forms a well connected WMN that covers the whole area of a city"; this
module gives the operator the tooling behind that assumption:

* :func:`coverage_fraction` -- what share of the area lies within some
  router's access radius (grid sampling);
* :func:`dead_zones` -- the uncovered sample points;
* :func:`plan_additional_routers` -- greedy placement of extra routers
  that maximizes marginal coverage, the classic disk-cover heuristic;
* :func:`connectivity_after` -- whether the backbone stays connected
  when given routers fail (the paper's redundancy assumption: losing
  individual routers "will not affect network connection").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.errors import SimulationError
from repro.wmn.topology import MetroTopology

Position = Tuple[float, float]


def _grid(area_side: float, resolution: int) -> List[Position]:
    if resolution < 2:
        raise SimulationError("grid resolution must be at least 2")
    step = area_side / (resolution - 1)
    return [(col * step, row * step)
            for row in range(resolution) for col in range(resolution)]


def _covered(point: Position, routers: Iterable[Position],
             radius: float) -> bool:
    return any(math.dist(point, router) <= radius for router in routers)


def coverage_fraction(router_positions: Sequence[Position],
                      area_side: float, access_range: float,
                      resolution: int = 25) -> float:
    """Fraction of grid sample points within some router's radius."""
    points = _grid(area_side, resolution)
    covered = sum(1 for point in points
                  if _covered(point, router_positions, access_range))
    return covered / len(points)


def dead_zones(router_positions: Sequence[Position], area_side: float,
               access_range: float,
               resolution: int = 25) -> List[Position]:
    """Sample points outside every router's radius."""
    return [point for point in _grid(area_side, resolution)
            if not _covered(point, router_positions, access_range)]


def plan_additional_routers(router_positions: Sequence[Position],
                            area_side: float, access_range: float,
                            count: int,
                            resolution: int = 25) -> List[Position]:
    """Greedy disk cover: place ``count`` routers, each at the candidate
    point covering the most currently-uncovered samples.

    Candidates are the grid points themselves -- coarse but effective,
    and deterministic.  Returns the chosen positions (possibly fewer
    than ``count`` if full coverage is reached early).
    """
    placed: List[Position] = []
    existing = list(router_positions)
    uncovered = set(dead_zones(existing, area_side, access_range,
                               resolution))
    candidates = _grid(area_side, resolution)
    for _ in range(count):
        if not uncovered:
            break
        best, best_gain = None, -1
        for candidate in candidates:
            gain = sum(1 for point in uncovered
                       if math.dist(point, candidate) <= access_range)
            if gain > best_gain:
                best, best_gain = candidate, gain
        if best is None or best_gain == 0:
            break
        placed.append(best)
        uncovered = {point for point in uncovered
                     if math.dist(point, best) > access_range}
    return placed


def connectivity_after(topology: MetroTopology,
                       failed_routers: Sequence[str]) -> Dict[str, float]:
    """Backbone health after removing ``failed_routers``.

    Returns the surviving node count, whether the remainder is
    connected, and the fraction of surviving routers that can still
    reach a (surviving) gateway -- the operational meaning of the
    paper's redundancy assumption.
    """
    graph = topology.backbone.copy()
    graph.remove_nodes_from(failed_routers)
    gateways = [g for g in topology.gateway_ids if g in graph]
    if len(graph) == 0:
        return {"survivors": 0.0, "connected": 0.0,
                "gateway_reachable_fraction": 0.0}
    reachable = set()
    for gateway in gateways:
        reachable.update(nx.node_connected_component(graph, gateway))
    return {
        "survivors": float(len(graph)),
        "connected": float(nx.is_connected(graph)),
        "gateway_reachable_fraction": len(reachable) / len(graph),
    }

"""Metropolitan WMN simulator substrate.

The paper's evaluation is analytic; this package turns each of its
network-behaviour arguments into a measurable experiment.  It provides a
discrete-event loop, a radio medium with range / loss / eavesdropping,
the three-layer metropolitan topology of Fig. 1, mobility, simulator
nodes wrapping the PEACE entities, multi-hop relaying over
authenticated peer sessions, and a family of adversary nodes.
"""

from repro.wmn.simclock import EventLoop, SimClock
from repro.wmn.gossip import ListGossip
from repro.wmn.radio import Frame, RadioMedium
from repro.wmn.topology import MetroTopology, TopologyConfig, build_topology
from repro.wmn.costmodel import CostModel
from repro.wmn.nodes import SimMeshRouter, SimUser
from repro.wmn.scenario import Scenario, ScenarioConfig

__all__ = [
    "CostModel",
    "EventLoop",
    "Frame",
    "ListGossip",
    "MetroTopology",
    "RadioMedium",
    "Scenario",
    "ScenarioConfig",
    "SimClock",
    "SimMeshRouter",
    "SimUser",
    "TopologyConfig",
    "build_topology",
]

"""Metric aggregation across simulator nodes.

Delay samples and per-node counters accumulate locally (simulation
results must not depend on whether observability is on); the
``publish``/``counters_to_registry`` helpers push finished aggregates
onto a :mod:`repro.obs` registry so simulator output and the crypto
layer's metrics land in one snapshot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for empty input (explicit, never crashes)."""
    return sum(values) / len(values) if values else math.nan


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile in [0, 100]; NaN for empty input."""
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class HandshakeStats:
    """Authentication-delay statistics for experiment E4."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": mean(self.samples),
            "p50": percentile(self.samples, 50),
            "p95": percentile(self.samples, 95),
            "max": max(self.samples) if self.samples else math.nan,
        }

    def publish(self, registry: Optional["obs.MetricsRegistry"] = None,
                name: str = "wmn.auth_delay_seconds") -> None:
        """Observe every sample into ``registry`` (default: ambient)."""
        registry = registry if registry is not None else obs.active()
        if registry is None:
            return
        for value in self.samples:
            registry.observe(name, value)


def merge_counters(counters: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Key-wise sum of node metric dictionaries."""
    total: Dict[str, float] = {}
    for counter in counters:
        for key, value in counter.items():
            total[key] = total.get(key, 0) + value
    return total


def counters_to_registry(counters: Dict[str, float], prefix: str,
                         registry: Optional["obs.MetricsRegistry"] = None
                         ) -> None:
    """Publish a merged counter dict as ``<prefix>.<key>`` gauges.

    Gauges, not counters: node dicts are cumulative totals, and
    re-publishing after another ``run()`` must overwrite, not double.
    """
    registry = registry if registry is not None else obs.active()
    if registry is None:
        return
    for key, value in counters.items():
        registry.gauge(f"{prefix}.{key}", float(value))

"""Adversary node models (threat model of Section III.B).

Each attacker class operationalizes one attack the paper's analysis
(Section V.A) claims PEACE defeats, so the claim becomes a measurable
outcome:

* :class:`Eavesdropper` -- passive global observer; feeds the privacy
  games (can sessions be linked from the air?).
* :class:`ReplayAttacker` -- captures (M.2) frames and replays them.
* :class:`OutsiderInjector` -- no credentials; answers beacons with
  well-formed but forged group signatures, and injects bogus data.
* :class:`RoguePhisher` -- a fake mesh router with a self-signed
  certificate trying to phish user connections.
* :class:`RevokedRouterPhisher` -- a genuinely provisioned router that
  NO has revoked; keeps beaconing with its increasingly stale CRL.
* :class:`DosFlooder` -- floods (M.2) with signatures that are
  expensive to reject, at a configurable rate and hash budget.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional, Set, Tuple

from repro.core import groupsig
from repro.core.certs import (
    CertificateRevocationList,
    RouterCertificate,
    UserRevocationList,
)
from repro.core.messages import AccessRequest, Beacon
from repro.core.router import MeshRouter
from repro.crypto import puzzles
from repro.errors import ReproError
from repro.pairing.group import PairingGroup
from repro.sig.curves import SECP160R1
from repro.sig.ecdsa import ecdsa_generate
from repro.wmn.nodes import SimNode
from repro.wmn.radio import Frame, Position, RadioMedium
from repro.wmn.simclock import EventLoop


class Eavesdropper(SimNode):
    """Hears everything in range; never transmits."""

    def __init__(self, node_id: str, position: Position, loop: EventLoop,
                 radio: RadioMedium, tx_range: float = 1e9) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=tx_range)
        self.captured: List[Tuple[float, Frame]] = []

    def deliver(self, frame: Frame) -> None:
        self.captured.append((self.loop.now, frame))

    # -- analysis helpers used by the privacy experiments -----------------

    def frames_of_kind(self, kind: str) -> List[Frame]:
        return [frame for _t, frame in self.captured if frame.kind == kind]

    def observed_session_identifiers(self, group: PairingGroup
                                     ) -> List[bytes]:
        """Extract the (g^r_j, g^r_R) identifier of every M.2 heard."""
        identifiers = []
        for frame in self.frames_of_kind("M.2"):
            try:
                request = AccessRequest.decode(group, frame.payload)
            except ReproError:
                continue
            identifiers.append(request.g_r_user.encode()
                               + request.g_r_router.encode())
        return identifiers

    def identifier_reuse(self, group: PairingGroup) -> int:
        """How many session identifiers repeat (0 = all fresh)."""
        counts = Counter(self.observed_session_identifiers(group))
        return sum(c - 1 for c in counts.values())


class ReplayAttacker(SimNode):
    """Captures M.2 frames, replays them later toward the same router."""

    def __init__(self, node_id: str, position: Position, loop: EventLoop,
                 radio: RadioMedium, replay_delay: float = 60.0,
                 tx_range: float = 400.0) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=tx_range)
        self.replay_delay = replay_delay
        self.replayed = 0

    def deliver(self, frame: Frame) -> None:
        if frame.kind != "M.2":
            return
        captured = Frame(frame.kind, frame.payload, src=self.node_id,
                         dst=frame.dst)

        def replay() -> None:
            self.replayed += 1
            self.send(captured)

        self.loop.schedule(self.replay_delay, replay)


def forge_access_request(group: PairingGroup, beacon: Beacon, now: float,
                         rng: random.Random) -> AccessRequest:
    """Forge a *well-formed* but invalid (M.2).

    Random scalars and real curve points: the router cannot reject the
    forgery without doing the full verification work -- the worst case
    for the defender, and what the DoS analysis assumes.
    """
    fake_signature = groupsig.GroupSignature(
        r=group.random_scalar(rng),
        t1=group.random_g1(rng),
        t2=group.random_g1(rng),
        c=group.random_scalar(rng),
        s_alpha=group.random_scalar(rng),
        s_x=group.random_scalar(rng),
        s_delta=group.random_scalar(rng))
    g_r_user = beacon.g ** group.random_scalar(rng)
    return AccessRequest(g_r_user=g_r_user, g_r_router=beacon.g_r_router,
                         ts2=now, group_signature=fake_signature)


class OutsiderInjector(SimNode):
    """No credentials: forges group signatures in response to beacons."""

    def __init__(self, node_id: str, position: Position, loop: EventLoop,
                 radio: RadioMedium, group: PairingGroup,
                 rng: Optional[random.Random] = None,
                 tx_range: float = 400.0) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=tx_range)
        self.group = group
        self.rng = rng or random.Random(1337)
        self.injected = 0

    def deliver(self, frame: Frame) -> None:
        if frame.kind != "M.1":
            return
        try:
            beacon = Beacon.decode(self.group, SECP160R1, frame.payload)
        except ReproError:
            return
        request = forge_access_request(self.group, beacon, self.loop.now,
                                       self.rng)
        self.injected += 1
        self.send(Frame("M.2", request.encode(), src=self.node_id,
                        dst=beacon.router_id))


class RoguePhisher(SimNode):
    """A fake router: self-signed certificate, forged beacon chain."""

    def __init__(self, node_id: str, position: Position, loop: EventLoop,
                 radio: RadioMedium, group: PairingGroup,
                 beacon_interval: float = 5.0,
                 rng: Optional[random.Random] = None,
                 tx_range: float = 350.0) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=tx_range)
        self.group = group
        self.rng = rng or random.Random(4242)
        self.keypair = ecdsa_generate(SECP160R1, rng=self.rng)
        self.victims: Set[str] = set()
        loop.schedule_every(beacon_interval, self._beacon,
                            jitter_rng=self.rng)

    def _beacon(self) -> None:
        now = self.loop.now
        # Self-signed certificate: NO never blessed this key.
        cert = RouterCertificate(self.node_id, self.keypair.public,
                                 now + 86400.0, b"")
        cert = RouterCertificate(
            cert.router_id, cert.public_key, cert.expires_at,
            self.keypair.sign(cert.signed_payload()))
        crl = CertificateRevocationList(0, now, 600.0, frozenset(), b"")
        crl = CertificateRevocationList(
            0, now, 600.0, frozenset(),
            self.keypair.sign(crl.signed_payload()))
        url = UserRevocationList(0, now, 600.0, (), b"")
        url = UserRevocationList(
            0, now, 600.0, (), self.keypair.sign(url.signed_payload()))
        r = self.group.random_scalar(self.rng)
        g = self.group.random_g1(self.rng)
        beacon = Beacon(self.node_id, g, g ** r, now, b"", cert, crl, url)
        beacon = Beacon(self.node_id, g, beacon.g_r_router, now,
                        self.keypair.sign(beacon.signed_payload()),
                        cert, crl, url)
        self.send(Frame("M.1", beacon.encode(), src=self.node_id))

    def deliver(self, frame: Frame) -> None:
        # Any M.2 answering our phish is a caught victim.
        if frame.kind == "M.2" and frame.dst == self.node_id:
            self.victims.add(frame.src)


class RevokedRouterPhisher(SimNode):
    """A real router after revocation: credentials valid, CRL stale.

    It keeps broadcasting its *genuine* certificate with the last CRL it
    obtained before NO severed the channel.  Users accept it only while
    that CRL (a) predates the revocation and (b) is within its staleness
    window -- the bounded phishing window of Section V.A.
    """

    def __init__(self, router: MeshRouter, position: Position,
                 loop: EventLoop, radio: RadioMedium,
                 beacon_interval: float = 5.0,
                 rng: Optional[random.Random] = None,
                 tx_range: float = 350.0) -> None:
        super().__init__(router.router_id, position, loop, radio,
                         tx_range=tx_range)
        self.router = router
        self.rng = rng or random.Random(7777)
        self.victim_times: List[float] = []
        self.victims: Set[str] = set()
        loop.schedule_every(beacon_interval, self._beacon,
                            jitter_rng=self.rng)

    def _beacon(self) -> None:
        # make_beacon() serves whatever lists the router last fetched;
        # after revocation those never refresh again.
        beacon = self.router.make_beacon()
        self.send(Frame("M.1", beacon.encode(), src=self.node_id))

    def deliver(self, frame: Frame) -> None:
        if frame.kind == "M.2" and frame.dst == self.node_id:
            self.victims.add(frame.src)
            self.victim_times.append(self.loop.now)


class DosFlooder(SimNode):
    """Connection-depletion attacker (Section V.A, DoS).

    Floods well-formed forged (M.2)s at ``rate`` per second.  When the
    router demands puzzles, the flooder spends its ``hash_rate`` budget
    solving them, which caps its effective request rate at
    ``hash_rate / 2^difficulty`` -- the quantitative heart of the
    client-puzzle defense.
    """

    def __init__(self, node_id: str, position: Position, loop: EventLoop,
                 radio: RadioMedium, group: PairingGroup,
                 target_router: str, rate: float = 50.0,
                 hash_rate: float = 200_000.0,
                 rng: Optional[random.Random] = None,
                 tx_range: float = 400.0) -> None:
        super().__init__(node_id, position, loop, radio, tx_range=tx_range)
        self.group = group
        self.target_router = target_router
        self.rate = rate
        self.hash_rate = hash_rate
        self.rng = rng or random.Random(666)
        self._last_beacon: Optional[Beacon] = None
        self.sent = 0
        self.puzzle_limited = 0
        loop.schedule_every(1.0 / rate, self._flood, jitter_rng=self.rng)

    def deliver(self, frame: Frame) -> None:
        if frame.kind == "M.1" and frame.src == self.target_router:
            try:
                self._last_beacon = Beacon.decode(self.group, SECP160R1,
                                                  frame.payload)
            except ReproError:
                pass

    def _flood(self) -> None:
        beacon = self._last_beacon
        if beacon is None:
            return
        request = forge_access_request(self.group, beacon, self.loop.now,
                                       self.rng)
        if beacon.puzzle is not None:
            # Effective solve time at our hash budget; skip the send if
            # we cannot keep up with our own flood rate.
            solve_time = ((1 << beacon.puzzle.difficulty_bits)
                          / self.hash_rate)
            if solve_time > 1.0 / self.rate:
                self.puzzle_limited += 1
                return
            solution = puzzles.solve_puzzle(beacon.puzzle,
                                            request.puzzle_binding())
            request = AccessRequest(request.g_r_user, request.g_r_router,
                                    request.ts2, request.group_signature,
                                    solution)
        self.sent += 1
        self.send(Frame("M.2", request.encode(), src=self.node_id,
                        dst=self.target_router))

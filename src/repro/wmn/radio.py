"""Wireless medium: range-limited delivery, loss, and eavesdropping.

A deliberately simple disk model -- the paper's arguments do not hinge
on fading subtleties.  Per-frame latency is propagation (negligible at
city scale) plus serialization ``bytes * 8 / bitrate``, which is what
makes the byte-accounted message sizes matter for handshake delay (E4).

Every node within range of a transmission *hears* it, so passive
adversaries are modelled for free: an eavesdropper is just a node whose
``deliver`` records frames instead of acting on them.

Fault injection hooks in per delivery: an installed ``fault_filter``
(see :mod:`repro.faults`) may drop, duplicate, corrupt, or re-time each
scheduled delivery.  The hook sits *after* the medium's own range and
loss checks, so natural loss and injected faults compose.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.errors import SimulationError
from repro.obs.spans import TraceContext
from repro.wmn.simclock import EventLoop

Position = Tuple[float, float]

#: A fault filter maps one about-to-be-scheduled delivery to zero or
#: more ``(delay, frame)`` deliveries: ``[]`` drops it, two entries
#: duplicate it, a rewritten frame corrupts it, a larger delay
#: delays/reorders it.  ``delay`` is relative to the transmit instant.
FaultFilter = Callable[["Frame", str, float], List[Tuple[float, "Frame"]]]


@dataclass(frozen=True)
class Frame:
    """One over-the-air frame.

    ``trace`` is observability side-band, not wire content: it carries
    the sender's :class:`~repro.obs.spans.TraceContext` so the
    receiver's spans stitch into the same per-handshake trace (the way
    a real deployment would propagate a trace id in a header).  It is
    excluded from equality and size accounting -- two frames with the
    same bytes are the same frame, traced or not.
    """

    kind: str                # "M.1", "M.2", ..., "DAT", "RLY"
    payload: bytes
    src: str
    dst: Optional[str] = None   # None = broadcast
    trace: Optional[TraceContext] = field(default=None, compare=False,
                                          repr=False)

    @property
    def size(self) -> int:
        return len(self.payload) + 24   # 24B simulated MAC-layer header


class RadioNode(Protocol):
    """What the medium needs from a node."""

    node_id: str
    position: Position

    def deliver(self, frame: Frame) -> None: ...  # pragma: no cover


def distance(a: Position, b: Position) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


class RadioMedium:
    """Shared broadcast medium over an event loop."""

    def __init__(self, loop: EventLoop, bitrate: float = 12e6,
                 default_range: float = 250.0,
                 loss_probability: float = 0.0,
                 rng: Optional[random.Random] = None,
                 propagation_speed: float = 3e8) -> None:
        self.loop = loop
        self.bitrate = bitrate
        self.default_range = default_range
        self.loss_probability = loss_probability
        self.rng = rng or random.Random(0)
        self.propagation_speed = propagation_speed
        self._nodes: Dict[str, RadioNode] = {}
        self._ranges: Dict[str, float] = {}
        self.fault_filter: Optional[FaultFilter] = None
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_dropped = 0

    # -- membership ------------------------------------------------------

    def attach(self, node: RadioNode, tx_range: Optional[float] = None
               ) -> None:
        if node.node_id in self._nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self._ranges[node.node_id] = (tx_range if tx_range is not None
                                      else self.default_range)
    def detach(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)
        self._ranges.pop(node_id, None)

    def set_range(self, node_id: str, tx_range: float) -> None:
        """Adjust transmit power (paper footnote 3: users may boost
        power to reach a router directly during authentication)."""
        self._ranges[node_id] = tx_range

    def node(self, node_id: str) -> RadioNode:
        return self._nodes[node_id]

    def neighbors_of(self, node_id: str) -> List[str]:
        """Node ids currently within this node's transmit range."""
        sender = self._nodes[node_id]
        reach = self._ranges[node_id]
        return [other_id for other_id, other in self._nodes.items()
                if other_id != node_id
                and distance(sender.position, other.position) <= reach]

    # -- transmission -------------------------------------------------------

    def transmit(self, frame: Frame,
                 tx_range: Optional[float] = None) -> None:
        """Send a frame; delivery is scheduled per receiver.

        Broadcast frames reach every node in range.  Unicast frames are
        *acted on* only by the addressee, but every node in range still
        hears them (``deliver`` is called with the frame regardless --
        receivers filter on ``dst`` themselves; passive attackers
        don't).
        """
        sender = self._nodes.get(frame.src)
        if sender is None:
            raise SimulationError(f"unknown sender {frame.src!r}")
        reach = tx_range if tx_range is not None else self._ranges[frame.src]
        tx_delay = frame.size * 8 / self.bitrate
        self.frames_sent += 1
        self.bytes_sent += frame.size
        for receiver_id, receiver in list(self._nodes.items()):
            if receiver_id == frame.src:
                continue
            dist = distance(sender.position, receiver.position)
            if dist > reach:
                continue
            if (self.loss_probability
                    and self.rng.random() < self.loss_probability):
                self.frames_dropped += 1
                continue
            delay = tx_delay + dist / self.propagation_speed
            if self.fault_filter is None:
                self.loop.schedule(delay,
                                   _make_delivery(receiver, frame))
                continue
            for when, out_frame in self.fault_filter(frame, receiver_id,
                                                     delay):
                self.loop.schedule(when,
                                   _make_delivery(receiver, out_frame))


def _make_delivery(receiver: RadioNode, frame: Frame) -> Callable[[], None]:
    def deliver() -> None:
        receiver.deliver(frame)
    return deliver

"""Scenario builder: a whole simulated city in one call.

Combines the core :class:`~repro.core.deployment.Deployment` (NO, TTP,
GMs, users, routers with real keys) with the simulator substrate (event
loop, radio, topology, nodes) into a runnable :class:`Scenario`.
Benchmarks E4-E7 and the integration tests are all built on this.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.clock import Clock
from repro.core.deployment import Deployment
from repro.core.durable import DurableRouterStore, FileStorage, MemoryStorage
from repro.obs.health import (
    AlertEngine,
    AlertRule,
    HealthMonitor,
    HealthPolicy,
    RouterSignals,
    correlate_incidents,
    default_metro_rules,
    incidents_to_jsonl,
)
from repro.obs.rollup import TelemetryRollup, to_jsonl
from repro.core.protocols.dos import DosPolicy
from repro.core.protocols.user_router import RetryPolicy
from repro.core.revocation import RevocationTagCache, epoch_period
from repro.core.router import MeshRouter
from repro.errors import SimulationError
from repro.wmn.costmodel import CostModel
from repro.wmn.metrics import (
    HandshakeStats,
    counters_to_registry,
    merge_counters,
)
from repro.wmn.backbone import BackboneNetwork, UplinkDirectory
from repro.wmn.gossip import ListGossip
from repro.wmn.mobility import RandomWaypoint
from repro.wmn.nodes import SimMeshRouter, SimUser
from repro.wmn.radio import RadioMedium
from repro.wmn.relay import RelayUser
from repro.wmn.simclock import EventLoop, SimClock
from repro.wmn.topology import MetroTopology, TopologyConfig, build_topology


def _stable_id(node_id: str) -> int:
    """Deterministic per-node seed offset (``hash()`` is salted per
    process, which would make simulations non-reproducible)."""
    import zlib
    return zlib.crc32(node_id.encode()) % 1000


@dataclass(frozen=True)
class ScenarioConfig:
    """High-level configuration of a simulated deployment."""

    preset: str = "TEST"
    seed: int = 0
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    group_sizes: Tuple[Tuple[str, int], ...] = (("Company X", 32),
                                                ("University Z", 32))
    beacon_interval: float = 5.0
    data_interval: Optional[float] = None
    loss_probability: float = 0.0
    relay_capable: bool = False
    dos_policy_factory: Optional[object] = None   # () -> DosPolicy
    list_refresh_period: float = 600.0
    cost_model: CostModel = field(default_factory=CostModel)
    mobility: bool = False                # random-waypoint user motion
    mobility_speed: Tuple[float, float] = (1.0, 8.0)   # m/s range
    reconnect_interval: Optional[float] = None   # periodic re-association
    retry_policy: Optional[RetryPolicy] = None   # M.2 retransmission
    expire_interval: Optional[float] = None      # router expiry ticks
    tracing: bool = False                # own obs registry + causal spans
    telemetry_window: float = 0.0        # >0: rollup every N sim seconds
    max_spans: int = 4096                # span-log bound when tracing
    gossip_period: float = 0.0           # >0: epidemic CRL/URL rounds
    gossip_fanout: int = 2               # peers contacted per round
    gossip_loss: float = 0.0             # per-exchange loss probability
    sharded_revocation: bool = False     # O(1) epoch-tag revocation path
    revocation_shards: int = 16          # shards when sharding is on
    durable: bool = False                # journal router state (crashable)
    durable_dir: Optional[str] = None    # None: in-memory storage backend
    durable_sync_every: int = 1          # records per fsync (fault surface)
    gossip_checkpoints: bool = False     # shard-checkpoint warm-up offers
    health: bool = False                 # per-window health + alert rules
    health_rules: Optional[Tuple[AlertRule, ...]] = None  # None: metro pack
    health_policy: Optional[HealthPolicy] = None


class Scenario:
    """A built, runnable simulation."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.loop = EventLoop(start=1_000_000.0)
        self.clock: Clock = SimClock(self.loop)
        self.rng = random.Random(config.seed)
        # Tracing/telemetry: the scenario owns a registry on the *sim
        # clock* (span timestamps and rollup windows are virtual time).
        # It is installed as the ambient registry only for the dynamic
        # extent of run(), so building or inspecting a scenario never
        # leaks collection into the caller's process.
        self.registry: Optional[obs.MetricsRegistry] = None
        self.rollup: Optional[TelemetryRollup] = None
        if config.tracing or config.telemetry_window > 0:
            self.registry = obs.MetricsRegistry(
                clock=self.clock, max_spans=config.max_spans)
        # Health evaluation rides the telemetry roll: monitor gauges
        # are exported *before* the window closes so the alert rules
        # see them in the same window record (detection stays inside
        # one telemetry window).
        self.health_monitor: Optional[HealthMonitor] = None
        self.alert_engine: Optional[AlertEngine] = None
        self._fsync_lost: Dict[str, float] = {}
        if config.health:
            if config.telemetry_window <= 0:
                raise SimulationError(
                    "health evaluation is window-driven: configure "
                    "telemetry_window > 0 alongside health=True")
            self.health_monitor = HealthMonitor(
                policy=config.health_policy)
            self.alert_engine = AlertEngine(
                config.health_rules if config.health_rules is not None
                else default_metro_rules())
        if config.telemetry_window > 0:
            self.rollup = TelemetryRollup(self.registry)
            self.loop.schedule_every(
                config.telemetry_window, self._telemetry_tick)
        self.topology: MetroTopology = build_topology(config.topology)
        self.radio = RadioMedium(
            self.loop, loss_probability=config.loss_probability,
            rng=random.Random(config.seed + 1),
            default_range=config.topology.access_range)

        groups = dict(config.group_sizes)
        group_names = list(groups)
        user_specs = []
        for i, user_id in enumerate(self.topology.user_positions):
            membership = group_names[i % len(group_names)]
            user_specs.append((user_id, [membership]))

        self.deployment = Deployment.build(
            preset=config.preset, seed=config.seed, groups=groups,
            users=user_specs,
            routers=list(self.topology.router_positions),
            clock=self.clock,
            dos_policy_factory=config.dos_policy_factory)

        self.backbone = BackboneNetwork(self.loop, self.topology.backbone)
        self.directory = UplinkDirectory()
        self.sim_routers: Dict[str, SimMeshRouter] = {}
        for router_id, position in self.topology.router_positions.items():
            self.sim_routers[router_id] = SimMeshRouter(
                self.deployment.routers[router_id], position, self.loop,
                self.radio, cost_model=config.cost_model,
                beacon_interval=config.beacon_interval,
                list_refresh_period=config.list_refresh_period,
                access_range=config.topology.access_range,
                backbone=self.backbone, directory=self.directory,
                rng=random.Random(config.seed + _stable_id(router_id)))
            if config.expire_interval is not None:
                # Read ``sim.router`` at fire time: a restart swaps the
                # router object, and a bound method captured here would
                # keep ticking the dead one.
                self.loop.schedule_every(
                    config.expire_interval,
                    self._make_expire_tick(self.sim_routers[router_id]))

        # Epidemic CRL/URL distribution over the backbone adjacency.
        self.gossip: Optional[ListGossip] = None
        if config.gossip_period > 0:
            graph = self.topology.backbone
            peers = {router_id: list(graph.neighbors(router_id))
                     for router_id in graph.nodes}
            self.gossip = ListGossip(
                self.loop,
                [sim.router for sim in self.sim_routers.values()],
                round_period=config.gossip_period,
                fanout=config.gossip_fanout,
                loss_probability=config.gossip_loss,
                rng=random.Random(config.seed + 0x60551),
                peers=peers,
                checkpoints=config.gossip_checkpoints)
            self.gossip.start()

        # Sharded revocation: every router gets the O(1) epoch-tag
        # check, every user signs under the matching epoch period.  In
        # a durable scenario each router owns its cache (a crash must
        # actually lose it -- that coldness is what checkpoint warm-up
        # recovers); otherwise one cache is shared process-wide (tags
        # are public).
        self.tag_caches: Dict[str, RevocationTagCache] = {}
        if config.sharded_revocation:
            shared_cache = None if config.durable else RevocationTagCache()
            for router_id, sim in self.sim_routers.items():
                cache = (RevocationTagCache() if config.durable
                         else shared_cache)
                self.tag_caches[router_id] = cache
                sim.router.enable_sharded_revocation(
                    num_shards=config.revocation_shards, cache=cache)
            period = epoch_period(self.deployment.operator.gpk.epoch)
            for user in self.deployment.users.values():
                user.auth_period = period

        # Durable journals: attached last so the initial snapshot
        # already carries the sharded checkpoint state.
        self.durable_stores: Dict[str, DurableRouterStore] = {}
        self._incarnations: Dict[str, int] = {}
        if config.durable:
            for router_id, sim in self.sim_routers.items():
                if config.durable_dir is not None:
                    storage = FileStorage(os.path.join(
                        config.durable_dir, f"{router_id}.journal"))
                else:
                    storage = MemoryStorage()
                store = DurableRouterStore(
                    storage, router_id,
                    sync_every=config.durable_sync_every)
                sim.router.attach_durable(store)
                self.durable_stores[router_id] = store

        user_class = RelayUser if config.relay_capable else SimUser
        self.sim_users: Dict[str, SimUser] = {}
        self.walkers: Dict[str, RandomWaypoint] = {}
        for user_id, position in self.topology.user_positions.items():
            membership = dict(user_specs)[user_id][0]
            user = user_class(
                self.deployment.users[user_id], user_id, position,
                self.loop, self.radio, cost_model=config.cost_model,
                context=membership,
                data_interval=config.data_interval,
                user_range=config.topology.user_range,
                boost_range=config.topology.access_range * 1.2,
                reconnect_interval=config.reconnect_interval,
                retry_policy=config.retry_policy,
                rng=random.Random(config.seed + _stable_id(user_id)))
            self.sim_users[user_id] = user
            if config.mobility:
                walker = RandomWaypoint(
                    self.loop, config.topology.area_side,
                    get_position=lambda u=user: u.position,
                    set_position=lambda p, u=user: setattr(
                        u, "position", p),
                    speed_min=config.mobility_speed[0],
                    speed_max=config.mobility_speed[1],
                    rng=random.Random(config.seed * 7 + len(self.walkers)))
                walker.start()
                self.walkers[user_id] = walker

    @staticmethod
    def _make_expire_tick(sim: SimMeshRouter):
        def tick() -> None:
            if not sim.crashed:
                sim.router.expire()
        return tick

    # -- crash / restart lifecycle -----------------------------------------

    @property
    def supports_crashes(self) -> bool:
        """Kill/restart faults need a journal to restart from."""
        return self.config.durable

    def kill_router(self, router_id: str) -> None:
        """Crash one router: its in-memory state is gone; only the
        durable journal survives.  Idempotent on an already-dead one."""
        sim = self._require_durable(router_id)
        if sim.crashed:
            return
        sim.crash()
        if self.gossip is not None:
            self.gossip.isolate(router_id)
        obs.counter("recovery.kills_total")

    def restart_router(self, router_id: str) -> None:
        """Boot a killed router back up from its durable journal.

        The new incarnation gets a *fresh* rng stream (a rebooted
        process does not resume its predecessor's entropy) and -- when
        the sharded path is on -- a fresh cold cache, pre-warmed only
        with whatever shard checkpoint the journal carried.  Degraded
        re-entry is automatic: a router that journaled ``channel_up =
        False`` comes back degraded, and its recovered lists' age
        counts from their journaled fetch time.
        """
        sim = self._require_durable(router_id)
        if not sim.crashed:
            return
        store = self.durable_stores[router_id]
        incarnation = self._incarnations.get(router_id, 0) + 1
        self._incarnations[router_id] = incarnation
        rng = random.Random(self.config.seed + _stable_id(router_id)
                            + 7919 * incarnation)
        cache = None
        if self.config.sharded_revocation:
            cache = RevocationTagCache()
            self.tag_caches[router_id] = cache
        policy = (self.config.dos_policy_factory()
                  if self.config.dos_policy_factory else None)
        with obs.timer("recovery.restart_seconds"):
            router = MeshRouter.restore(
                store, self.deployment.operator, clock=self.clock,
                rng=rng, dos_policy=policy, cache=cache)
        self.deployment.routers[router_id] = router
        sim.restart(router)
        if self.gossip is not None:
            self.gossip.replace_router(router)
            self.gossip.rejoin(router_id)
        obs.counter("recovery.restarts_total")

    def lose_unsynced(self, router_id: str) -> int:
        """Storage fault: drop this router's unsynced journal tail."""
        self._require_durable(router_id)
        lost = self.durable_stores[router_id].storage.lose_unsynced()
        if lost:
            obs.counter("durable.fsync_lost_bytes", lost)
            self._fsync_lost[router_id] = \
                self._fsync_lost.get(router_id, 0.0) + lost
        return lost

    def _require_durable(self, router_id: str) -> SimMeshRouter:
        if not self.config.durable:
            raise SimulationError(
                "crash/storage lifecycle needs a durable=True scenario")
        if router_id not in self.sim_routers:
            raise SimulationError(f"unknown router {router_id!r}")
        return self.sim_routers[router_id]

    # -- driving -----------------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` virtual seconds.

        With ``tracing``/``telemetry_window`` configured, the
        scenario's registry is ambient for the duration of the call
        (and only then), collecting causal handshake spans and rollup
        windows on the sim clock; the caller's previously installed
        registry (if any) is restored on exit.
        """
        if self.registry is None:
            self.loop.run_until(self.loop.now + duration)
            return
        previous = obs.install(self.registry)
        try:
            self.loop.run_until(self.loop.now + duration)
        finally:
            obs.install(previous)

    def telemetry_jsonl(self) -> str:
        """The rollup windows collected so far, as JSONL (empty string
        when ``telemetry_window`` was not configured)."""
        if self.rollup is None:
            return ""
        return to_jsonl(self.rollup.windows())

    # -- health & incidents ------------------------------------------------

    def _telemetry_tick(self) -> None:
        """One telemetry roll, with health evaluation when configured:
        classify -> export gauges -> close the window -> run rules."""
        now = self.loop.now
        if self.health_monitor is not None:
            self.health_monitor.observe(
                now, self.rollup.next_index,
                self._health_signals(now),
                pool_worker_restarts=self.registry.counter_value(
                    "pool.worker_restarts"),
                registry=self.registry)
        window = self.rollup.roll(now)
        if self.alert_engine is not None:
            self.alert_engine.evaluate(window)

    def _health_signals(self, now: float) -> "list[RouterSignals]":
        latest = self.deployment.operator.list_versions()
        signals = []
        for router_id, sim in self.sim_routers.items():
            if sim.crashed:
                signals.append(RouterSignals(router_id=router_id,
                                             crashed=True))
                continue
            router = sim.router
            crl_version, url_version = router.list_versions()
            behind = max(latest[0] - crl_version,
                         latest[1] - url_version, 0)
            signals.append(RouterSignals(
                router_id=router_id,
                channel_up=not router.degraded,
                lists_age=router.lists_age(now),
                staleness_grace=router.staleness_grace,
                versions_behind=behind,
                handshakes_completed=sim.metrics.get(
                    "handshakes_completed", 0),
                handshakes_rejected=sim.metrics.get(
                    "handshakes_rejected", 0),
                fsync_lost_bytes=self._fsync_lost.get(router_id, 0.0)))
        return signals

    def _require_health(self) -> None:
        if self.health_monitor is None:
            raise SimulationError(
                "scenario was not built with health=True")

    def health_snapshot(self) -> Dict[str, object]:
        """The latest ``/health``-shaped judgment (status, per-router
        states + reasons) -- the payload a service-plane daemon's
        ``/health`` endpoint would serve verbatim.  Evaluates on
        demand if no telemetry window has closed yet."""
        self._require_health()
        if self.health_monitor.last_snapshot is None:
            self._telemetry_tick()
        return self.health_monitor.last_snapshot

    def alert_events(self) -> "list[Dict[str, object]]":
        """Full firing/resolved alert history, evaluation order."""
        self._require_health()
        return list(self.alert_engine.events)

    def incidents(self, injector) -> "list[Dict[str, object]]":
        """Per-incident timelines with MTTD/MTTR: the ``injector``'s
        ground-truth :class:`~repro.faults.injector.FaultEvent` log
        joined against this run's health transitions and alerts."""
        self._require_health()
        window_times = [float(w["t"]) for w in self.rollup.windows()]
        return correlate_incidents(
            injector.events_snapshot(),
            self.health_monitor.transitions,
            self.alert_engine.events, window_times)

    def incidents_jsonl(self, injector) -> str:
        """:meth:`incidents` as one JSON object per line (the CI
        chaos artifact format)."""
        return incidents_to_jsonl(self.incidents(injector))

    @property
    def health_eval_seconds(self) -> float:
        """Wall-clock seconds spent on health classification + alert
        rules so far (the <= 3% overhead gate's numerator)."""
        if self.health_monitor is None:
            return 0.0
        return (self.health_monitor.eval_seconds
                + self.alert_engine.eval_seconds)

    # -- results -----------------------------------------------------------

    def handshake_stats(self) -> HandshakeStats:
        stats = HandshakeStats()
        for user in self.sim_users.values():
            stats.extend(user.auth_delays)
        return stats

    def router_metrics(self) -> Dict[str, float]:
        return merge_counters(r.metrics for r in self.sim_routers.values())

    def user_metrics(self) -> Dict[str, float]:
        return merge_counters(u.metrics for u in self.sim_users.values())

    def connected_fraction(self) -> float:
        users = list(self.sim_users.values())
        if not users:
            return 0.0
        return sum(1 for u in users if u.state == "connected") / len(users)

    def publish_metrics(self, registry=None) -> None:
        """Push simulator aggregates onto a :mod:`repro.obs` registry.

        Node counters become ``wmn.router.<key>`` / ``wmn.user.<key>``
        gauges; handshake delays land in the shared
        ``wmn.auth_delay_seconds`` histogram (the same series the live
        nodes feed when a registry is installed during ``run()``).
        Safe to call repeatedly -- gauges overwrite, they never double.
        With no explicit ``registry`` the scenario's own tracing
        registry (when configured) is preferred over the ambient one.
        """
        if registry is None:
            registry = self.registry
        if registry is None:
            registry = obs.active()
        if registry is None:
            return
        counters_to_registry(self.router_metrics(), "wmn.router", registry)
        counters_to_registry(self.user_metrics(), "wmn.user", registry)
        registry.gauge("wmn.connected_fraction", self.connected_fraction())
        if registry.histogram_snapshot("wmn.auth_delay_seconds") is None:
            self.handshake_stats().publish(registry)

"""The layer-2 wireless backbone: router-to-router forwarding.

Paper Section III.A: stationary mesh routers "form a multihop backbone
via long-range high-speed wireless techniques such as WiMAX", NO and
the routers share "pre-established secure channels", and "all the
network traffic has to go through a mesh router except the
communication between two direct neighboring users".

:class:`BackboneNetwork` models that layer: a graph of router-to-router
links (from the topology's backbone graph) with per-hop latency and
bitrate, carrying opaque payloads between routers over the event loop.
Because the channels are pre-secured by assumption, backbone frames are
not re-encrypted here -- end-to-end protection is the user sessions'
AEAD, which routers forward without being able to forge.

On top of it, :class:`UplinkDirectory` gives the simulator the paper's
user-to-user communication path: user A's uplink packet, addressed to
another user's *session*, travels A -> serving router -> (backbone) ->
B's serving router -> one-hop downlink to B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import networkx as nx

from repro.errors import SimulationError
from repro.wmn.simclock import EventLoop


@dataclass(frozen=True)
class BackboneFrame:
    """One router-to-router payload."""

    src_router: str
    dst_router: str
    payload: bytes
    kind: str = "FWD"

    @property
    def size(self) -> int:
        return len(self.payload) + 32   # backbone framing overhead


class BackboneNetwork:
    """Forwarding fabric over the topology's backbone graph."""

    def __init__(self, loop: EventLoop, graph: nx.Graph,
                 bitrate: float = 70e6,
                 per_hop_latency: float = 0.001) -> None:
        self.loop = loop
        self.graph = graph
        self.bitrate = bitrate
        self.per_hop_latency = per_hop_latency
        self._handlers: Dict[str, Callable[[BackboneFrame], None]] = {}
        self.frames_forwarded = 0
        self.hops_traversed = 0
        self.frames_undeliverable = 0

    def attach_router(self, router_id: str,
                      handler: Callable[[BackboneFrame], None]) -> None:
        """Register a router's receive handler."""
        if router_id not in self.graph:
            raise SimulationError(
                f"{router_id} is not a backbone node")
        self._handlers[router_id] = handler

    def path_between(self, src: str, dst: str) -> Optional[List[str]]:
        """Backbone route (list of router ids), or None if partitioned."""
        try:
            return nx.shortest_path(self.graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def send(self, frame: BackboneFrame) -> bool:
        """Route a frame across the backbone; returns acceptance.

        Delivery is scheduled after the cumulative per-hop latency and
        serialization delay; undeliverable frames (partition, unknown
        destination) are counted and dropped.
        """
        if frame.src_router == frame.dst_router:
            self._deliver_later(frame, delay=0.0)
            return True
        path = self.path_between(frame.src_router, frame.dst_router)
        if path is None or frame.dst_router not in self._handlers:
            self.frames_undeliverable += 1
            return False
        hops = len(path) - 1
        delay = hops * (self.per_hop_latency
                        + frame.size * 8 / self.bitrate)
        self.hops_traversed += hops
        self.frames_forwarded += 1
        self._deliver_later(frame, delay)
        return True

    def _deliver_later(self, frame: BackboneFrame, delay: float) -> None:
        handler = self._handlers.get(frame.dst_router)
        if handler is None:
            self.frames_undeliverable += 1
            return

        def deliver() -> None:
            handler(frame)

        self.loop.schedule(delay, deliver)


class UplinkDirectory:
    """Where is each user session served?  (NO-side knowledge.)

    The operator knows which router holds which session (routers report
    over their secure channels); this directory is that knowledge,
    letting a serving router resolve a destination session id to the
    responsible router.  Session ids are anonymous handles -- the
    directory stores no user identity, consistent with the privacy
    model.
    """

    def __init__(self) -> None:
        self._locations: Dict[bytes, str] = {}

    def publish(self, session_id: bytes, router_id: str) -> None:
        self._locations[session_id] = router_id

    def locate(self, session_id: bytes) -> Optional[str]:
        return self._locations.get(session_id)

    def withdraw(self, session_id: bytes) -> None:
        self._locations.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._locations)

"""The three-layer metropolitan topology of Fig. 1.

Layer 1: wired access points (Internet gateways).  Layer 2: stationary
mesh routers on a grid forming the long-range wireless backbone, a
subset co-located with the gateways.  Layer 3: mobile users scattered
uniformly over the coverage area.

``networkx`` models the backbone graph; :func:`topology_report`
computes the structural statistics benchmark F1 reports (connectivity,
router degree, hops-to-gateway, user coverage).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.errors import SimulationError

Position = Tuple[float, float]


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs of the metropolitan layout."""

    area_side: float = 2000.0        # square city area side, metres
    router_grid: int = 4             # routers per side (grid^2 routers)
    router_count: int = 0            # 0 = grid^2; else keep first N routers
    gateway_fraction: float = 0.25   # share of routers wired as APs
    user_count: int = 40
    backbone_range: float = 900.0    # WiMAX-class long range links
    access_range: float = 350.0      # router <-> user service radius
    user_range: float = 150.0        # user <-> user radio range
    seed: int = 0


@dataclass
class MetroTopology:
    """Concrete node placements plus the backbone graph."""

    config: TopologyConfig
    router_positions: Dict[str, Position]
    gateway_ids: List[str]
    user_positions: Dict[str, Position]
    backbone: nx.Graph

    def routers_in_reach_of(self, position: Position) -> List[str]:
        """Routers whose access radius covers the given point."""
        reach = self.config.access_range
        return [router_id for router_id, router_pos
                in self.router_positions.items()
                if math.dist(position, router_pos) <= reach]

    def nearest_router(self, position: Position) -> str:
        return min(self.router_positions,
                   key=lambda rid: math.dist(position,
                                             self.router_positions[rid]))


def build_topology(config: TopologyConfig) -> MetroTopology:
    """Lay out routers on a jittered grid and users uniformly."""
    if config.router_grid < 1:
        raise SimulationError("need at least one mesh router")
    rng = random.Random(config.seed)
    spacing = config.area_side / config.router_grid
    router_positions: Dict[str, Position] = {}
    index = 0
    for row in range(config.router_grid):
        for col in range(config.router_grid):
            jitter_x = rng.uniform(-0.1, 0.1) * spacing
            jitter_y = rng.uniform(-0.1, 0.1) * spacing
            router_positions[f"MR-{index}"] = (
                (col + 0.5) * spacing + jitter_x,
                (row + 0.5) * spacing + jitter_y)
            index += 1
    if config.router_count:
        # Router counts that are not a perfect square (the acceptance
        # scenario wants exactly 2): keep the first N grid slots.  The
        # grid must be at least that big so the layout stays the grid's.
        if config.router_count > len(router_positions):
            raise SimulationError(
                "router_count exceeds router_grid**2; raise router_grid")
        keep = [f"MR-{i}" for i in range(config.router_count)]
        router_positions = {rid: router_positions[rid] for rid in keep}

    router_ids = list(router_positions)
    gateway_count = max(1, round(len(router_ids)
                                 * config.gateway_fraction))
    gateway_ids = rng.sample(router_ids, gateway_count)

    backbone = nx.Graph()
    backbone.add_nodes_from(router_ids)
    for i, rid_a in enumerate(router_ids):
        for rid_b in router_ids[i + 1:]:
            if (math.dist(router_positions[rid_a],
                          router_positions[rid_b])
                    <= config.backbone_range):
                backbone.add_edge(rid_a, rid_b)

    user_positions = {
        f"U-{i}": (rng.uniform(0, config.area_side),
                   rng.uniform(0, config.area_side))
        for i in range(config.user_count)}

    return MetroTopology(config=config,
                         router_positions=router_positions,
                         gateway_ids=gateway_ids,
                         user_positions=user_positions,
                         backbone=backbone)


def topology_report(topology: MetroTopology) -> Dict[str, float]:
    """Structural statistics for benchmark F1."""
    backbone = topology.backbone
    config = topology.config
    connected = nx.is_connected(backbone) if backbone.nodes else False
    degrees = [deg for _node, deg in backbone.degree()]
    hops: List[int] = []
    if connected and topology.gateway_ids:
        lengths = {}
        for gateway in topology.gateway_ids:
            for node, dist in nx.single_source_shortest_path_length(
                    backbone, gateway).items():
                lengths[node] = min(lengths.get(node, math.inf), dist)
        hops = [int(lengths[node]) for node in backbone.nodes]
    covered = sum(
        1 for pos in topology.user_positions.values()
        if topology.routers_in_reach_of(pos))
    user_count = max(1, len(topology.user_positions))
    return {
        "routers": float(len(topology.router_positions)),
        "gateways": float(len(topology.gateway_ids)),
        "users": float(len(topology.user_positions)),
        "backbone_connected": float(connected),
        "mean_router_degree": (sum(degrees) / len(degrees)
                               if degrees else 0.0),
        "max_hops_to_gateway": float(max(hops)) if hops else math.inf,
        "mean_hops_to_gateway": (sum(hops) / len(hops)
                                 if hops else math.inf),
        "user_coverage_fraction": covered / user_count,
        "area_km2": (config.area_side / 1000.0) ** 2,
    }

"""Arming fault plans against live targets.

The :class:`FaultInjector` turns one :class:`~repro.faults.plan.FaultPlan`
into behaviour on three surfaces:

* **Radio** -- installs a filter on
  :class:`~repro.wmn.radio.RadioMedium` that drops, duplicates,
  corrupts, delays, or reorders individual frame deliveries;
* **Verifier pool** -- SIGKILLs or wedges
  :class:`~repro.core.verifier_pool.VerifierPool` worker processes;
* **Router** -- severs/restores the NO operator channel or silently
  suppresses list refreshes on a :class:`~repro.core.router.MeshRouter`.

Every probabilistic decision (does this delivery fault? which byte
corrupts? which worker dies?) draws from ``random.Random(plan.seed)``
in arming/transmission order, and every time decision reads the event
loop's virtual clock -- never the wall clock -- so a chaos run is a
pure function of ``(scenario seed, fault plan)`` and replays exactly.

Injected-fault tallies land both in :attr:`FaultInjector.counts` and,
when an :mod:`repro.obs` registry is installed, in
``faults.injected.<kind>`` counters.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import FaultInjectionError
from repro.faults.plan import (
    FaultPlan,
    GossipFault,
    PoolFault,
    RadioFault,
    RouterFault,
)
from repro.wmn.radio import Frame, RadioMedium

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.router import MeshRouter
    from repro.core.verifier_pool import VerifierPool
    from repro.wmn.gossip import ListGossip
    from repro.wmn.simclock import EventLoop


def corrupt_frame(frame: Frame, rng: random.Random) -> Frame:
    """Flip one payload byte (never a no-op) chosen by ``rng``."""
    payload = bytearray(frame.payload)
    if not payload:
        return frame
    index = rng.randrange(len(payload))
    payload[index] ^= 1 + rng.randrange(255)
    # The trace context survives corruption: it models an out-of-band
    # observability header, and the receiver's decode-failure spans
    # should still stitch into the sender's trace.
    return Frame(kind=frame.kind, payload=bytes(payload),
                 src=frame.src, dst=frame.dst, trace=frame.trace)


@dataclass(frozen=True)
class FaultEvent:
    """One discrete injected fault, as ground truth for correlation.

    The injector appends one event per *lifecycle* fault firing
    (router sever/restore/kill/restart, gossip isolate/rejoin, pool
    kill/hang, storage fsync loss) with the virtual-time instant it
    fired and the router it targeted -- the record the incident
    correlator joins alert firings and health transitions against.
    Per-frame radio faults are deliberately not logged here (they are
    continuous noise, tallied in ``counts``/``faults.injected.*``,
    not discrete incidents).
    """

    kind: str
    target: Optional[str] = None
    t: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "target": self.target,
                "t": self.t}


class FaultInjector:
    """Executes one :class:`FaultPlan` deterministically.

    One injector serves one run: it owns the plan's RNG stream, the
    per-kind tallies, and the structured :class:`FaultEvent` log.
    Arm it against as many targets as the plan names; re-arming the
    radio replaces any previous filter.
    """

    def __init__(self, plan: FaultPlan,
                 rng: Optional[random.Random] = None) -> None:
        self.plan = plan
        self.rng = rng if rng is not None else random.Random(plan.seed)
        self.counts: Dict[str, int] = {}
        self.events: List[FaultEvent] = []
        self._armed_at: Optional[float] = None
        self._loop: "Optional[EventLoop]" = None

    def _note(self, kind: str, amount: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + amount
        obs.counter(f"faults.injected.{kind}", amount)

    def _event(self, kind: str, target: Optional[str] = None) -> None:
        """Log one discrete fault firing at the loop's current
        virtual time (0.0 when armed without a loop)."""
        now = self._loop.now if self._loop is not None else 0.0
        self.events.append(FaultEvent(kind=kind, target=target, t=now))

    # -- radio ----------------------------------------------------------

    def arm_radio(self, medium: RadioMedium) -> None:
        """Install this plan's radio rules on ``medium``.

        The window clocks of every radio fault start now (the loop's
        current virtual time).
        """
        self._armed_at = medium.loop.now
        self._loop = medium.loop

        def fault_filter(frame: Frame, receiver_id: str,
                         base_delay: float
                         ) -> List[Tuple[float, Frame]]:
            return self._filter_delivery(medium.loop.now, frame,
                                         base_delay)

        medium.fault_filter = fault_filter

    def disarm_radio(self, medium: RadioMedium) -> None:
        medium.fault_filter = None

    def _filter_delivery(self, now: float, frame: Frame, base_delay: float
                         ) -> List[Tuple[float, Frame]]:
        """Apply every matching radio rule, in plan order, to one
        delivery.  Rules compose: a duplicate's copies are themselves
        subject to later rules in the plan."""
        elapsed = now - (self._armed_at or now)
        deliveries: List[Tuple[float, Frame]] = [(base_delay, frame)]
        for fault in self.plan.radio:
            if not fault.matches(frame.kind, frame.dst, elapsed):
                continue
            next_round: List[Tuple[float, Frame]] = []
            for delay, out_frame in deliveries:
                if fault.probability < 1.0 \
                        and self.rng.random() >= fault.probability:
                    next_round.append((delay, out_frame))
                    continue
                next_round.extend(
                    self._apply_radio(fault, delay, out_frame))
            deliveries = next_round
            if not deliveries:
                break
        return deliveries

    def _apply_radio(self, fault: RadioFault, delay: float, frame: Frame
                     ) -> List[Tuple[float, Frame]]:
        self._note(fault.kind)
        if fault.kind == "drop":
            return []
        if fault.kind == "duplicate":
            copies = [(delay + fault.extra_delay * (i + 1), frame)
                      for i in range(fault.copies)]
            return [(delay, frame)] + copies
        if fault.kind == "corrupt":
            return [(delay, corrupt_frame(frame, self.rng))]
        # "delay" and "reorder" both hold the frame back; reordering
        # emerges when later traffic overtakes the held frame.
        return [(delay + fault.extra_delay, frame)]

    # -- verifier pool --------------------------------------------------

    def arm_pool(self, pool: "VerifierPool",
                 loop: "Optional[EventLoop]" = None) -> None:
        """Schedule (or immediately fire) this plan's pool faults."""
        if loop is not None:
            self._loop = loop
        for fault in self.plan.pool:
            if loop is not None and fault.at > 0:
                loop.schedule(fault.at,
                              self._make_pool_firing(pool, fault))
            else:
                self._fire_pool_fault(pool, fault)

    def _make_pool_firing(self, pool: "VerifierPool", fault: PoolFault):
        def fire() -> None:
            self._fire_pool_fault(pool, fault)
        return fire

    def _fire_pool_fault(self, pool: "VerifierPool",
                         fault: PoolFault) -> None:
        if fault.kind == "kill_worker":
            pids = pool.worker_pids()
            for _ in range(min(fault.count, len(pids))):
                pid = self.rng.choice(pids)
                pids.remove(pid)
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):  # already gone
                    continue
                self._note("kill_worker")
                # No target: worker pids are host-assigned, and the
                # event log must stay bit-identical across replays.
                self._event("kill_worker")
            return
        if pool.inject_worker_hang(fault.hang_seconds):
            self._note("hang_worker")
            self._event("hang_worker")

    # -- router ---------------------------------------------------------

    #: Router fault kinds that need scenario-level lifecycle support
    #: (arm_crashes), not a live MeshRouter reference.
    CRASH_KINDS = ("kill", "restart")

    def arm_router(self, router: "MeshRouter",
                   loop: "Optional[EventLoop]" = None) -> None:
        """Schedule (or immediately fire) matching router faults
        (kill/restart are lifecycle faults -- see :meth:`arm_crashes`)."""
        if loop is not None:
            self._loop = loop
        for fault in self.plan.router:
            if fault.kind in self.CRASH_KINDS:
                continue
            if fault.router_id is not None \
                    and fault.router_id != router.router_id:
                continue
            if loop is not None and fault.at > 0:
                loop.schedule(fault.at,
                              self._make_router_firing(router, fault))
            else:
                self._fire_router_fault(router, fault)

    def _make_router_firing(self, router: "MeshRouter",
                            fault: RouterFault):
        def fire() -> None:
            self._fire_router_fault(router, fault)
        return fire

    def _fire_router_fault(self, router: "MeshRouter",
                           fault: RouterFault) -> None:
        if fault.kind == "sever_channel":
            router.set_operator_channel(False)
        elif fault.kind == "restore_channel":
            router.set_operator_channel(True)
        else:  # stale_lists: refreshes silently do nothing
            router.set_refresh_silent_failure(True)
        self._note(fault.kind)
        self._event(fault.kind, target=router.router_id)

    # -- gossip overlay --------------------------------------------------

    def arm_gossip(self, gossip: "ListGossip",
                   loop: "Optional[EventLoop]" = None) -> None:
        """Schedule (or immediately fire) this plan's gossip faults.

        ``router_id`` of ``None`` matches every router in the overlay.
        """
        if loop is not None:
            self._loop = loop
        for fault in self.plan.gossip:
            targets = ([fault.router_id] if fault.router_id is not None
                       else list(gossip.routers))
            for router_id in targets:
                if router_id not in gossip.routers:
                    raise FaultInjectionError(
                        f"gossip fault names unknown router {router_id!r}")
                if loop is not None and fault.at > 0:
                    loop.schedule(
                        fault.at,
                        self._make_gossip_firing(gossip, fault, router_id))
                else:
                    self._fire_gossip_fault(gossip, fault, router_id)

    def _make_gossip_firing(self, gossip: "ListGossip",
                            fault: GossipFault, router_id: str):
        def fire() -> None:
            self._fire_gossip_fault(gossip, fault, router_id)
        return fire

    def _fire_gossip_fault(self, gossip: "ListGossip",
                           fault: GossipFault, router_id: str) -> None:
        if fault.kind == "isolate":
            gossip.isolate(router_id)
        else:
            gossip.rejoin(router_id)
        self._note(fault.kind)
        self._event(fault.kind, target=router_id)

    # -- crash / storage lifecycle faults --------------------------------

    def arm_crashes(self, scenario) -> None:
        """Schedule kill/restart router faults and storage fsync-loss
        events against a durable-enabled scenario.

        These are *lifecycle* faults: a kill destroys the in-memory
        router object and a restart rebuilds a new one from its
        journal, so they route through the scenario (which owns the
        stores and the sim wrappers), not a ``MeshRouter`` reference
        that would dangle after the first kill.
        """
        crash_faults = [fault for fault in self.plan.router
                        if fault.kind in self.CRASH_KINDS]
        if not crash_faults and not self.plan.storage:
            return
        if not getattr(scenario, "supports_crashes", False):
            raise FaultInjectionError(
                "plan contains kill/restart or storage faults but the "
                "scenario was not built with durable=True")
        loop = scenario.loop
        self._loop = loop
        for fault in crash_faults:
            targets = ([fault.router_id] if fault.router_id is not None
                       else list(scenario.sim_routers))
            for router_id in targets:
                if router_id not in scenario.sim_routers:
                    raise FaultInjectionError(
                        f"crash fault names unknown router {router_id!r}")
                loop.schedule(fault.at, self._make_crash_firing(
                    scenario, fault.kind, router_id))
        for fault in self.plan.storage:
            targets = ([fault.router_id] if fault.router_id is not None
                       else list(scenario.sim_routers))
            for router_id in targets:
                if router_id not in scenario.sim_routers:
                    raise FaultInjectionError(
                        f"storage fault names unknown router "
                        f"{router_id!r}")
                loop.schedule(fault.at, self._make_storage_firing(
                    scenario, router_id))

    def _make_crash_firing(self, scenario, kind: str, router_id: str):
        def fire() -> None:
            if kind == "kill":
                scenario.kill_router(router_id)
            else:
                scenario.restart_router(router_id)
            self._note(kind)
            self._event(kind, target=router_id)
        return fire

    def _make_storage_firing(self, scenario, router_id: str):
        def fire() -> None:
            scenario.lose_unsynced(router_id)
            self._note("fsync_loss")
            self._event("fsync_loss", target=router_id)
        return fire

    # -- scenario convenience -------------------------------------------

    def arm_scenario(self, scenario) -> None:
        """Arm radio + every router + the gossip overlay (if any) of a
        built :class:`~repro.wmn.scenario.Scenario` (pools are armed
        separately -- the simulator does not own one)."""
        self.arm_radio(scenario.radio)
        for sim_router in scenario.sim_routers.values():
            self.arm_router(sim_router.router, loop=scenario.loop)
        if getattr(scenario, "gossip", None) is not None:
            self.arm_gossip(scenario.gossip, loop=scenario.loop)
        self.arm_crashes(scenario)

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-kind injected-fault tallies."""
        return dict(self.counts)

    def events_snapshot(self) -> List[Dict[str, object]]:
        """The discrete fault-event log as plain dicts, firing order.

        This is the chaos run's *ground truth*: the incident
        correlator (:func:`repro.obs.health.correlate_incidents`)
        joins health transitions and alert firings against it, and
        the replay-identity harnesses fingerprint it (the log is a
        pure function of plan + scenario seed)."""
        return [event.to_dict() for event in self.events]

"""Deterministic, replayable fault injection for chaos testing.

PEACE targets metropolitan meshes where jamming, interference, node
churn, and backhaul failures are the operating condition, not the
exception.  This package drives those conditions on demand:

* :class:`FaultPlan` -- a frozen, seeded description of every fault a
  run will inject (radio frame drop/duplicate/corrupt/delay/reorder,
  verifier-pool worker kill/hang, router operator-channel sever or
  silent stale lists, router kill/restart from the durable journal,
  storage fsync-loss);
* :class:`FaultInjector` -- arms a plan against live targets, drawing
  every probabilistic choice from ``random.Random(plan.seed)`` on the
  simulator's virtual clock, so chaos runs replay bit-for-bit;
* :class:`FaultEvent` -- the injector's structured log of every
  discrete fault firing (kind, target router, virtual time): the
  ground truth that :mod:`repro.obs.health` correlates alert firings
  and health transitions against to measure MTTD/MTTR.

The invariant the chaos suites assert: under any plan, a handshake
either completes with outcomes identical to the fault-free run, or
fails closed with a typed :mod:`repro.errors` subclass -- never a
hang, crash, or silent partial session.
"""

from repro.faults.injector import FaultEvent, FaultInjector, corrupt_frame
from repro.faults.plan import (
    GOSSIP_FAULT_KINDS,
    POOL_FAULT_KINDS,
    RADIO_FAULT_KINDS,
    ROUTER_FAULT_KINDS,
    STORAGE_FAULT_KINDS,
    FaultPlan,
    GossipFault,
    PoolFault,
    RadioFault,
    RouterFault,
    StorageFault,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GossipFault",
    "GOSSIP_FAULT_KINDS",
    "PoolFault",
    "POOL_FAULT_KINDS",
    "RadioFault",
    "RADIO_FAULT_KINDS",
    "RouterFault",
    "ROUTER_FAULT_KINDS",
    "StorageFault",
    "STORAGE_FAULT_KINDS",
    "corrupt_frame",
]

"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, fully explicit description of every
fault a chaos run will inject: which layer (radio frames, verifier-pool
workers, a router's operator channel), which messages or processes,
when, and with what probability.  Because the plan carries its own
``seed`` and every probabilistic decision is drawn from one
``random.Random(seed)`` inside the injector, the *same plan against the
same scenario replays the same faults at the same instants* -- a failed
chaos run is reproduced by re-running its plan, nothing else.

Plans are data, not behaviour: arming them against live objects is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import FaultInjectionError

#: Radio fault kinds, applied per scheduled frame delivery.
RADIO_FAULT_KINDS = ("drop", "duplicate", "corrupt", "delay", "reorder")

#: Verifier-pool fault kinds, applied to worker processes.
POOL_FAULT_KINDS = ("kill_worker", "hang_worker")

#: Router fault kinds, applied to the NO secure channel / list state
#: ("kill"/"restart" additionally need a durable-enabled scenario).
ROUTER_FAULT_KINDS = ("sever_channel", "restore_channel", "stale_lists",
                      "kill", "restart")

#: Gossip fault kinds, applied to the epidemic-distribution overlay.
GOSSIP_FAULT_KINDS = ("isolate", "rejoin")

#: Storage fault kinds, applied to a router's durable journal backend.
STORAGE_FAULT_KINDS = ("fsync_loss",)


@dataclass(frozen=True)
class RadioFault:
    """One rule over radio frame deliveries.

    ``probability`` is evaluated per *delivery* (each receiver of a
    broadcast rolls independently).  ``frame_kinds`` / ``dst`` narrow
    the rule to matching frames; ``start``/``stop`` bound the active
    window in seconds since the injector was armed.  ``delay`` and
    ``reorder`` both hold a matched delivery back by ``extra_delay``
    seconds -- the medium has no queue, so reordering *is* differential
    delay: a held frame is overtaken by anything sent in the meantime.
    """

    kind: str
    probability: float = 1.0
    frame_kinds: Optional[Tuple[str, ...]] = None
    dst: Optional[str] = None
    start: float = 0.0
    stop: float = math.inf
    extra_delay: float = 0.25
    copies: int = 1                  # extra deliveries for "duplicate"

    def __post_init__(self) -> None:
        if self.kind not in RADIO_FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown radio fault kind {self.kind!r} "
                f"(want one of {RADIO_FAULT_KINDS})")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError(
                f"radio fault probability {self.probability!r} "
                "outside [0, 1]")
        if self.start < 0 or self.stop < self.start:
            raise FaultInjectionError(
                f"radio fault window [{self.start}, {self.stop}) is empty "
                "or negative")
        if self.extra_delay < 0:
            raise FaultInjectionError("extra_delay must be >= 0")
        if self.copies < 1:
            raise FaultInjectionError("duplicate copies must be >= 1")

    def matches(self, frame_kind: str, dst: Optional[str],
                elapsed: float) -> bool:
        """Does this rule apply to a delivery of ``frame_kind`` at
        ``elapsed`` seconds since arming?"""
        if self.frame_kinds is not None \
                and frame_kind not in self.frame_kinds:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        return self.start <= elapsed < self.stop


@dataclass(frozen=True)
class PoolFault:
    """One fault against a :class:`~repro.core.verifier_pool.VerifierPool`.

    ``kill_worker`` SIGKILLs ``count`` worker processes chosen by the
    plan RNG; ``hang_worker`` wedges one worker in a ``hang_seconds``
    sleep.  Both surface to the pool as a timed-out chunk, exercising
    the requeue-and-respawn path.  ``at`` is seconds after arming when
    armed with an event loop; with no loop the fault fires immediately.
    """

    kind: str
    at: float = 0.0
    count: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in POOL_FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown pool fault kind {self.kind!r} "
                f"(want one of {POOL_FAULT_KINDS})")
        if self.at < 0:
            raise FaultInjectionError("pool fault time must be >= 0")
        if self.count < 1:
            raise FaultInjectionError("pool fault count must be >= 1")


@dataclass(frozen=True)
class RouterFault:
    """One fault against a :class:`~repro.core.router.MeshRouter`.

    ``sever_channel`` / ``restore_channel`` flip the operator secure
    channel (degraded mode); ``stale_lists`` silently skips refreshes
    by severing without marking -- modelled as a plain sever here, the
    distinction being which routers the plan names.  ``kill`` crashes
    the router process (it vanishes from the mesh; its in-memory state
    is gone) and ``restart`` boots it back up from its durable journal
    -- both require a scenario built with ``durable=True``.
    ``router_id`` of ``None`` matches every armed router.
    """

    kind: str
    at: float = 0.0
    router_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ROUTER_FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown router fault kind {self.kind!r} "
                f"(want one of {ROUTER_FAULT_KINDS})")
        if self.at < 0:
            raise FaultInjectionError("router fault time must be >= 0")


@dataclass(frozen=True)
class GossipFault:
    """One fault against a :class:`~repro.wmn.gossip.ListGossip` overlay.

    ``isolate`` severs a router from anti-entropy exchanges entirely
    (it neither initiates nor answers); ``rejoin`` restores it.  The
    router's own NO channel is untouched -- compose with a
    :class:`RouterFault` to model a router that lost *both* its
    backhaul and its mesh neighbours.
    """

    kind: str
    at: float = 0.0
    router_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in GOSSIP_FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown gossip fault kind {self.kind!r} "
                f"(want one of {GOSSIP_FAULT_KINDS})")
        if self.at < 0:
            raise FaultInjectionError("gossip fault time must be >= 0")


@dataclass(frozen=True)
class StorageFault:
    """One fault against a router's durable storage backend.

    ``fsync_loss`` models a power cut racing the page cache: every
    journal byte appended since the backend's last ``sync`` is dropped
    (:meth:`~repro.core.durable.MemoryStorage.lose_unsynced`), so a
    subsequent restart recovers an older-but-consistent state.
    ``router_id`` of ``None`` hits every durable store in the scenario.
    """

    kind: str
    at: float = 0.0
    router_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown storage fault kind {self.kind!r} "
                f"(want one of {STORAGE_FAULT_KINDS})")
        if self.at < 0:
            raise FaultInjectionError("storage fault time must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded chaos specification.

    ``seed`` drives every probabilistic decision the injector makes
    (which deliveries fault, which byte corrupts, which worker dies),
    so a plan is its own reproduction recipe.
    """

    seed: int = 0
    radio: Tuple[RadioFault, ...] = ()
    pool: Tuple[PoolFault, ...] = ()
    router: Tuple[RouterFault, ...] = ()
    gossip: Tuple[GossipFault, ...] = ()
    storage: Tuple[StorageFault, ...] = ()

    def __post_init__(self) -> None:
        # Normalize lists to tuples so plans stay hashable/frozen.
        for name in ("radio", "pool", "router", "gossip", "storage"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def empty(self) -> bool:
        return not (self.radio or self.pool or self.router or self.gossip
                    or self.storage)

    def describe(self) -> str:
        """One-line human summary (logged by chaos harnesses)."""
        parts = [f"seed={self.seed}"]
        parts += [f"radio:{f.kind}@p={f.probability:g}" for f in self.radio]
        parts += [f"pool:{f.kind}@t={f.at:g}" for f in self.pool]
        parts += [f"router:{f.kind}@t={f.at:g}" for f in self.router]
        parts += [f"gossip:{f.kind}@t={f.at:g}" for f in self.gossip]
        parts += [f"storage:{f.kind}@t={f.at:g}" for f in self.storage]
        return " ".join(parts)
